//! `skute-server` — serve a live Skute cloud over HTTP.
//!
//! ```text
//! skute-server [--addr HOST:PORT] [--replicas N] [--partitions N]
//!              [--seed N] [--threads N] [--backend mem|lsm]
//!              [--epoch-ms N] [--warmup-epochs N] [--queries-per-request F]
//!              [--read-timeout-ms N] [--write-timeout-ms N]
//! ```
//!
//! Prints `listening on <addr>` once the socket is bound (CI parses this
//! to discover the port when `--addr` ends in `:0`), then serves until a
//! `POST /shutdown` arrives. See the `skute_server` crate docs for the
//! protocol and metric catalogue.

use std::process::ExitCode;

use skute::prelude::*;
use skute::server::ServerConfig;
use skute_server::SkuteServer;

fn parse_args() -> Result<ServerConfig, String> {
    let mut config = ServerConfig::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" | "-a" => config.addr = value("--addr")?,
            "--replicas" => {
                config.replicas = value("--replicas")?
                    .parse()
                    .map_err(|e| format!("--replicas: {e}"))?
            }
            "--partitions" => {
                config.partitions = value("--partitions")?
                    .parse()
                    .map_err(|e| format!("--partitions: {e}"))?
            }
            "--seed" => {
                config.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--threads" | "-t" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?
            }
            "--backend" | "-b" => {
                config.backend = value("--backend")?
                    .parse::<BackendKind>()
                    .map_err(|e| format!("--backend: {e}"))?
            }
            "--epoch-ms" => {
                config.epoch_ms = value("--epoch-ms")?
                    .parse()
                    .map_err(|e| format!("--epoch-ms: {e}"))?
            }
            "--warmup-epochs" => {
                config.warmup_epochs = value("--warmup-epochs")?
                    .parse()
                    .map_err(|e| format!("--warmup-epochs: {e}"))?
            }
            "--queries-per-request" => {
                config.queries_per_request = value("--queries-per-request")?
                    .parse()
                    .map_err(|e| format!("--queries-per-request: {e}"))?
            }
            "--read-timeout-ms" => {
                config.read_timeout_ms = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--read-timeout-ms: {e}"))?
            }
            "--write-timeout-ms" => {
                config.write_timeout_ms = value("--write-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--write-timeout-ms: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "skute-server: serve a live Skute cloud over HTTP\n\n\
                     USAGE: skute-server [--addr HOST:PORT] [--replicas N]\n\
                            [--partitions N] [--seed N] [--threads N]\n\
                            [--backend mem|lsm] [--epoch-ms N]\n\
                            [--warmup-epochs N] [--queries-per-request F]\n\
                            [--read-timeout-ms N] [--write-timeout-ms N]\n\n\
                     Routes: GET /healthz, GET /metrics, GET|PUT|DELETE /kv/<key>,\n\
                     GET /scan?prefix=&limit=, POST /fault, POST /shutdown.\n\
                     Clients may send X-Country: <continent>.<country> to steer\n\
                     eq.-(4) proximity routing; observed per-country traffic\n\
                     feeds the epoch tick (every --epoch-ms milliseconds) so\n\
                     placement follows demand. Reads accept X-Consistency:\n\
                     one|quorum (quorum merges a majority of replicas LWW and\n\
                     schedules read-repair; degraded quorums still answer,\n\
                     flagged X-Degraded: true). POST /fault swaps the live\n\
                     fault plan: body '<plan> [seed]' (e.g. 'gray 42'),\n\
                     'cut <continent>', or 'heal'. --read/write-timeout-ms\n\
                     bound per-connection socket stalls (0 = no timeout)."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(config)
}

fn main() -> ExitCode {
    let config = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            return ExitCode::FAILURE;
        }
    };
    let server = match SkuteServer::bind(config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {}", server.addr());
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: server loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}
