//! `skute-load` — closed-loop load generator for `skute-server`.
//!
//! ```text
//! skute-load --addr HOST:PORT [--clients N] [--requests N] [--keys N]
//!            [--value-bytes N] [--seed N] [--scan-limit N]
//!            [--mix get:70,put:25,delete:2,scan:3] [--uniform-countries]
//!            [--consistency one|quorum] [--retries N]
//! skute-load --addr HOST:PORT --scrape /metrics
//! skute-load --addr HOST:PORT --post /shutdown
//! ```
//!
//! Prints two machine-greppable `load:` summary lines (outcome counts and
//! p50/p99/p999 latency). `--scrape PATH` instead issues a single GET and
//! prints the body (CI uses this to pull `/metrics` without curl), and
//! `--post PATH` issues a single POST (the graceful `/shutdown`).

use std::process::ExitCode;

use skute::server::{post_body, run_load, scrape, LoadConfig, Op};

struct Args {
    load: LoadConfig,
    scrape: Option<String>,
    post: Option<String>,
    body: String,
}

fn parse_mix(raw: &str) -> Result<Vec<(Op, u32)>, String> {
    let mut mix = Vec::new();
    for part in raw.split(',') {
        let (name, weight) = part
            .split_once(':')
            .ok_or_else(|| format!("--mix entry {part:?} wants op:weight"))?;
        let op = match name.trim() {
            "get" => Op::Get,
            "put" => Op::Put,
            "delete" => Op::Delete,
            "scan" => Op::Scan,
            other => return Err(format!("--mix: unknown op {other:?}")),
        };
        let weight: u32 = weight
            .trim()
            .parse()
            .map_err(|e| format!("--mix weight: {e}"))?;
        mix.push((op, weight));
    }
    if mix.is_empty() {
        return Err("--mix must name at least one op".to_string());
    }
    Ok(mix)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        load: LoadConfig::default(),
        scrape: None,
        post: None,
        body: String::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--addr" | "-a" => args.load.addr = value("--addr")?,
            "--clients" | "-c" => {
                args.load.clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--requests" | "-n" => {
                args.load.requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--keys" => {
                args.load.keys = value("--keys")?
                    .parse()
                    .map_err(|e| format!("--keys: {e}"))?
            }
            "--value-bytes" => {
                args.load.value_bytes = value("--value-bytes")?
                    .parse()
                    .map_err(|e| format!("--value-bytes: {e}"))?
            }
            "--seed" => {
                args.load.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--scan-limit" => {
                args.load.scan_limit = value("--scan-limit")?
                    .parse()
                    .map_err(|e| format!("--scan-limit: {e}"))?
            }
            "--mix" => args.load.mix = parse_mix(&value("--mix")?)?,
            "--consistency" => {
                let raw = value("--consistency")?;
                match raw.as_str() {
                    "one" | "1" | "quorum" => args.load.consistency = Some(raw),
                    other => return Err(format!("--consistency: unknown level {other:?}")),
                }
            }
            "--retries" => {
                args.load.max_retries = value("--retries")?
                    .parse()
                    .map_err(|e| format!("--retries: {e}"))?
            }
            "--uniform-countries" => {
                // The paper topology: 5 continents × 2 countries, equal
                // weight (matches the simulator's uniform client geo).
                args.load.countries = (0..5u16)
                    .flat_map(|ct| (0..2u16).map(move |co| ((ct, co), 1.0)))
                    .collect();
            }
            "--scrape" => args.scrape = Some(value("--scrape")?),
            "--post" => args.post = Some(value("--post")?),
            "--body" => args.body = value("--body")?,
            "--help" | "-h" => {
                println!(
                    "skute-load: closed-loop load generator for skute-server\n\n\
                     USAGE: skute-load --addr HOST:PORT [--clients N] [--requests N]\n\
                            [--keys N] [--value-bytes N] [--seed N] [--scan-limit N]\n\
                            [--mix get:70,put:25,delete:2,scan:3]\n\
                            [--uniform-countries] [--consistency one|quorum]\n\
                            [--retries N]\n\
                            | --scrape PATH | --post PATH [--body TEXT]\n\n\
                     Prints 'load: issued=.. ok=.. .. retries=..' and\n\
                     'load: p50_ms=..' summary lines. --consistency sets the\n\
                     X-Consistency header on reads (quorum = majority read with\n\
                     read-repair). --retries bounds transport-level retries per\n\
                     request (exponential backoff with jitter; default 2).\n\
                     --scrape GETs one path and prints the body; --post POSTs\n\
                     one path (e.g. /shutdown, or /fault with --body 'gray 42')\n\
                     and prints the status."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = args.scrape {
        return match scrape(&args.load.addr, &path) {
            Ok(body) => {
                print!("{body}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: scrape {path} failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if let Some(path) = args.post {
        return match post_body(&args.load.addr, &path, args.body.as_bytes()) {
            Ok(status) => {
                println!("POST {path} -> {status}");
                if (200..300).contains(&status) {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::FAILURE
                }
            }
            Err(e) => {
                eprintln!("error: POST {path} failed: {e}");
                ExitCode::FAILURE
            }
        };
    }
    match run_load(args.load) {
        Ok(report) => {
            println!("{}", report.summary_lines());
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: load run failed: {e}");
            ExitCode::FAILURE
        }
    }
}
