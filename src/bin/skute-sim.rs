//! `skute-sim` — command-line runner for the paper's simulation scenarios.
//!
//! ```text
//! skute-sim [--scenario base|fig2|fig3|fig4|fig5|outage] [--epochs N]
//!           [--seed N] [--csv PATH] [--print-every N] [--brute-force]
//!           [--threads N] [--sequential-commit] [--no-speculation]
//!           [--backend mem|lsm] [--fault-plan NAME] [--fault-seed N]
//!           [--sequential-repair] [--sequential-decisions]
//!           [--scrub-every N] [--metrics-json PATH]
//! skute-sim --bench-json PATH
//! ```
//!
//! Runs the chosen scenario, prints a progress table, and optionally
//! writes the full per-epoch time series as CSV. `--metrics-json PATH`
//! attaches the write-only [`CloudMetrics`] sink and writes an
//! end-of-run JSON snapshot of every metric (per-phase wall-clock
//! timings, action/speculation/fault counters, storage-engine totals) —
//! the metrics layer never feeds back into decisions, so stdout and CSV
//! stay byte-identical with or without it.
//!
//! `--bench-json PATH` instead runs the epoch-loop perf sweep (indexed vs
//! brute-force decision pipeline at M ∈ {16, 50, 200}) and writes the
//! `BENCH_epoch.json` document to `PATH`.

use std::process::ExitCode;

use skute::prelude::*;
use skute::sim::paper;
use skute_bench::perf;

struct Args {
    scenario: String,
    epochs: Option<u64>,
    seed: Option<u64>,
    csv: Option<String>,
    print_every: u64,
    brute_force: bool,
    sequential_commit: bool,
    no_speculation: bool,
    threads: Option<usize>,
    backend: BackendKind,
    fault_plan: Option<FaultPlanKind>,
    fault_seed: Option<u64>,
    sequential_repair: bool,
    sequential_decisions: bool,
    scrub_every: Option<u64>,
    bench_json: Option<String>,
    metrics_json: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: "base".to_string(),
        epochs: None,
        seed: None,
        csv: None,
        print_every: 10,
        brute_force: false,
        sequential_commit: false,
        no_speculation: false,
        threads: None,
        backend: BackendKind::default(),
        fault_plan: None,
        fault_seed: None,
        sequential_repair: false,
        sequential_decisions: false,
        scrub_every: None,
        bench_json: None,
        metrics_json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--scenario" | "-s" => args.scenario = value("--scenario")?,
            "--epochs" | "-e" => {
                args.epochs = Some(
                    value("--epochs")?
                        .parse()
                        .map_err(|e| format!("--epochs: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--csv" => args.csv = Some(value("--csv")?),
            "--print-every" => {
                args.print_every = value("--print-every")?
                    .parse()
                    .map_err(|e| format!("--print-every: {e}"))?
            }
            "--brute-force" => args.brute_force = true,
            "--sequential-commit" => args.sequential_commit = true,
            "--no-speculation" => args.no_speculation = true,
            "--threads" | "-t" => {
                args.threads = Some(
                    value("--threads")?
                        .parse()
                        .map_err(|e| format!("--threads: {e}"))?,
                )
            }
            "--backend" | "-b" => {
                args.backend = value("--backend")?
                    .parse()
                    .map_err(|e| format!("--backend: {e}"))?
            }
            "--fault-plan" => {
                args.fault_plan = Some(
                    value("--fault-plan")?
                        .parse()
                        .map_err(|e| format!("--fault-plan: {e}"))?,
                )
            }
            "--fault-seed" => {
                args.fault_seed = Some(
                    value("--fault-seed")?
                        .parse()
                        .map_err(|e| format!("--fault-seed: {e}"))?,
                )
            }
            "--sequential-repair" => args.sequential_repair = true,
            "--sequential-decisions" => args.sequential_decisions = true,
            "--scrub-every" => {
                args.scrub_every = Some(
                    value("--scrub-every")?
                        .parse()
                        .map_err(|e| format!("--scrub-every: {e}"))?,
                )
            }
            "--bench-json" => args.bench_json = Some(value("--bench-json")?),
            "--metrics-json" => args.metrics_json = Some(value("--metrics-json")?),
            "--help" | "-h" => {
                println!(
                    "skute-sim: run a Skute paper scenario\n\n\
                     USAGE: skute-sim [--scenario base|fig2|fig3|fig4|fig5|outage]\n\
                            [--epochs N] [--seed N] [--csv PATH] [--print-every N]\n\
                            [--brute-force] [--sequential-commit] [--no-speculation]\n\
                            [--threads N] [--backend mem|lsm] [--fault-plan NAME]\n\
                            [--fault-seed N] [--sequential-repair]\n\
                            [--sequential-decisions] [--scrub-every N]\n\
                            [--metrics-json PATH] [--bench-json PATH]\n\n\
                     --threads sets the epoch pipeline's worker budget (0 = all\n\
                     cores); same-seed output is bitwise identical at any value.\n\
                     --backend selects the replica storage engine: mem (default,\n\
                     in-memory oracle) or lsm (durable WAL + SSTable stores);\n\
                     same-seed output is bitwise identical on either engine.\n\
                     --sequential-commit routes the traffic commit through the\n\
                     sequential oracle loop and --no-speculation disables the\n\
                     decision pass's speculative eq.-(3) targets (both oracles\n\
                     produce bitwise-identical output; CI's determinism matrix\n\
                     compares every mode).\n\
                     --fault-plan selects the seeded fault family: storage\n\
                     faults injected into the LSM engine (torn-tails|\n\
                     flaky-fsync|partial-flush|bit-flips|all) or server/\n\
                     network degradation (gray = per-server read-only/slow/\n\
                     partitioned modes plus a rotating continental cut,\n\
                     partition = the continental cut alone); --fault-seed N\n\
                     seeds the plan (and defaults it to 'all'); the seed\n\
                     defaults to the scenario seed. Storage faults are\n\
                     transient by construction — same-seed same-plan output is\n\
                     bitwise identical, faulted or not. Gray and partition\n\
                     plans price degraded servers down through the confidence\n\
                     EWMA, so they change the trajectory relative to a clean\n\
                     run — but stay bitwise identical across --threads and\n\
                     --backend for a given seed.\n\
                     --scrub-every N folds the quarantine scrub into the epoch\n\
                     loop every N epochs (0 = disabled, the default); scrubs\n\
                     are observability-only and never perturb the trajectory.\n\
                     --sequential-repair routes the availability-repair pass\n\
                     through its sequential walk (the oracle for the default\n\
                     speculative plan/validate repair protocol).\n\
                     --sequential-decisions routes the economic-decision\n\
                     commit through the one-action-at-a-time sequential walk\n\
                     instead of the conflict-free batched commit (the oracle;\n\
                     output is bitwise identical either way).\n\
                     --metrics-json writes an end-of-run JSON snapshot of the\n\
                     observability registry (per-phase timings, action and\n\
                     speculation counters, storage-engine totals). The sink is\n\
                     write-only: stdout and CSV are byte-identical with or\n\
                     without it."
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    Ok(args)
}

fn scenario_by_name(name: &str) -> Option<Scenario> {
    Some(match name {
        "base" => paper::base_scenario(),
        "fig2" => paper::fig2_scenario(),
        "fig3" => paper::fig3_scenario(),
        "fig4" => paper::fig4_scenario(),
        "fig5" => paper::fig5_scenario(),
        "outage" => paper::outage_scenario(),
        _ => return None,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            return ExitCode::FAILURE;
        }
    };
    if let Some(path) = args.bench_json {
        println!("epoch_loop perf sweep: indexed vs brute-force decision pipeline\n");
        // Measured before the sweep: the sweep's own M = 2000 rows would
        // otherwise mask the RSS delta with already-freed pages.
        let bytes_per_partition = perf::measure_bytes_per_partition();
        let results = perf::standard_sweep();
        perf::print_table(&results);
        if let Some(bpp) = bytes_per_partition {
            println!("\nbytes/partition (RSS delta at M = 2000): {bpp}");
        }
        return match perf::write_json_full(
            std::path::Path::new(&path),
            &results,
            bytes_per_partition,
        ) {
            Ok(()) => {
                println!("\nwrote {path}");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let Some(mut scenario) = scenario_by_name(&args.scenario) else {
        eprintln!(
            "error: unknown scenario {:?} (expected base|fig2|fig3|fig4|fig5|outage)",
            args.scenario
        );
        return ExitCode::FAILURE;
    };
    if let Some(epochs) = args.epochs {
        scenario.epochs = epochs;
    }
    if let Some(seed) = args.seed {
        scenario.seed = seed;
    }
    scenario.config.brute_force_placement = args.brute_force;
    scenario.config.sequential_traffic_commit = args.sequential_commit;
    scenario.config.no_speculation = args.no_speculation;
    scenario.config.backend = args.backend;
    scenario.config.sequential_repair = args.sequential_repair;
    scenario.config.sequential_decisions = args.sequential_decisions;
    // --fault-plan picks the fault family; --fault-seed seeds it (and
    // implies the all-families plan when no family was named). A plan
    // without an explicit seed inherits the scenario seed.
    let fault_kind = match (args.fault_plan, args.fault_seed) {
        (Some(kind), _) => Some(kind),
        (None, Some(_)) => Some(FaultPlanKind::All),
        (None, None) => None,
    };
    if let Some(kind) = fault_kind {
        scenario.config.fault_plan = FaultPlan {
            kind,
            seed: args.fault_seed.unwrap_or(scenario.seed),
        };
    }
    if let Some(threads) = args.threads {
        scenario.config.threads = threads;
    }
    if let Some(every) = args.scrub_every {
        scenario.config.scrub_every = every;
    }
    println!(
        "scenario {} — {} servers, {} apps, {} epochs, seed {}",
        scenario.name,
        scenario.topology.server_count(),
        scenario.apps.len(),
        scenario.epochs,
        scenario.seed
    );
    println!(
        "{:>6} {:>7} {:>8} {:>10} {:>9} {:>8} {:>9} {:>9}",
        "epoch", "alive", "vnodes", "rate", "used%", "fails", "repairs", "migr"
    );
    let epochs = scenario.epochs;
    let mut sim = Simulation::new(scenario);
    // Observability sink: attached only on request; it is write-only, so
    // the trajectory (stdout, CSV) is bitwise identical either way.
    let registry = args.metrics_json.as_ref().map(|_| Registry::new());
    if let Some(registry) = &registry {
        sim.attach_metrics(CloudMetrics::register(registry));
    }
    let mut recorder = Recorder::new();
    for epoch in 0..epochs {
        let obs = sim.step();
        if args.print_every > 0 && (epoch % args.print_every == 0 || epoch + 1 == epochs) {
            let r = &obs.report;
            println!(
                "{:>6} {:>7} {:>8} {:>10.0} {:>8.1}% {:>8} {:>9} {:>9}",
                r.epoch,
                r.alive_servers,
                r.total_vnodes(),
                obs.offered_rate,
                100.0 * r.storage_frac(),
                r.insert_failures,
                r.actions.availability_replications,
                r.actions.migrations,
            );
        }
        recorder.push(obs);
    }
    // Summary (absent when the run had zero epochs).
    if let Some(last) = recorder.observations().last() {
        println!("\nfinal state:");
        for ring in &last.report.rings {
            println!(
                "  {}: {} vnodes over {} partitions, SLA satisfied {:.1}%, mean availability {:.1}",
                ring.ring,
                ring.vnodes,
                ring.partitions,
                100.0 * ring.sla_satisfied_frac,
                ring.mean_availability,
            );
        }
    }
    if let Some(path) = args.csv {
        match recorder.write_csv(&path) {
            Ok(()) => println!("wrote {path}"),
            Err(e) => {
                eprintln!("error: could not write {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if let (Some(path), Some(registry)) = (&args.metrics_json, &registry) {
        sim.cloud().refresh_storage_metrics();
        if let Err(e) = std::fs::write(path, registry.render_json()) {
            eprintln!("error: could not write {path}: {e}");
            return ExitCode::FAILURE;
        }
        // To stderr: stdout stays byte-identical across metrics on/off.
        eprintln!("wrote {path}");
    }
    ExitCode::SUCCESS
}
