//! # Skute
//!
//! A Rust reproduction of **"Cost-efficient and Differentiated Data
//! Availability Guarantees in Data Clouds"** (Bonvin, Papaioannou, Aberer —
//! ICDE 2010): a self-managed key-value store that dynamically allocates the
//! resources of a data cloud to several applications in a cost-efficient
//! way, offering and maintaining multiple differentiated availability
//! guarantees per application despite failures.
//!
//! The system is a **virtual economy**: every data partition is represented
//! by virtual nodes (one per replica) that act as individual optimizers —
//! each epoch they earn utility from answered queries, pay virtual rent to
//! their hosting server, and choose to replicate, migrate, or delete
//! themselves by net-benefit maximization.
//!
//! ## Crate map
//!
//! | crate | contents |
//! |---|---|
//! | [`geo`] | six-level geographic hierarchy, the 6-bit diversity metric |
//! | [`ring`] | consistent hashing, tokens, partitions, virtual rings |
//! | [`cluster`] | servers, capacities, cost model, the rent board |
//! | [`store`] | versioned records, partition stores, quorum R/W |
//! | [`economy`] | eq. (1) rent, eq. (3)/(4) scoring, eq. (5) balances |
//! | [`core`] | availability (eq. 2), SLAs, virtual-node agents, [`SkuteCloud`] |
//! | [`workload`] | Pareto/Poisson/Zipf samplers, Slashdot trace, inserts |
//! | [`sim`] | epoch simulation engine and the paper's scenarios |
//! | [`baseline`] | random/successor/cheapest/max-spread placement baselines |
//! | [`obs`] | zero-dependency metrics registry + Prometheus exposition |
//! | [`server`] | HTTP serving front end and the `skute-load` generator |
//!
//! ## Quickstart
//!
//! ```
//! use skute::prelude::*;
//!
//! // A 200-server cloud spread over 5 continents (the paper's topology).
//! let topology = Topology::paper();
//! let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
//!     location,
//!     capacities: Capacities::paper(4 << 30, 3_000.0),
//!     monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
//!     confidence: 1.0,
//! });
//! let mut cloud = SkuteCloud::new(SkuteConfig::paper(), topology, cluster);
//!
//! // An application whose SLA is satisfied by 3 geographically
//! // diverse replicas, over 32 partitions.
//! let app = cloud
//!     .create_application(AppSpec::new("photos").level(LevelSpec::new(3, 32)))
//!     .unwrap();
//!
//! // Store and read data; run epochs so the virtual economy replicates
//! // every partition up to its availability target.
//! cloud.begin_epoch();
//! cloud.put(app, 0, b"user:1:avatar", b"png-bytes".to_vec()).unwrap();
//! for _ in 0..6 {
//!     cloud.begin_epoch();
//!     cloud.end_epoch();
//! }
//! assert_eq!(
//!     cloud.get(app, 0, b"user:1:avatar").unwrap().unwrap().as_ref(),
//!     b"png-bytes"
//! );
//! ```

#![warn(missing_docs)]

pub use skute_baseline as baseline;
pub use skute_cluster as cluster;
pub use skute_core as core;
pub use skute_economy as economy;
pub use skute_geo as geo;
pub use skute_obs as obs;
pub use skute_ring as ring;
pub use skute_server as server;
pub use skute_sim as sim;
pub use skute_store as store;
pub use skute_workload as workload;

pub use skute_core::{
    AppId, AppSpec, AvailabilityLevel, CoreError, EpochReport, LevelSpec, RingReport, SkuteCloud,
    SkuteConfig,
};

/// One-stop imports for applications embedding Skute.
pub mod prelude {
    pub use skute_cluster::{Board, Capacities, Cluster, Server, ServerId, ServerSpec};
    pub use skute_core::{
        availability_of, threshold_for_replicas, AppId, AppSpec, AvailabilityLevel, ClientRead,
        CloudMetrics, CoreError, EpochReport, LevelSpec, PlacementStrategy, ReadConsistency,
        RingReport, ScrubReport, SkuteCloud, SkuteConfig, TrafficBatch,
    };
    pub use skute_economy::EconomyConfig;
    pub use skute_geo::{diversity, ClientGeo, LatencyModel, Level, Location, Topology};
    pub use skute_obs::Registry;
    pub use skute_ring::{KeyRange, PartitionId, RingId, Token};
    pub use skute_server::{LoadConfig, LoadReport, ServerConfig, SkuteServer};
    pub use skute_sim::{
        CloudEvent, Observation, Recorder, Scenario, ScenarioApp, Schedule, Simulation, TraceKind,
    };
    pub use skute_store::{
        BackendKind, FaultPlan, FaultPlanKind, FaultStats, GrayMode, QuorumConfig,
    };
    pub use skute_workload::{
        ConstantTrace, InsertGenerator, LoadTrace, Pareto, Poisson, QueryGenerator, SlashdotTrace,
        Zipf,
    };
}
