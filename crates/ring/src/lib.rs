//! # skute-ring
//!
//! Ring topology and consistent hashing for Skute.
//!
//! Skute "is built using a ring topology and a variant of consistent
//! hashing. Data is identified by a key and its location is given by the hash
//! function of this key, i.e. O(1) DHT. The key space is split into
//! partitions. … A virtual node (alternatively a partition) holds data for
//! the range of keys in (previous token, token]" (§I).
//!
//! This crate provides:
//! * [`hash::key_token`] — a stable, seedable 64-bit key hash,
//! * [`Token`] and [`KeyRange`] — positions on the ring and wrap-around
//!   `(prev, token]` ranges,
//! * [`Partition`] — an identified key range that can split when it outgrows
//!   the paper's 256 MB partition capacity,
//! * [`VirtualRing`] — one application availability level's set of
//!   partitions with O(log M) routing and partition splitting.
//!
//! The *multiple virtual rings on a single cloud* concept (one ring per
//! application per availability level, Fig. 1) is assembled in `skute-core`
//! from several `VirtualRing` values.

#![warn(missing_docs)]

pub mod hash;
pub mod partition;
pub mod token;
pub mod vring;

pub use hash::{key_token, KeyHasher};
pub use partition::{Partition, PartitionId};
pub use token::{KeyRange, Token};
pub use vring::{RingId, VirtualRing};
