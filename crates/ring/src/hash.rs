//! Stable key hashing for ring placement.
//!
//! Keys must hash identically across processes and program runs (replicas of
//! a partition are resolved by hash), so we implement a fixed algorithm
//! rather than rely on `std`'s randomly seeded `DefaultHasher`: FNV-1a over
//! the key bytes followed by a SplitMix64 finalizer to break up FNV's weak
//! avalanche on short keys.

use crate::token::Token;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` with an optional seed folded into the initial state.
#[inline]
fn fnv1a(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET ^ seed.wrapping_mul(FNV_PRIME);
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// SplitMix64 finalizer: a fast, full-avalanche bijection on `u64`.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps a key to its position on the ring. Deterministic across runs.
#[inline]
pub fn key_token(key: &[u8]) -> Token {
    KeyHasher::default().token(key)
}

/// A seedable key hasher. Different seeds give statistically independent
/// placements, which lets distinct virtual rings spread the *same* keys over
/// different partitions if desired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct KeyHasher {
    seed: u64,
}

impl KeyHasher {
    /// A hasher with the given seed.
    pub const fn with_seed(seed: u64) -> Self {
        Self { seed }
    }

    /// The 64-bit hash of `key`.
    #[inline]
    pub fn hash(&self, key: &[u8]) -> u64 {
        splitmix64(fnv1a(self.seed, key))
    }

    /// The ring token of `key`.
    #[inline]
    pub fn token(&self, key: &[u8]) -> Token {
        Token(self.hash(key))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hashing_is_deterministic() {
        let h = KeyHasher::default();
        assert_eq!(h.hash(b"user:42"), h.hash(b"user:42"));
        assert_eq!(key_token(b"user:42"), key_token(b"user:42"));
    }

    #[test]
    fn different_keys_differ() {
        let h = KeyHasher::default();
        assert_ne!(h.hash(b"a"), h.hash(b"b"));
        assert_ne!(h.hash(b""), h.hash(b"\0"));
    }

    #[test]
    fn seeds_decorrelate_placement() {
        let a = KeyHasher::with_seed(1);
        let b = KeyHasher::with_seed(2);
        let differing = (0..256u32)
            .filter(|i| a.hash(&i.to_le_bytes()) != b.hash(&i.to_le_bytes()))
            .count();
        assert_eq!(differing, 256);
    }

    #[test]
    fn distribution_is_roughly_uniform_over_buckets() {
        // 16 buckets, 16k sequential keys: each bucket should get 1024 ± 25%.
        let h = KeyHasher::default();
        let mut buckets = [0u32; 16];
        for i in 0..16_384u32 {
            let idx = (h.hash(&i.to_le_bytes()) >> 60) as usize;
            buckets[idx] += 1;
        }
        for (i, &count) in buckets.iter().enumerate() {
            assert!(
                (768..=1280).contains(&count),
                "bucket {i} has skewed count {count}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_deterministic(key in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assert_eq!(key_token(&key), key_token(&key));
        }

        #[test]
        fn prop_avalanche_on_single_bit(key in proptest::collection::vec(any::<u8>(), 1..32)) {
            let mut flipped = key.clone();
            flipped[0] ^= 1;
            let a = key_token(&key).0;
            let b = key_token(&flipped).0;
            // At least a quarter of the 64 bits should differ on average;
            // require a loose lower bound that practically never fails.
            prop_assert!((a ^ b).count_ones() >= 8);
        }
    }
}
