//! Identified key-range partitions.

use std::fmt;

use crate::token::{KeyRange, Token};

/// Identifier of a partition, unique within one [`crate::VirtualRing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PartitionId(pub u64);

impl fmt::Display for PartitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A partition: an identified arc of the key ring.
///
/// The paper caps partitions at 256 MB, "after which the data of the
/// partition is split into two new ones" (§III-A); splitting is performed by
/// [`crate::VirtualRing::split_partition`], which allocates two fresh ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Partition {
    /// Partition identifier.
    pub id: PartitionId,
    /// The keys this partition is responsible for.
    pub range: KeyRange,
}

impl Partition {
    /// Creates a partition over `range`.
    pub const fn new(id: PartitionId, range: KeyRange) -> Self {
        Self { id, range }
    }

    /// The partition's token (inclusive end of its range).
    pub const fn token(&self) -> Token {
        self.range.end
    }

    /// Whether this partition is responsible for `token`.
    pub fn owns(&self, token: Token) -> bool {
        self.range.contains(token)
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.id, self.range)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_owns_its_range() {
        let p = Partition::new(PartitionId(7), KeyRange::new(Token(100), Token(200)));
        assert!(p.owns(Token(150)));
        assert!(p.owns(Token(200)));
        assert!(!p.owns(Token(100)));
        assert!(!p.owns(Token(201)));
        assert_eq!(p.token(), Token(200));
    }

    #[test]
    fn display_formats() {
        let p = Partition::new(PartitionId(3), KeyRange::new(Token(0), Token(16)));
        assert_eq!(PartitionId(3).to_string(), "p3");
        assert!(p.to_string().starts_with("p3@("));
    }
}
