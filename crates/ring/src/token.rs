//! Ring positions and wrap-around key ranges.

use std::fmt;

/// A position on the 64-bit hash ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Token(pub u64);

impl Token {
    /// Smallest token.
    pub const MIN: Token = Token(0);
    /// Largest token.
    pub const MAX: Token = Token(u64::MAX);

    /// The token halfway around the arc from `start` (exclusive) to `self`
    /// (inclusive), used when splitting a partition in two equal halves.
    /// Wrap-around arcs are handled; the arc must contain at least two
    /// positions for the midpoint to be distinct from both ends.
    pub fn midpoint_from(self, start: Token) -> Token {
        let width = self.0.wrapping_sub(start.0); // arc length, wraps correctly
        Token(start.0.wrapping_add(width / 2))
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl From<u64> for Token {
    fn from(v: u64) -> Self {
        Token(v)
    }
}

/// A half-open arc `(start, end]` on the ring, as in the paper: "a virtual
/// node holds data for the range of keys in (previous token, token]".
///
/// When `start == end` the range covers the **entire ring** (the single
/// partition case), not the empty set; an empty range is never useful on a
/// ring of partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyRange {
    /// Exclusive start of the arc (the previous partition's token).
    pub start: Token,
    /// Inclusive end of the arc (this partition's token).
    pub end: Token,
}

impl KeyRange {
    /// The arc `(start, end]`.
    pub const fn new(start: Token, end: Token) -> Self {
        Self { start, end }
    }

    /// The range covering the whole ring.
    pub const fn full() -> Self {
        Self {
            start: Token(0),
            end: Token(0),
        }
    }

    /// True when this range covers the whole ring.
    pub const fn is_full(&self) -> bool {
        self.start.0 == self.end.0
    }

    /// Whether `token` falls inside `(start, end]`, accounting for
    /// wrap-around arcs.
    pub fn contains(&self, token: Token) -> bool {
        if self.is_full() {
            return true;
        }
        if self.start < self.end {
            token > self.start && token <= self.end
        } else {
            // wrap-around: (start, MAX] ∪ [MIN, end]
            token > self.start || token <= self.end
        }
    }

    /// Number of ring positions in the range (as u128 so the full ring fits).
    pub fn width(&self) -> u128 {
        if self.is_full() {
            1u128 << 64
        } else {
            u128::from(self.end.0.wrapping_sub(self.start.0))
        }
    }

    /// Splits the range into two contiguous halves `(start, mid]` and
    /// `(mid, end]`.
    ///
    /// # Panics
    /// Panics if the range holds fewer than two positions and cannot split.
    pub fn split(&self) -> (KeyRange, KeyRange) {
        assert!(
            self.width() >= 2,
            "cannot split a range of width {}",
            self.width()
        );
        let mid = if self.is_full() {
            Token(self.start.0.wrapping_add(u64::MAX / 2).wrapping_add(1))
        } else {
            self.end.midpoint_from(self.start)
        };
        (KeyRange::new(self.start, mid), KeyRange::new(mid, self.end))
    }
}

impl fmt::Display for KeyRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}]", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn contains_simple_arc() {
        let r = KeyRange::new(Token(10), Token(20));
        assert!(!r.contains(Token(10)), "start is exclusive");
        assert!(r.contains(Token(11)));
        assert!(r.contains(Token(20)), "end is inclusive");
        assert!(!r.contains(Token(21)));
        assert!(!r.contains(Token(0)));
    }

    #[test]
    fn contains_wraparound_arc() {
        let r = KeyRange::new(Token(u64::MAX - 5), Token(5));
        assert!(r.contains(Token(u64::MAX)));
        assert!(r.contains(Token(0)));
        assert!(r.contains(Token(5)));
        assert!(!r.contains(Token(6)));
        assert!(!r.contains(Token(u64::MAX - 5)));
    }

    #[test]
    fn full_range_contains_everything() {
        let r = KeyRange::full();
        assert!(r.is_full());
        for t in [Token(0), Token(1), Token(u64::MAX), Token(u64::MAX / 2)] {
            assert!(r.contains(t));
        }
        assert_eq!(r.width(), 1u128 << 64);
    }

    #[test]
    fn split_full_ring_covers_everything() {
        let (a, b) = KeyRange::full().split();
        assert!(!a.is_full());
        assert!(!b.is_full());
        assert_eq!(a.width() + b.width(), 1u128 << 64);
        for t in [Token(0), Token(1), Token(u64::MAX / 2), Token(u64::MAX)] {
            assert!(a.contains(t) ^ b.contains(t), "exactly one half holds {t}");
        }
    }

    #[test]
    fn split_simple_range_is_exact_partition() {
        let r = KeyRange::new(Token(100), Token(200));
        let (a, b) = r.split();
        assert_eq!(a, KeyRange::new(Token(100), Token(150)));
        assert_eq!(b, KeyRange::new(Token(150), Token(200)));
        assert_eq!(a.width() + b.width(), r.width());
    }

    #[test]
    fn split_wraparound_range() {
        let r = KeyRange::new(Token(u64::MAX - 9), Token(10));
        let (a, b) = r.split();
        assert_eq!(a.width() + b.width(), r.width());
        for off in 1..=20u64 {
            let t = Token((u64::MAX - 9).wrapping_add(off));
            assert!(a.contains(t) ^ b.contains(t));
        }
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn split_unit_range_panics() {
        let _ = KeyRange::new(Token(5), Token(6)).split();
    }

    #[test]
    fn midpoint_wraps() {
        let mid = Token(4).midpoint_from(Token(u64::MAX - 3));
        // arc length 8, half 4 → MAX-3 + 4 wraps to 0
        assert_eq!(mid, Token(0));
    }

    proptest! {
        #[test]
        fn prop_split_partitions_range(start in any::<u64>(), len in 2u64..) {
            let r = KeyRange::new(Token(start), Token(start.wrapping_add(len)));
            let (a, b) = r.split();
            prop_assert_eq!(a.width() + b.width(), r.width());
            // Sample positions across the arc and check exclusive coverage.
            for i in [0u64, 1, len / 2, len - 1] {
                let t = Token(start.wrapping_add(1).wrapping_add(i % len));
                prop_assert!(r.contains(t));
                prop_assert!(a.contains(t) ^ b.contains(t));
            }
        }

        #[test]
        fn prop_membership_partition_of_two_ranges(
            cut1 in any::<u64>(), cut2 in any::<u64>(), probe in any::<u64>()
        ) {
            prop_assume!(cut1 != cut2);
            let a = KeyRange::new(Token(cut1), Token(cut2));
            let b = KeyRange::new(Token(cut2), Token(cut1));
            // Two complementary arcs tile the ring.
            prop_assert!(a.contains(Token(probe)) ^ b.contains(Token(probe)));
        }
    }
}
