//! Virtual rings: the partition table of one application availability level.

use std::collections::BTreeMap;
use std::fmt;

use crate::hash::KeyHasher;
use crate::partition::{Partition, PartitionId};
use crate::token::{KeyRange, Token};

/// Identifier of a virtual ring.
///
/// "Each application uses its own virtual rings, while one ring per
/// availability level is needed" (§I): ring identity is the pair of an
/// application index and that application's availability-level index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RingId {
    /// Index of the owning application.
    pub app: u32,
    /// Index of the availability level within the application.
    pub level: u32,
}

impl RingId {
    /// Ring of application `app`, availability level `level`.
    pub const fn new(app: u32, level: u32) -> Self {
        Self { app, level }
    }
}

impl fmt::Display for RingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ring{}.{}", self.app, self.level)
    }
}

/// One virtual ring: a complete tiling of the 64-bit hash ring by
/// partitions, with O(log M) key routing and partition splitting.
///
/// Invariants maintained by every operation:
/// * partitions tile the ring exactly (every token maps to one partition);
/// * each partition's range is `(previous token, token]`;
/// * partition ids are never reused.
#[derive(Debug, Clone)]
pub struct VirtualRing {
    id: RingId,
    hasher: KeyHasher,
    /// Map from a partition's end token to its id; the BTreeMap order *is*
    /// the ring order.
    by_token: BTreeMap<Token, PartitionId>,
    /// Ranges indexed by partition id.
    ranges: std::collections::HashMap<PartitionId, KeyRange>,
    next_id: u64,
}

impl VirtualRing {
    /// Creates a ring with `partitions` equally sized partitions.
    ///
    /// # Panics
    /// Panics if `partitions == 0`.
    pub fn new(id: RingId, partitions: usize) -> Self {
        Self::with_hasher(id, partitions, KeyHasher::default())
    }

    /// Creates a ring that routes keys with a specific hasher, so sibling
    /// rings can scatter identical keys differently.
    ///
    /// # Panics
    /// Panics if `partitions == 0`.
    pub fn with_hasher(id: RingId, partitions: usize, hasher: KeyHasher) -> Self {
        assert!(
            partitions > 0,
            "a virtual ring needs at least one partition"
        );
        let mut ring = Self {
            id,
            hasher,
            by_token: BTreeMap::new(),
            ranges: std::collections::HashMap::with_capacity(partitions),
            next_id: 0,
        };
        if partitions == 1 {
            let pid = ring.alloc_id();
            ring.insert(Partition::new(pid, KeyRange::full()));
            return ring;
        }
        let step = (1u128 << 64) / partitions as u128;
        let mut prev = Token(0);
        for i in 1..=partitions {
            let end = if i == partitions {
                Token(0) // close the ring back at origin
            } else {
                Token((step * i as u128) as u64)
            };
            let pid = ring.alloc_id();
            ring.insert(Partition::new(pid, KeyRange::new(prev, end)));
            prev = end;
        }
        ring
    }

    fn alloc_id(&mut self) -> PartitionId {
        let id = PartitionId(self.next_id);
        self.next_id += 1;
        id
    }

    fn insert(&mut self, p: Partition) {
        self.by_token.insert(p.range.end, p.id);
        self.ranges.insert(p.id, p.range);
    }

    /// This ring's identifier.
    pub const fn id(&self) -> RingId {
        self.id
    }

    /// Number of partitions currently tiling the ring.
    pub fn partition_count(&self) -> usize {
        self.by_token.len()
    }

    /// The partition responsible for `key`.
    pub fn route(&self, key: &[u8]) -> PartitionId {
        self.route_token(self.hasher.token(key))
    }

    /// The partition responsible for a raw ring position.
    pub fn route_token(&self, token: Token) -> PartitionId {
        // Owner is the first partition whose end token is ≥ the key token;
        // if none, the ring wraps to the smallest end token.
        match self.by_token.range(token..).next() {
            Some((_, &pid)) => pid,
            None => {
                let (_, &pid) = self
                    .by_token
                    .iter()
                    .next()
                    .expect("ring invariant: at least one partition");
                pid
            }
        }
    }

    /// The key range of partition `pid`, if it exists.
    pub fn range_of(&self, pid: PartitionId) -> Option<KeyRange> {
        self.ranges.get(&pid).copied()
    }

    /// Iterates over all partitions in ring order.
    pub fn partitions(&self) -> impl Iterator<Item = Partition> + '_ {
        self.by_token
            .iter()
            .map(move |(_, &pid)| Partition::new(pid, self.ranges[&pid]))
    }

    /// All partition ids in ring order.
    pub fn partition_ids(&self) -> Vec<PartitionId> {
        self.by_token.values().copied().collect()
    }

    /// Splits partition `pid` into two halves, retiring its id and returning
    /// the two fresh partitions (low half first).
    ///
    /// This implements the paper's 256 MB overflow rule: "we allow a maximum
    /// partition capacity of 256MB after which the data of the partition is
    /// split into two new ones" (§III-A). Deciding *when* to split is the
    /// caller's job; this method only performs the ring surgery.
    ///
    /// Returns `None` if `pid` does not exist or its range is too narrow to
    /// split (fewer than two ring positions).
    pub fn split_partition(&mut self, pid: PartitionId) -> Option<(Partition, Partition)> {
        let range = *self.ranges.get(&pid)?;
        if range.width() < 2 {
            return None;
        }
        let (low, high) = range.split();
        self.ranges.remove(&pid);
        self.by_token.remove(&range.end);
        let low_p = Partition::new(self.alloc_id(), low);
        let high_p = Partition::new(self.alloc_id(), high);
        self.insert(low_p);
        self.insert(high_p);
        Some((low_p, high_p))
    }

    /// The hasher used for key routing.
    pub const fn hasher(&self) -> KeyHasher {
        self.hasher
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn new_ring_tiles_evenly() {
        let ring = VirtualRing::new(RingId::new(0, 0), 8);
        assert_eq!(ring.partition_count(), 8);
        let widths: Vec<u128> = ring.partitions().map(|p| p.range.width()).collect();
        let total: u128 = widths.iter().sum();
        assert_eq!(total, 1u128 << 64);
        let expect = (1u128 << 64) / 8;
        for w in widths {
            assert_eq!(w, expect);
        }
    }

    #[test]
    fn single_partition_ring_is_full() {
        let ring = VirtualRing::new(RingId::new(0, 0), 1);
        assert_eq!(ring.partition_count(), 1);
        let p = ring.partitions().next().unwrap();
        assert!(p.range.is_full());
        assert_eq!(ring.route(b"anything"), p.id);
    }

    #[test]
    fn routing_agrees_with_ranges() {
        let ring = VirtualRing::new(RingId::new(1, 2), 16);
        for i in 0..2_000u32 {
            let key = i.to_le_bytes();
            let pid = ring.route(&key);
            let range = ring.range_of(pid).unwrap();
            assert!(range.contains(ring.hasher().token(&key)));
        }
    }

    #[test]
    fn split_preserves_coverage_and_retires_id() {
        let mut ring = VirtualRing::new(RingId::new(0, 0), 4);
        let victim = ring.partition_ids()[1];
        let before: Vec<_> = (0..500u32)
            .map(|i| ring.hasher().token(&i.to_le_bytes()))
            .collect();
        let (low, high) = ring.split_partition(victim).unwrap();
        assert_eq!(ring.partition_count(), 5);
        assert!(ring.range_of(victim).is_none(), "old id retired");
        assert_ne!(low.id, victim);
        assert_ne!(high.id, victim);
        // Every token is still owned by exactly one partition whose range
        // contains it.
        for t in before {
            let pid = ring.route_token(t);
            assert!(ring.range_of(pid).unwrap().contains(t));
        }
        let total: u128 = ring.partitions().map(|p| p.range.width()).sum();
        assert_eq!(total, 1u128 << 64);
    }

    #[test]
    fn split_keys_go_to_one_of_the_halves() {
        let mut ring = VirtualRing::new(RingId::new(0, 0), 2);
        let victim = ring.partition_ids()[0];
        let keys: Vec<[u8; 4]> = (0..1000u32)
            .map(|i| i.to_le_bytes())
            .filter(|k| ring.route(k) == victim)
            .collect();
        assert!(!keys.is_empty());
        let (low, high) = ring.split_partition(victim).unwrap();
        for k in keys {
            let pid = ring.route(&k);
            assert!(
                pid == low.id || pid == high.id,
                "key stayed in the split pair"
            );
        }
    }

    #[test]
    fn split_single_full_partition() {
        let mut ring = VirtualRing::new(RingId::new(0, 0), 1);
        let only = ring.partition_ids()[0];
        let (a, b) = ring.split_partition(only).unwrap();
        assert_eq!(ring.partition_count(), 2);
        assert_eq!(a.range.width() + b.range.width(), 1u128 << 64);
    }

    #[test]
    fn split_missing_partition_is_none() {
        let mut ring = VirtualRing::new(RingId::new(0, 0), 2);
        assert!(ring.split_partition(PartitionId(999)).is_none());
    }

    #[test]
    fn ids_are_never_reused() {
        let mut ring = VirtualRing::new(RingId::new(0, 0), 2);
        let mut seen: Vec<u64> = ring.partition_ids().iter().map(|p| p.0).collect();
        for _ in 0..6 {
            let pid = ring.partition_ids()[0];
            let (a, b) = ring.split_partition(pid).unwrap();
            assert!(!seen.contains(&a.id.0));
            assert!(!seen.contains(&b.id.0));
            seen.push(a.id.0);
            seen.push(b.id.0);
        }
    }

    #[test]
    #[should_panic(expected = "at least one partition")]
    fn zero_partitions_rejected() {
        let _ = VirtualRing::new(RingId::new(0, 0), 0);
    }

    #[test]
    fn distinct_hashers_scatter_keys_differently() {
        let a = VirtualRing::with_hasher(RingId::new(0, 0), 64, KeyHasher::with_seed(1));
        let b = VirtualRing::with_hasher(RingId::new(1, 0), 64, KeyHasher::with_seed(2));
        let moved = (0..512u32)
            .filter(|i| {
                let k = i.to_le_bytes();
                a.route(&k) != b.route(&k)
            })
            .count();
        assert!(
            moved > 256,
            "different seeds should shuffle most keys, moved={moved}"
        );
    }

    proptest! {
        #[test]
        fn prop_routing_total_after_random_splits(
            partitions in 1usize..32,
            splits in proptest::collection::vec(any::<u64>(), 0..8),
            probes in proptest::collection::vec(any::<u64>(), 1..64),
        ) {
            let mut ring = VirtualRing::new(RingId::new(0, 0), partitions);
            for s in splits {
                let ids = ring.partition_ids();
                let victim = ids[(s % ids.len() as u64) as usize];
                let _ = ring.split_partition(victim);
            }
            let total: u128 = ring.partitions().map(|p| p.range.width()).sum();
            prop_assert_eq!(total, 1u128 << 64);
            for probe in probes {
                let pid = ring.route_token(Token(probe));
                let range = ring.range_of(pid).unwrap();
                prop_assert!(range.contains(Token(probe)));
            }
        }
    }
}
