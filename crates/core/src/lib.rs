//! # skute-core
//!
//! The Skute self-managed key-value store: the paper's primary contribution.
//!
//! Skute offers **differentiated data availability guarantees** to multiple
//! applications sharing one cloud of federated servers, at minimal rent
//! cost. Each application gets one *virtual ring* per availability level
//! (Fig. 1); every partition of every ring is represented by virtual nodes
//! (one per replica) that act as decentralized optimizers: at the end of
//! each epoch a virtual node decides to **replicate**, **migrate**,
//! **suicide** or do nothing (§II-C), driven by
//!
//! * the availability of its partition (eq. 2, [`availability`]),
//! * its balance `b = u(pop, g) − c` (eq. 5, `skute-economy`),
//! * candidate scoring `max Σ g·conf·diversity − c` (eq. 3),
//!
//! under per-epoch replication/migration bandwidth budgets and storage
//! capacities (`skute-cluster`).
//!
//! The entry point is [`SkuteCloud`]: commission a cluster, register
//! applications with [`AppSpec`], feed per-epoch query loads, and call
//! [`SkuteCloud::end_epoch`] to run the decentralized decision process and
//! collect an [`EpochReport`].
//!
//! ```
//! use skute_core::{AppSpec, LevelSpec, SkuteCloud, SkuteConfig};
//! use skute_cluster::{Capacities, Cluster, ServerSpec};
//! use skute_geo::Topology;
//!
//! let topology = Topology::paper();
//! let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
//!     location,
//!     capacities: Capacities::paper(10 << 30, 3_000.0),
//!     monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
//!     confidence: 1.0,
//! });
//! let mut cloud = SkuteCloud::new(SkuteConfig::paper(), topology, cluster);
//! let app = cloud
//!     .create_application(AppSpec::new("photos").level(LevelSpec::new(3, 16)))
//!     .unwrap();
//! cloud.begin_epoch();
//! cloud.put(app, 0, b"user:1", b"hello".to_vec()).unwrap();
//! let report = cloud.end_epoch();
//! assert_eq!(report.epoch, 1);
//! let value = cloud.get(app, 0, b"user:1").unwrap().unwrap();
//! assert_eq!(value.as_ref(), b"hello");
//! ```

#![warn(missing_docs)]

pub mod app;
pub mod availability;
mod batch;
pub mod cloud;
pub mod config;
pub mod decision;
pub mod error;
pub mod metrics;
pub mod obs;
pub mod pipeline;
pub mod placement;
pub mod vnode;

pub use app::{AppId, AppSpec, Application, AvailabilityLevel, LevelSpec};
// Fault-model types consumers configure the cloud with, re-exported so
// downstream crates (sim, server) need no direct skute-store dependency.
pub use availability::{availability_of, greedy_max_availability, threshold_for_replicas};
pub use batch::{build_batches, ActionFootprint, CommitStep};
pub use cloud::{ClientRead, ReadConsistency, SkuteCloud, TrafficBatch};
pub use config::SkuteConfig;
pub use decision::{Action, ActionCounts};
pub use error::CoreError;
pub use metrics::{AntiEntropyReport, EpochReport, RingReport, ScrubReport};
pub use obs::CloudMetrics;
pub use pipeline::EpochPipeline;
pub use placement::{PlacementContext, PlacementIndex, PlacementStrategy, WalkScratch};
pub use skute_store::{FaultPlan, FaultPlanKind, GrayMode};
pub use vnode::{DeliveryPlan, PartitionState, Replica, VnodeId};
