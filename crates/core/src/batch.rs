//! Conflict-free batching of the economic-decision commit.
//!
//! The sequential decision commit resolves each action of the seeded
//! shuffle order against live state — capacity meters, the rent board,
//! the placement index — and then mutates exactly two kinds of state:
//! **shared** capacity meters (moved eagerly, at resolution time, so every
//! later resolution reads exact balances) and **partition-local**
//! placement (store forks, replica pushes/removals/reassignments, the
//! membership bump). Only the partition-local half is deferred here: a
//! [`DeferredOp`] captures everything the placement needs, and ops whose
//! actions touch pairwise-disjoint servers *and* pairwise-disjoint
//! partitions accumulate into one batch, applied in a single worker-pool
//! dispatch at the next flush.
//!
//! Disjointness is proven with the same machinery the speculation
//! validator uses: a [`SpecWriteSet`] records each admitted action's
//! touched servers split by mutation direction (*worse-only* reserves —
//! replication/migration targets — vs *mixed* releases — migration
//! sources, suicides), so a candidate action's overlap check is a pair of
//! binary searches per touched server; touched partitions are a plain
//! sorted-scan over the (at most batch-width-sized) list. Two flush
//! triggers keep every read exact:
//!
//! * **partition reuse** — before an action *resolves* (which reads its
//!   partition's live replicas), an open batch holding a pending op on
//!   that partition is flushed; the batch therefore never holds two ops on
//!   one partition, and every resolution sees fully-applied state;
//! * **server reuse** — an op touching a server the open batch already
//!   touched flushes the batch and then applies **in place** (the
//!   sequential fallback, counted in `ActionCounts::batch_conflicts`), so
//!   the global apply order of conflicting actions stays exactly the
//!   resolution order.
//!
//! Batch boundaries depend only on the resolved action sequence — which
//! is thread-invariant — so the batch counters are identical at every
//! thread count, and the placements themselves commute (disjoint
//! partitions own disjoint replica vectors and stores, and measured byte
//! counters accumulate in op order at the flush). [`build_batches`] is
//! the pure model of this policy over a pre-recorded action footprint
//! list, property-tested below; the streaming [`DecisionBatcher`] is the
//! exact same policy fed one action at a time by the commit loop.

use skute_cluster::ServerId;
use skute_ring::PartitionId;

use crate::placement::SpecWriteSet;
use crate::vnode::{PartitionState, Replica, VnodeId};

/// One decision action's deferred partition-local placement: the
/// partition it applies to (for the dispatch's move/restore round trip)
/// and everything the finish half of the corresponding `exec_*` needs
/// beyond the partition itself. Replica indices are stable between
/// resolution and apply because an open batch never holds two ops on one
/// partition.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DeferredOp {
    /// Ring index of the partition.
    pub ri: usize,
    /// Ring-local partition id.
    pub pid: PartitionId,
    /// The placement itself.
    pub kind: DeferredKind,
}

/// The placement half of one executed decision action (its meters were
/// already moved at resolution time).
#[derive(Debug, Clone, Copy)]
pub(crate) enum DeferredKind {
    /// Push a fork of replica `src_idx`'s store as a new replica on
    /// `target`.
    Replication {
        /// Source replica whose store is forked.
        src_idx: usize,
        /// Hosting server of the new replica.
        target: ServerId,
        /// Vnode id allocated at resolution time.
        vid: VnodeId,
        /// Balance-window length of the new replica.
        window: usize,
        /// Creation epoch of the new replica.
        epoch: u64,
    },
    /// Reassign replica `idx` to `target` and reset its balance window.
    Migration {
        /// Replica being moved.
        idx: usize,
        /// Destination server.
        target: ServerId,
    },
    /// Remove replica `idx` (the storage was released at resolution).
    Suicide {
        /// Replica being removed.
        idx: usize,
    },
}

/// One op of a batch dispatch: the op, its partition (moved out of the
/// ring map for the dispatch), and the measured bytes the placement
/// physically streamed (filled by the worker, accumulated in op order at
/// the barrier).
pub(crate) struct BatchTask {
    pub op: DeferredOp,
    pub part: PartitionState,
    pub measured: u64,
}

/// Applies one deferred placement to its partition — the finish half of
/// the corresponding `exec_*`, bit-identical to the in-place sequential
/// application because it reads and writes only this partition (stores
/// carry their own fault injectors, so parallel forks of *distinct*
/// partitions cannot perturb each other's fault draws). Returns the
/// measured bytes the store physically streamed (0 for a suicide).
pub(crate) fn apply_deferred(op: &DeferredKind, part: &mut PartitionState) -> u64 {
    match *op {
        DeferredKind::Replication {
            src_idx,
            target,
            vid,
            window,
            epoch,
        } => {
            let (store, physical) = part.replicas[src_idx].store.fork();
            // The synthetic portion has no materialized bytes on any
            // backend; the mem oracle reports no measurement and prices
            // the transfer at logical size.
            let measured = match physical {
                Some(store_bytes) => part.synthetic_bytes + store_bytes,
                None => part.synthetic_bytes + part.replicas[src_idx].store.logical_bytes(),
            };
            let mut replica = Replica::new(vid, target, window, epoch);
            replica.store = store;
            part.replicas.push(replica);
            part.note_membership_changed();
            measured
        }
        DeferredKind::Migration { idx, target } => {
            let measured = match part.replicas[idx].store.measured_transfer() {
                Some(store_bytes) => part.synthetic_bytes + store_bytes,
                None => part.synthetic_bytes + part.replicas[idx].store.logical_bytes(),
            };
            part.replicas[idx].server = target;
            part.replicas[idx].balance.reset_window();
            part.note_membership_changed();
            measured
        }
        DeferredKind::Suicide { idx } => {
            part.replicas.remove(idx);
            part.note_membership_changed();
            0
        }
    }
}

/// The open batch of the decision commit: touched servers (direction-split
/// in a [`SpecWriteSet`]), touched partitions, the deferred ops (empty
/// when the commit applies in place and only counts), and the batch
/// width. Reused across epochs.
#[derive(Debug, Default)]
pub(crate) struct DecisionBatcher {
    servers: SpecWriteSet,
    parts: Vec<(usize, PartitionId)>,
    ops: Vec<DeferredOp>,
    width: usize,
}

impl DecisionBatcher {
    /// True when the open batch holds a pending op on `part` — the caller
    /// must flush before reading (or resolving against) that partition.
    pub(crate) fn touches_partition(&self, part: (usize, PartitionId)) -> bool {
        self.parts.contains(&part)
    }

    /// True when the open batch already touched any of `servers` — the
    /// caller must flush and apply the action in place (the sequential
    /// fallback).
    pub(crate) fn conflicts(&self, servers: &[(ServerId, bool)]) -> bool {
        servers.iter().any(|&(id, _)| self.servers.contains(id))
    }

    /// Admits one action to the open batch: records its touched servers
    /// (with their mutation direction) and partition. The caller proves
    /// disjointness first via [`DecisionBatcher::touches_partition`] and
    /// [`DecisionBatcher::conflicts`].
    pub(crate) fn admit(&mut self, servers: &[(ServerId, bool)], part: (usize, PartitionId)) {
        debug_assert!(!self.touches_partition(part));
        debug_assert!(!self.conflicts(servers));
        for &(id, worse) in servers {
            self.servers.record(id, worse);
        }
        self.parts.push(part);
        self.width += 1;
    }

    /// Defers the admitted action's placement (parallel-commit mode; the
    /// in-place mode admits without deferring and the flush only counts).
    pub(crate) fn defer(&mut self, op: DeferredOp) {
        debug_assert!(self.ops.len() < self.width);
        self.ops.push(op);
    }

    /// Number of actions in the open batch.
    pub(crate) fn width(&self) -> usize {
        self.width
    }

    /// Takes the deferred ops for a flush dispatch.
    pub(crate) fn take_ops(&mut self) -> Vec<DeferredOp> {
        std::mem::take(&mut self.ops)
    }

    /// Closes the open batch (the flush applied or counted everything).
    pub(crate) fn reset(&mut self) {
        self.servers.clear();
        self.parts.clear();
        self.ops.clear();
        self.width = 0;
    }
}

/// The touched-resource footprint of one committed action: the servers
/// whose meters it moved (`true` = reserve-only direction — replication
/// and migration targets; `false` = some release — migration sources,
/// suicides) and the partition whose placement it defers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActionFootprint {
    /// Touched servers with their mutation direction.
    pub servers: Vec<(ServerId, bool)>,
    /// The partition the action's deferred placement applies to.
    pub partition: (usize, PartitionId),
}

/// One step of a batched commit: a maximal conflict-free batch (applied
/// in one pool dispatch, in index order at the merge) or a single action
/// applied in place because it conflicted with its batch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommitStep {
    /// Pairwise server- and partition-disjoint actions, by index.
    Batch(Vec<usize>),
    /// A conflicting action applied sequentially after its batch flushed.
    Inline(usize),
}

/// The pure model of the commit loop's greedy batching policy: partitions
/// the action list, in order, into maximal batches of pairwise
/// server-disjoint and partition-disjoint actions, flushing on partition
/// reuse (the action then opens the next batch) and falling back to
/// in-place application on server reuse. The streaming commit additionally
/// flushes when a *non-acting* vnode needs to read a partition with a
/// pending op — that only adds batch boundaries, never co-batching — so
/// every invariant proven here holds for the live commit too.
pub fn build_batches(actions: &[ActionFootprint]) -> Vec<CommitStep> {
    let mut batcher = DecisionBatcher::default();
    let mut steps = Vec::new();
    let mut open: Vec<usize> = Vec::new();
    for (i, action) in actions.iter().enumerate() {
        if batcher.touches_partition(action.partition) {
            steps.push(CommitStep::Batch(std::mem::take(&mut open)));
            batcher.reset();
        }
        if batcher.conflicts(&action.servers) {
            steps.push(CommitStep::Batch(std::mem::take(&mut open)));
            batcher.reset();
            steps.push(CommitStep::Inline(i));
            continue;
        }
        batcher.admit(&action.servers, action.partition);
        open.push(i);
    }
    if !open.is_empty() {
        steps.push(CommitStep::Batch(open));
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use skute_economy::BalanceHistory;

    fn part_with_replicas(servers: &[u32]) -> PartitionState {
        let mut p = PartitionState::new(PartitionId(0), 1.0);
        p.synthetic_bytes = 100;
        for (i, &s) in servers.iter().enumerate() {
            p.replicas
                .push(Replica::new(VnodeId(i as u64), ServerId(s), 3, 0));
        }
        p
    }

    #[test]
    fn apply_deferred_replication_pushes_fork() {
        let mut p = part_with_replicas(&[1, 2]);
        let op = DeferredKind::Replication {
            src_idx: 1,
            target: ServerId(9),
            vid: VnodeId(7),
            window: 5,
            epoch: 3,
        };
        let v0 = p.membership_version;
        let measured = apply_deferred(&op, &mut p);
        assert_eq!(measured, 100, "mem oracle measures at logical size");
        assert_eq!(p.replicas.len(), 3);
        let new = p.replicas.last().unwrap();
        assert_eq!(new.id, VnodeId(7));
        assert_eq!(new.server, ServerId(9));
        assert_eq!(new.created_epoch, 3);
        assert_eq!(p.membership_version, v0 + 1);
        assert_eq!(p.cached_availability, None);
    }

    #[test]
    fn apply_deferred_migration_reassigns_and_resets() {
        let mut p = part_with_replicas(&[1, 2]);
        p.replicas[0].balance = BalanceHistory::new(3);
        p.replicas[0].balance.record(-1.0);
        let op = DeferredKind::Migration {
            idx: 0,
            target: ServerId(5),
        };
        let measured = apply_deferred(&op, &mut p);
        assert_eq!(measured, 100);
        assert_eq!(p.replicas[0].server, ServerId(5));
        assert_eq!(p.replicas[0].balance.window_mean(), None, "window reset");
    }

    #[test]
    fn apply_deferred_suicide_removes() {
        let mut p = part_with_replicas(&[1, 2, 3]);
        let op = DeferredKind::Suicide { idx: 1 };
        assert_eq!(apply_deferred(&op, &mut p), 0);
        assert_eq!(p.replica_servers(), vec![ServerId(1), ServerId(3)]);
    }

    fn fp(servers: &[(u32, bool)], part: (usize, u64)) -> ActionFootprint {
        ActionFootprint {
            servers: servers.iter().map(|&(s, w)| (ServerId(s), w)).collect(),
            partition: (part.0, PartitionId(part.1)),
        }
    }

    #[test]
    fn disjoint_actions_share_one_batch() {
        let actions = vec![
            fp(&[(1, true)], (0, 0)),
            fp(&[(2, false), (3, true)], (0, 1)),
            fp(&[(4, false)], (1, 0)),
        ];
        assert_eq!(
            build_batches(&actions),
            vec![CommitStep::Batch(vec![0, 1, 2])]
        );
    }

    #[test]
    fn partition_reuse_flushes_and_opens_next_batch() {
        let actions = vec![
            fp(&[(1, true)], (0, 0)),
            fp(&[(2, true)], (0, 0)), // same partition: flush, new batch
            fp(&[(3, true)], (0, 1)),
        ];
        assert_eq!(
            build_batches(&actions),
            vec![CommitStep::Batch(vec![0]), CommitStep::Batch(vec![1, 2])]
        );
    }

    #[test]
    fn server_reuse_falls_back_to_inline() {
        let actions = vec![
            fp(&[(1, true)], (0, 0)),
            fp(&[(1, false), (2, true)], (0, 1)), // shares server 1
            fp(&[(3, true)], (0, 2)),
        ];
        assert_eq!(
            build_batches(&actions),
            vec![
                CommitStep::Batch(vec![0]),
                CommitStep::Inline(1),
                CommitStep::Batch(vec![2]),
            ]
        );
    }

    #[test]
    fn both_directions_conflict() {
        // A release-direction touch conflicts with a later reserve and
        // vice versa: `SpecWriteSet::contains` checks both sets.
        let actions = vec![
            fp(&[(1, false)], (0, 0)),
            fp(&[(1, true)], (0, 1)),
            fp(&[(2, true)], (0, 2)),
            fp(&[(2, false)], (0, 3)),
        ];
        let steps = build_batches(&actions);
        assert_eq!(
            steps,
            vec![
                CommitStep::Batch(vec![0]),
                CommitStep::Inline(1),
                CommitStep::Batch(vec![2]),
                CommitStep::Inline(3),
            ]
        );
    }

    proptest::proptest! {
        /// The batching contract: the steps are a partition of the action
        /// list preserving relative order (flattening the steps in
        /// emission order replays exactly `0..n`), and no batch ever
        /// co-holds two actions sharing a touched server or a partition —
        /// so conflicting actions always apply in resolution order.
        #[test]
        fn prop_build_batches_partitions_conflict_free(
            picks in proptest::collection::vec(
                (
                    proptest::collection::vec((0u32..12, proptest::prelude::any::<bool>()), 1..4),
                    0usize..3,
                    0u64..6,
                ),
                0..40,
            ),
        ) {
            let actions: Vec<ActionFootprint> = picks
                .iter()
                .map(|(servers, ri, pid)| fp(servers, (*ri, *pid)))
                .collect();
            let steps = build_batches(&actions);
            // A partition of 0..n in order: flattening replays the list.
            let flat: Vec<usize> = steps
                .iter()
                .flat_map(|s| match s {
                    CommitStep::Batch(ids) => ids.clone(),
                    CommitStep::Inline(i) => vec![*i],
                })
                .collect();
            let expect: Vec<usize> = (0..actions.len()).collect();
            assert_eq!(flat, expect, "steps must partition the action list in order");
            // No batch co-holds a shared server or partition.
            for step in &steps {
                let CommitStep::Batch(ids) = step else { continue };
                for (a, &i) in ids.iter().enumerate() {
                    for &j in &ids[a + 1..] {
                        assert_ne!(
                            actions[i].partition, actions[j].partition,
                            "batch co-holds partition {:?}",
                            actions[i].partition
                        );
                        for &(s, _) in &actions[i].servers {
                            assert!(
                                !actions[j].servers.iter().any(|&(t, _)| t == s),
                                "batch co-holds server {s:?} (actions {i} and {j})"
                            );
                        }
                    }
                }
            }
            // Conflicting pairs always commit in resolution order: implied
            // by the flatten check, asserted directly for the pairs.
            let mut step_of = vec![0usize; actions.len()];
            for (si, step) in steps.iter().enumerate() {
                match step {
                    CommitStep::Batch(ids) => ids.iter().for_each(|&i| step_of[i] = si),
                    CommitStep::Inline(i) => step_of[*i] = si,
                }
            }
            for i in 0..actions.len() {
                for j in i + 1..actions.len() {
                    let shared = actions[i].partition == actions[j].partition
                        || actions[i]
                            .servers
                            .iter()
                            .any(|&(s, _)| actions[j].servers.iter().any(|&(t, _)| t == s));
                    if shared {
                        assert!(
                            step_of[i] < step_of[j],
                            "conflicting actions {i} and {j} must stay ordered"
                        );
                    }
                }
            }
        }
    }
}
