//! The deterministic parallel epoch pipeline.
//!
//! [`crate::SkuteCloud`] runs every epoch through three phases — **traffic
//! delivery**, **availability repair**, **economic decisions** — each
//! structured as
//!
//! 1. a **parallel plan pass** that fans out across partitions on the
//!    persistent [`WorkerPool`]: pure per-partition computation against
//!    state that is immutable for the duration of the phase (server
//!    locations, confidences, posted rents, the refreshed
//!    [`PlacementIndex`] snapshot), writing only partition-local state and
//!    per-shard scratch;
//! 2. a **sequential commit pass** that applies every effect on shared
//!    state — capacity meters, rent-board-indexed structures, executed
//!    actions — in a fixed order (ring/partition order for traffic, the
//!    seeded shuffle order for decisions). Traffic delivery additionally
//!    splits its commit: the sequential reconciliation only validates and
//!    applies capacity-meter movement, while the per-replica accrual of
//!    spill-free partitions runs as a second parallel pass (see
//!    [`crate::SkuteCloud::deliver_queries_multi`]).
//!
//! The pool holds parked workers for the lifetime of the cloud; the
//! workspace denies `unsafe_code`, so jobs must own their data — each
//! phase **moves** its partitions out of the ring maps into owned task
//! chunks, ships shared inputs (cluster, board, index, topology) through
//! an `Arc` context that the cloud takes out of itself and reclaims at the
//! phase barrier (`Arc::try_unwrap`; [`WorkerPool::run_tasks`] guarantees
//! every job's context clone is dropped before its result is published),
//! and restores the partitions in deterministic order afterwards.
//!
//! Determinism is structural, not incidental:
//!
//! * plan passes are order-independent per item, so chunk boundaries and
//!   worker scheduling cannot change any result, and
//!   [`WorkerPool::run_tasks`] returns results in task order, never
//!   completion order;
//! * per-shard accumulators ([`ShardAccounts`]) merge in (shard,
//!   insertion) order — with contiguous chunks that is the original item
//!   order, so floating-point folds keep the exact bits of the sequential
//!   loop they replaced;
//! * per-worker scratch ([`WalkScratch`], placement buffers) carries no
//!   state between items; the only randomness in the epoch loop (the
//!   repair and decision shuffles, server seeding) stays on the cloud's
//!   sequential RNG stream — a future phase that needs randomness inside
//!   a plan pass must derive per-shard streams via
//!   [`skute_exec::stream_seed`] from the cloud seed plus the
//!   (deterministic) shard id, never from worker identity;
//! * speculative placement targets computed by the plan pass carry their
//!   walk's **read set** ([`WalkScratch`] records every candidate entry a
//!   query examined); the commit pass tracks the servers each committed
//!   action touches and honors a later speculation only when
//!   `crate::placement::validate_speculation` proves those touches cannot
//!   have changed its answer — otherwise it re-runs on the live state
//!   exactly as the sequential loop would. Honored or re-walked, the
//!   executed action is bit-identical to a fresh walk (property-tested,
//!   and asserted end-to-end against the `SkuteConfig::no_speculation`
//!   oracle that re-walks everything).
//!
//! The result: same-seed trajectories are **bitwise identical at every
//! thread count**, including `threads = 1`, which runs the identical code
//! inline with zero spawns.

use std::collections::BTreeMap;
use std::sync::Arc;

use skute_cluster::{Board, Cluster, ServerId};
use skute_economy::{floored_utility, EconomyConfig, ProximityCache, RegionQueries};
use skute_exec::{split_chunks, ShardAccounts, WorkerPool};
use skute_geo::{Location, RegionWeight, Topology};
use skute_ring::PartitionId;

use crate::availability::availability_of;
use crate::batch::{apply_deferred, BatchTask};
use crate::decision::{classify, Intent, VnodeSituation};
use crate::metrics::mean_cv;
use crate::placement::{economic_target, PlacementContext, PlacementIndex, WalkScratch};
use crate::vnode::{DeliveryPlan, PartitionState};

/// Chunk size of a compute-heavy parallel phase over `n` partitions. Small
/// inputs stay in one chunk (which runs inline, with zero queue traffic);
/// large inputs split into at most ~16 chunks so work distribution stays
/// coarse. Never depends on the thread count — only results-irrelevant
/// scheduling does.
fn phase_chunk(n: usize) -> usize {
    if n < 64 {
        n.max(1)
    } else {
        n.div_ceil(16).max(16)
    }
}

/// Chunk size of a light bookkeeping phase (per-item work is a few loads
/// and pushes, often cache hits): a much higher inline threshold, so the
/// fan-out only pays for itself on genuinely large rings.
fn light_chunk(n: usize) -> usize {
    if n < 512 {
        n.max(1)
    } else {
        n.div_ceil(8).max(64)
    }
}

/// Everything one virtual node's economic decision needs that is fixed for
/// the duration of the decision phase, precomputed by the parallel plan
/// pass and consumed by the sequential commit pass.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PreDecision {
    /// The vnode's server had no posted rent: the commit pass skips the
    /// item entirely (matching the sequential loop's `continue`).
    pub skip: bool,
    /// Posted rent of the hosting server this epoch.
    pub rent: f64,
    /// Floored eq.-(5) utility earned this epoch.
    pub u_eff: f64,
    /// Consistency network cost of one extra replica.
    pub consistency_cost: f64,
    /// Partition membership version the situation below was computed at;
    /// a mismatch at commit time means an earlier committed action changed
    /// the partition and the situation must be recomputed live.
    pub membership_version: u64,
    /// Replica count at plan time.
    pub replica_count: usize,
    /// Eq.-(2) availability of the partition without this replica.
    pub availability_without_self: f64,
    /// Balance-window streaks and mean, read *after* recording this
    /// epoch's balance (the plan pass owns the recording).
    pub negative_streak: bool,
    /// See `negative_streak`.
    pub positive_streak: bool,
    /// Mean balance over the window, if any history exists.
    pub window_mean: Option<f64>,
    /// True when the plan pass ran a speculative eq.-(3) target query for
    /// this vnode (its planned intent needed one).
    pub spec_computed: bool,
    /// The speculative target (`None` = no feasible candidate), honored
    /// at commit time while its read set is untouched by the preceding
    /// committed actions (see `crate::placement::validate_speculation`).
    pub spec: Option<(ServerId, f64)>,
    /// Start of this speculation's read set in the pipeline's flat arena
    /// ([`EpochPipeline::spec_reads`]; empty in release builds, where
    /// validation rests on the dominance theorem instead of per-server
    /// read lookups).
    pub spec_reads_start: u32,
    /// Length of the read-set slice.
    pub spec_reads_len: u32,
    /// The speculative query read every candidate (oracle-scan paths:
    /// brute-force routing, client-zone region mixes), so the debug
    /// cross-check re-scores every weakened touched server.
    pub spec_reads_all: bool,
}

/// One ring's slice of a batched traffic-delivery plan pass: the batch
/// parameters plus the ring's partitions, **moved** out of the ring map
/// for the dispatch and restored afterwards.
pub(crate) struct DeliveryBatch {
    /// Index of the ring in the cloud's ring table.
    pub ring_idx: usize,
    /// Queries offered to the ring this epoch.
    pub total_queries: f64,
    /// Σ popularity over the ring's partitions (the proportional-split
    /// denominator), computed before the partitions were moved out.
    pub total_pop: f64,
    /// Client regions with normalized weights.
    pub regions: Vec<RegionWeight>,
    /// The ring's partitions in ascending partition-id order.
    pub parts: Vec<(PartitionId, PartitionState)>,
}

/// One partition's slice of the decision plan pass, moved out of its ring
/// map for the dispatch.
pub(crate) struct DecisionItem {
    /// Index of the ring in the cloud's ring table.
    pub ring_idx: usize,
    /// The ring's SLA threshold.
    pub threshold: f64,
    /// Ring-local partition id (for restoring into the ring map).
    pub pid: PartitionId,
    /// The partition, owned for the duration of the dispatch.
    pub part: PartitionState,
}

/// Per-chunk scratch of the decision plan pass.
#[derive(Debug, Clone, Default)]
struct DecisionScratch {
    walk: WalkScratch,
    servers: Vec<ServerId>,
    placed: Vec<(Location, f64)>,
    /// Chunk-local read-set arena: each speculative walk's sorted read
    /// set, concatenated in slot order. The barrier splices the chunk
    /// arenas into [`EpochPipeline::spec_reads`], rebasing slot offsets.
    reads: Vec<ServerId>,
}

/// Per-ring aggregates of the epoch report, computed by the report plan
/// pass from sharded accumulators merged in deterministic order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RingPhaseStats {
    pub vnodes: usize,
    pub mean_availability: f64,
    pub min_availability: f64,
    pub sla_satisfied_frac: f64,
    pub load_cv: f64,
}

/// Shared context of the decision plan pass, taken out of the cloud for
/// the dispatch and reclaimed at the barrier.
struct DecisionCtx {
    cluster: Cluster,
    board: Board,
    topology: Arc<Topology>,
    economy: EconomyConfig,
    index: PlacementIndex,
    brute_force: bool,
    speculation: bool,
    min_rent: Option<f64>,
}

/// Borrowed view of the decision plan pass's shared inputs, common to the
/// owned-dispatch path (viewing a [`DecisionCtx`]) and the inline
/// single-thread path (viewing the cloud's fields directly).
pub(crate) struct DecisionInputs<'a> {
    pub cluster: &'a Cluster,
    pub board: &'a Board,
    pub topology: &'a Topology,
    pub economy: &'a EconomyConfig,
    pub index: &'a PlacementIndex,
    pub brute_force: bool,
    /// False routes the `SkuteConfig::no_speculation` oracle: the plan
    /// pass computes no speculative targets, so the commit pass re-walks
    /// every acting vnode on the live state. Bitwise-identical
    /// trajectories either way.
    pub speculation: bool,
    pub min_rent: Option<f64>,
}

/// Shared context of the delivery plan pass.
struct DeliveryCtx {
    cluster: Cluster,
    topology: Arc<Topology>,
    /// `(total_queries, total_pop, regions)` per batch.
    params: Vec<(f64, f64, Vec<RegionWeight>)>,
    /// Whether to precompute planned delivery events (only the reconciled
    /// parallel commit consumes them).
    with_events: bool,
}

/// Reclaims a phase context at the barrier. [`WorkerPool::run_tasks`]
/// guarantees every job dropped its context clone before publishing its
/// result, so by the time the dispatch returns the `Arc` is unique again.
fn reclaim<T>(ctx: Arc<T>) -> T {
    match Arc::try_unwrap(ctx) {
        Ok(ctx) => ctx,
        Err(_) => unreachable!("all phase jobs drop their context before finishing"),
    }
}

/// Phase orchestration and reusable scratch of the epoch loop: the
/// persistent worker pool, per-vnode decision slots, and the sharded
/// report accumulators. Owned by [`crate::SkuteCloud`]; one instance (and
/// therefore one set of parked workers) per cloud.
#[derive(Debug, Default)]
pub struct EpochPipeline {
    pool: WorkerPool,
    /// Per-vnode decision precomputation (indexed by work-list slot).
    pub(crate) pre: Vec<PreDecision>,
    /// Per-chunk scratch of the decision plan pass, reused across epochs.
    states: Vec<DecisionScratch>,
    /// Per-chunk slot buffers of the decision plan pass, reused across
    /// epochs (concatenated into `pre` in chunk order at the barrier).
    slot_bufs: Vec<Vec<PreDecision>>,
    /// Flat arena of every speculative walk's sorted read set, indexed by
    /// the `spec_reads_start`/`spec_reads_len` of each [`PreDecision`]
    /// slot. Rebuilt by every decision plan pass.
    pub(crate) spec_reads: Vec<ServerId>,
    // Report accumulators, reused across epochs.
    avail_acc: ShardAccounts<PartitionId, f64>,
    load_acc: ShardAccounts<ServerId, f64>,
    vnode_acc: ShardAccounts<ServerId, usize>,
    avail_merged: Vec<(PartitionId, f64)>,
    load_merged: Vec<(ServerId, f64)>,
    loads_flat: Vec<f64>,
    /// Cross-ring per-server vnode counts of the current report.
    vnodes_global: Vec<(ServerId, usize)>,
}

impl EpochPipeline {
    /// A pipeline running parallel phases on `threads` workers (`0` = the
    /// machine's available parallelism, `1` = fully inline). An explicit
    /// budget is honored exactly, even beyond the host's core count —
    /// oversubscription only costs wall clock (phase chunks are
    /// compute-bound), never determinism, and determinism tests rely on
    /// explicit budgets actually parking workers. The workers are spawned
    /// once, here, and live until the pipeline (i.e. the cloud) drops.
    pub fn new(threads: usize) -> Self {
        Self {
            pool: WorkerPool::new(threads),
            ..Self::default()
        }
    }

    /// The resolved worker budget of the parallel phases.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// Worker threads currently parked for this pipeline (`threads - 1`,
    /// or 0 for an inline pipeline).
    pub fn live_workers(&self) -> usize {
        self.pool.live_workers()
    }

    // ------------------------------------------------------------------
    // Phase 1: traffic delivery — batched parallel plan pass
    // ------------------------------------------------------------------

    /// Plans query delivery for every ring of a batch in **one** pool
    /// dispatch: for every partition, folds the epoch's region mix into
    /// `region_queries`, refreshes the proximity cache, fills the
    /// partition's [`DeliveryPlan`] (per-replica proximity weights, client
    /// distances, serving order) and precomputes the planned delivery
    /// event sequence. Reads only immutable-for-the-phase state; writes
    /// only partition-local state, so chunks are independent.
    pub(crate) fn plan_delivery_multi(
        &self,
        cluster: Cluster,
        topology: Arc<Topology>,
        mut batches: Vec<DeliveryBatch>,
        with_events: bool,
    ) -> (Cluster, Vec<DeliveryBatch>) {
        let mut tasks: Vec<(usize, Vec<(PartitionId, PartitionState)>)> = Vec::new();
        let mut params: Vec<(f64, f64, Vec<RegionWeight>)> = Vec::with_capacity(batches.len());
        for (bi, batch) in batches.iter_mut().enumerate() {
            params.push((
                batch.total_queries,
                batch.total_pop,
                std::mem::take(&mut batch.regions),
            ));
            let parts = std::mem::take(&mut batch.parts);
            let chunk = phase_chunk(parts.len());
            for chunk in split_chunks(parts, chunk) {
                tasks.push((bi, chunk));
            }
        }
        let ctx = Arc::new(DeliveryCtx {
            cluster,
            topology,
            params,
            with_events,
        });
        let job_ctx = Arc::clone(&ctx);
        let results = self.pool.run_tasks(tasks, move |_, (bi, mut chunk)| {
            let (total_queries, total_pop, regions) = &job_ctx.params[bi];
            for (_, part) in &mut chunk {
                plan_one_delivery(
                    part,
                    &job_ctx.cluster,
                    &job_ctx.topology,
                    regions,
                    *total_queries,
                    *total_pop,
                    job_ctx.with_events,
                );
            }
            (bi, chunk)
        });
        // Task order = (batch, chunk) order, so extending per batch
        // restores the original ascending partition order.
        for (bi, chunk) in results {
            batches[bi].parts.extend(chunk);
        }
        let ctx = reclaim(ctx);
        for (batch, (_, _, regions)) in batches.iter_mut().zip(ctx.params) {
            batch.regions = regions;
        }
        (ctx.cluster, batches)
    }

    /// The parallel accrual half of the traffic commit: partitions whose
    /// planned events committed spill-free (marked by the reconciliation
    /// pass via [`DeliveryPlan::accrual_pending`]) apply their per-replica
    /// query counts and eq.-(5) utility from the planned event sequence —
    /// partition-local arithmetic, bit-identical to the sequential
    /// commit's in-loop accrual because the event values and per-replica
    /// fold order are exactly the ones the sequential loop would produce.
    pub(crate) fn apply_traffic_accrual(
        &self,
        parts: Vec<(usize, PartitionId, PartitionState)>,
        gamma: f64,
    ) -> Vec<(usize, PartitionId, PartitionState)> {
        let chunk = light_chunk(parts.len());
        let tasks = split_chunks(parts, chunk);
        let results = self.pool.run_tasks(tasks, move |_, mut chunk| {
            for (_, _, part) in &mut chunk {
                accrue_one(part, gamma);
            }
            chunk
        });
        results.into_iter().flatten().collect()
    }

    // ------------------------------------------------------------------
    // Phase 2: availability repair — parallel pre-pass
    // ------------------------------------------------------------------

    /// Warms the memoized eq.-(2) availability of `parts` (the caller
    /// passes only cache misses) so the sequential repair scan reads
    /// cached floats. In the converged steady state the miss set is empty
    /// and the caller skips the dispatch entirely.
    pub(crate) fn warm_availability(
        &self,
        cluster: Cluster,
        parts: Vec<(usize, PartitionId, PartitionState)>,
    ) -> (Cluster, Vec<(usize, PartitionId, PartitionState)>) {
        let chunk = phase_chunk(parts.len());
        let tasks = split_chunks(parts, chunk);
        let ctx = Arc::new(cluster);
        let job_ctx = Arc::clone(&ctx);
        let results = self.pool.run_tasks(tasks, move |_, mut chunk| {
            for (_, _, part) in &mut chunk {
                let _ = cached_availability(&job_ctx, part);
            }
            chunk
        });
        (reclaim(ctx), results.into_iter().flatten().collect())
    }

    /// The repair pass's parallel plan pass: one speculative eq.-(3)
    /// target query per below-threshold candidate partition against the
    /// frozen index snapshot, filling [`EpochPipeline::pre`] with one
    /// slot per candidate in flat (ring, partition) order. The sequential
    /// commit (the seeded shuffle scan of
    /// `crate::SkuteCloud::repair_availability`) honors each speculation
    /// on a candidate's **first** repair iteration while read-set
    /// validation holds, and re-walks the live state otherwise — follow-up
    /// iterations always re-walk, exactly like the sequential oracle.
    pub(crate) fn repairs_prepass(
        &mut self,
        cluster: Cluster,
        board: Board,
        topology: Arc<Topology>,
        economy: EconomyConfig,
        index: PlacementIndex,
        items: Vec<DecisionItem>,
    ) -> (Cluster, Board, PlacementIndex, Vec<DecisionItem>) {
        let chunk = phase_chunk(items.len());
        let chunks = split_chunks(items, chunk);
        let n_chunks = chunks.len();
        self.states.truncate(n_chunks);
        while self.states.len() < n_chunks {
            self.states.push(DecisionScratch::default());
        }
        self.slot_bufs.truncate(n_chunks);
        while self.slot_bufs.len() < n_chunks {
            self.slot_bufs.push(Vec::new());
        }
        let tasks: Vec<(Vec<DecisionItem>, Vec<PreDecision>, DecisionScratch)> = chunks
            .into_iter()
            .zip(self.slot_bufs.iter_mut().map(std::mem::take))
            .zip(self.states.iter_mut().map(std::mem::take))
            .map(|((items, mut slots), mut scratch)| {
                slots.clear();
                scratch.reads.clear();
                (items, slots, scratch)
            })
            .collect();
        let ctx = Arc::new(DecisionCtx {
            cluster,
            board,
            topology,
            economy,
            index,
            brute_force: false,
            speculation: true,
            min_rent: None,
        });
        let job_ctx = Arc::clone(&ctx);
        let results = self
            .pool
            .run_tasks(tasks, move |_, (mut items, mut slots, mut scratch)| {
                let inputs = DecisionInputs {
                    cluster: &job_ctx.cluster,
                    board: &job_ctx.board,
                    topology: &job_ctx.topology,
                    economy: &job_ctx.economy,
                    index: &job_ctx.index,
                    brute_force: job_ctx.brute_force,
                    speculation: job_ctx.speculation,
                    min_rent: job_ctx.min_rent,
                };
                for item in &mut items {
                    plan_one_repair(&mut item.part, &inputs, &mut slots, &mut scratch);
                }
                (items, slots, scratch)
            });
        // Chunk order = flat candidate order: splice exactly like the
        // decision prepass.
        self.pre.clear();
        self.spec_reads.clear();
        let mut items_back: Vec<DecisionItem> = Vec::new();
        for (ci, (items, slots, scratch)) in results.into_iter().enumerate() {
            items_back.extend(items);
            let base = self.spec_reads.len() as u32;
            self.spec_reads.extend_from_slice(&scratch.reads);
            let start = self.pre.len();
            self.pre.extend_from_slice(&slots);
            if base > 0 {
                for p in &mut self.pre[start..] {
                    p.spec_reads_start += base;
                }
            }
            self.slot_bufs[ci] = slots;
            self.states[ci] = scratch;
        }
        let ctx = reclaim(ctx);
        (ctx.cluster, ctx.board, ctx.index, items_back)
    }

    /// The single-thread fast path of the repair plan pass: identical
    /// per-candidate arithmetic run in place over borrowed partitions.
    /// `items` must yield the candidates in flat (ring, partition) order
    /// so the slot layout matches the owned dispatch exactly.
    pub(crate) fn repairs_prepass_inline<'a>(
        &mut self,
        items: impl Iterator<Item = &'a mut PartitionState>,
        inputs: &DecisionInputs<'_>,
    ) {
        if self.states.is_empty() {
            self.states.push(DecisionScratch::default());
        }
        let Self {
            pre,
            states,
            spec_reads,
            ..
        } = self;
        let scratch = &mut states[0];
        scratch.reads.clear();
        pre.clear();
        for part in items {
            plan_one_repair(part, inputs, pre, scratch);
        }
        spec_reads.clear();
        std::mem::swap(spec_reads, &mut scratch.reads);
    }

    // ------------------------------------------------------------------
    // Phase 3: economic decisions — parallel plan pass
    // ------------------------------------------------------------------

    /// Precomputes every vnode's decision inputs — balance recording,
    /// streaks, availability-without-self, and (for vnodes whose planned
    /// intent needs one) a speculative eq.-(3) target against the frozen
    /// index snapshot — filling [`EpochPipeline::pre`] in flat
    /// (ring, partition, replica) enumeration order. The commit pass
    /// consumes the slots in the seeded shuffle order. The shared inputs
    /// travel as an owned context and are returned at the barrier.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn decisions_prepass(
        &mut self,
        cluster: Cluster,
        board: Board,
        topology: Arc<Topology>,
        economy: EconomyConfig,
        index: PlacementIndex,
        brute_force: bool,
        speculation: bool,
        min_rent: Option<f64>,
        items: Vec<DecisionItem>,
    ) -> (Cluster, Board, PlacementIndex, Vec<DecisionItem>) {
        let chunk = phase_chunk(items.len());
        let chunks = split_chunks(items, chunk);
        let n_chunks = chunks.len();
        self.states.truncate(n_chunks);
        while self.states.len() < n_chunks {
            self.states.push(DecisionScratch::default());
        }
        self.slot_bufs.truncate(n_chunks);
        while self.slot_bufs.len() < n_chunks {
            self.slot_bufs.push(Vec::new());
        }
        let tasks: Vec<(Vec<DecisionItem>, Vec<PreDecision>, DecisionScratch)> = chunks
            .into_iter()
            .zip(self.slot_bufs.iter_mut().map(std::mem::take))
            .zip(self.states.iter_mut().map(std::mem::take))
            .map(|((items, mut slots), mut scratch)| {
                slots.clear();
                scratch.reads.clear();
                (items, slots, scratch)
            })
            .collect();
        let ctx = Arc::new(DecisionCtx {
            cluster,
            board,
            topology,
            economy,
            index,
            brute_force,
            speculation,
            min_rent,
        });
        let job_ctx = Arc::clone(&ctx);
        let results = self
            .pool
            .run_tasks(tasks, move |_, (mut items, mut slots, mut scratch)| {
                let inputs = DecisionInputs {
                    cluster: &job_ctx.cluster,
                    board: &job_ctx.board,
                    topology: &job_ctx.topology,
                    economy: &job_ctx.economy,
                    index: &job_ctx.index,
                    brute_force: job_ctx.brute_force,
                    speculation: job_ctx.speculation,
                    min_rent: job_ctx.min_rent,
                };
                for item in &mut items {
                    plan_one_decision(
                        item.threshold,
                        &mut item.part,
                        &inputs,
                        &mut slots,
                        &mut scratch,
                    );
                }
                (items, slots, scratch)
            });
        // Chunk order = flat enumeration order: concatenating the chunk
        // slot buffers (and read-set arenas, rebasing the slot offsets by
        // the splice point) reproduces the sequential layout exactly.
        self.pre.clear();
        self.spec_reads.clear();
        let mut items_back: Vec<DecisionItem> = Vec::new();
        for (ci, (items, slots, scratch)) in results.into_iter().enumerate() {
            items_back.extend(items);
            let base = self.spec_reads.len() as u32;
            self.spec_reads.extend_from_slice(&scratch.reads);
            let start = self.pre.len();
            self.pre.extend_from_slice(&slots);
            if base > 0 {
                for p in &mut self.pre[start..] {
                    p.spec_reads_start += base;
                }
            }
            self.slot_bufs[ci] = slots;
            self.states[ci] = scratch;
        }
        let ctx = reclaim(ctx);
        (ctx.cluster, ctx.board, ctx.index, items_back)
    }

    /// The single-thread fast path of the decision plan pass: identical
    /// per-vnode arithmetic, run in place over borrowed partitions — no
    /// map rebuilds, no context round trip. `items` must yield
    /// `(threshold, partition)` in flat (ring, partition) order so the
    /// slot layout matches the owned dispatch exactly.
    pub(crate) fn decisions_prepass_inline<'a>(
        &mut self,
        items: impl Iterator<Item = (f64, &'a mut PartitionState)>,
        inputs: &DecisionInputs<'_>,
    ) {
        if self.states.is_empty() {
            self.states.push(DecisionScratch::default());
        }
        let Self {
            pre,
            states,
            spec_reads,
            ..
        } = self;
        let scratch = &mut states[0];
        scratch.reads.clear();
        pre.clear();
        for (threshold, part) in items {
            plan_one_decision(threshold, part, inputs, pre, scratch);
        }
        // Single chunk: the chunk-local arena is the whole arena, offsets
        // already flat.
        spec_reads.clear();
        std::mem::swap(spec_reads, &mut scratch.reads);
    }

    /// Applies one conflict-free decision batch in a single pool
    /// dispatch: each task owns its partition (moved out of the ring map
    /// by the caller) and applies its deferred placement with
    /// [`apply_deferred`] — pure partition-local work whose meters were
    /// already moved sequentially at resolution time. Tasks come back in
    /// op order, so the caller's measured-byte accumulation and partition
    /// restore replay the sequential order exactly. The batch is
    /// pairwise partition-disjoint by construction (see `crate::batch`),
    /// so tasks touch disjoint replica vectors and stores.
    pub(crate) fn commit_decision_batch(&self, tasks: Vec<BatchTask>) -> Vec<BatchTask> {
        self.pool.run_tasks(tasks, move |_, mut task| {
            task.measured = apply_deferred(&task.op.kind, &mut task.part);
            task
        })
    }

    // ------------------------------------------------------------------
    // Epoch report — parallel plan pass with sharded accounting
    // ------------------------------------------------------------------

    /// Starts a new epoch report (clears the cross-ring accumulators).
    pub(crate) fn begin_report(&mut self) {
        self.vnodes_global.clear();
    }

    /// Computes one ring's report aggregates: availabilities (via the
    /// memoized cache), per-server served-query loads, and vnode counts,
    /// collected into [`ShardAccounts`] and merged in (partition, server)
    /// order — the exact fold order of the sequential loop this replaces.
    /// The partitions move through the dispatch and come back in order.
    pub(crate) fn ring_stats(
        &mut self,
        cluster: Cluster,
        parts: Vec<(PartitionId, PartitionState)>,
        threshold: f64,
    ) -> (Cluster, Vec<(PartitionId, PartitionState)>, RingPhaseStats) {
        let n = parts.len();
        let chunk = light_chunk(n);
        let chunks = split_chunks(parts, chunk);
        let n_chunks = chunks.len();
        self.avail_acc.reset(n_chunks);
        self.load_acc.reset(n_chunks);
        self.vnode_acc.reset(n_chunks);
        let tasks: Vec<ReportTask> = chunks
            .into_iter()
            .zip(self.avail_acc.shards_mut().iter_mut().map(std::mem::take))
            .zip(self.load_acc.shards_mut().iter_mut().map(std::mem::take))
            .zip(self.vnode_acc.shards_mut().iter_mut().map(std::mem::take))
            .map(|(((parts, avail), loads), vnodes)| ReportTask {
                parts,
                avail,
                loads,
                vnodes,
            })
            .collect();
        let ctx = Arc::new(cluster);
        let job_ctx = Arc::clone(&ctx);
        let results = self.pool.run_tasks(tasks, move |_, mut task| {
            for (pid, part) in &mut task.parts {
                let a = cached_availability(&job_ctx, part);
                task.avail.push((*pid, a));
                for r in &part.replicas {
                    task.vnodes.push((r.server, 1usize));
                    task.loads.push((r.server, r.queries_epoch));
                }
            }
            task
        });
        let mut parts_back: Vec<(PartitionId, PartitionState)> = Vec::with_capacity(n);
        for (ci, task) in results.into_iter().enumerate() {
            parts_back.extend(task.parts);
            self.avail_acc.shards_mut()[ci] = task.avail;
            self.load_acc.shards_mut()[ci] = task.loads;
            self.vnode_acc.shards_mut()[ci] = task.vnodes;
        }
        let stats = self.finish_ring_stats(n, threshold);
        (reclaim(ctx), parts_back, stats)
    }

    /// The single-thread fast path of the report pass: identical
    /// accounting run in place over borrowed partitions, filling one
    /// shard in item order — the merge replays exactly the same delta
    /// sequence as any contiguous chunk decomposition, so the stats are
    /// bit-identical to the owned dispatch.
    pub(crate) fn ring_stats_inline<'a>(
        &mut self,
        cluster: &Cluster,
        parts: impl Iterator<Item = &'a mut PartitionState>,
        threshold: f64,
    ) -> RingPhaseStats {
        self.avail_acc.reset(1);
        self.load_acc.reset(1);
        self.vnode_acc.reset(1);
        let mut n = 0usize;
        for part in parts {
            n += 1;
            let a = cached_availability(cluster, part);
            self.avail_acc.shards_mut()[0].push((part.id, a));
            for r in &part.replicas {
                self.vnode_acc.shards_mut()[0].push((r.server, 1usize));
                self.load_acc.shards_mut()[0].push((r.server, r.queries_epoch));
            }
        }
        self.finish_ring_stats(n, threshold)
    }

    /// Merges the filled shard accumulators into the ring's report stats.
    fn finish_ring_stats(&mut self, n: usize, threshold: f64) -> RingPhaseStats {
        // Merges: partition ids ascend (= the rings' BTreeMap iteration
        // order), per-server loads combine in partition order.
        self.avail_merged.clear();
        self.avail_acc
            .merge_into_sorted(&mut self.avail_merged, || 0.0, |slot, v| *slot = v);
        self.load_merged.clear();
        self.load_acc
            .merge_into_sorted(&mut self.load_merged, || 0.0, |slot, v| *slot += v);
        let vnodes = self.vnode_acc.len();
        self.vnode_acc
            .merge_into_sorted(&mut self.vnodes_global, || 0usize, |slot, v| *slot += v);
        let mean_availability = if n == 0 {
            0.0
        } else {
            self.avail_merged.iter().map(|&(_, a)| a).sum::<f64>() / n as f64
        };
        let min_availability = if n == 0 {
            0.0
        } else {
            self.avail_merged
                .iter()
                .map(|&(_, a)| a)
                .fold(f64::INFINITY, f64::min)
                .min(f64::INFINITY)
        };
        let sla_ok = self
            .avail_merged
            .iter()
            .filter(|&&(_, a)| a >= threshold)
            .count();
        self.loads_flat.clear();
        self.loads_flat
            .extend(self.load_merged.iter().map(|&(_, l)| l));
        let (_, load_cv) = mean_cv(&self.loads_flat);
        RingPhaseStats {
            vnodes,
            mean_availability,
            min_availability,
            sla_satisfied_frac: if n == 0 {
                1.0
            } else {
                sla_ok as f64 / n as f64
            },
            load_cv,
        }
    }

    /// The epoch's per-server vnode distribution: every alive server
    /// (zero-seeded) plus the counts accumulated by
    /// [`EpochPipeline::ring_stats`] since [`EpochPipeline::begin_report`].
    pub(crate) fn vnodes_map(&self, cluster: &Cluster) -> BTreeMap<ServerId, usize> {
        let mut map: BTreeMap<ServerId, usize> = cluster.alive().map(|s| (s.id, 0usize)).collect();
        for &(id, count) in &self.vnodes_global {
            *map.entry(id).or_insert(0) += count;
        }
        map
    }
}

/// One chunk of the report plan pass: the partitions plus the chunk's
/// shard buffers, all owned for the dispatch.
struct ReportTask {
    parts: Vec<(PartitionId, PartitionState)>,
    avail: Vec<(PartitionId, f64)>,
    loads: Vec<(ServerId, f64)>,
    vnodes: Vec<(ServerId, usize)>,
}

/// One partition's delivery plan: region-mix fold, proximity refresh,
/// per-replica weights/distances/serving order, and (for the reconciled
/// parallel commit) the planned event sequence. Pure per-partition work
/// against immutable cluster state; shared verbatim by the owned dispatch
/// and the single-thread inline path.
pub(crate) fn plan_one_delivery(
    part: &mut PartitionState,
    cluster: &Cluster,
    topology: &Topology,
    regions: &[RegionWeight],
    total_queries: f64,
    total_pop: f64,
    with_events: bool,
) {
    part.delivery.ready = false;
    part.delivery.accrual_pending = false;
    let q = total_queries * part.popularity / total_pop;
    if q <= 0.0 {
        return;
    }
    part.queries_epoch += q;
    for region in regions {
        let add = q * region.weight;
        if add <= 0.0 {
            continue;
        }
        match part
            .region_queries
            .iter_mut()
            .find(|r| r.location == region.location)
        {
            Some(r) => r.queries += add,
            None => part.region_queries.push(RegionQueries {
                location: region.location,
                queries: add,
            }),
        }
    }
    // The region mix just changed: drop stale memoized proximity, then
    // refill it while computing the per-replica weights. Placement
    // decisions later in the epoch reuse the refilled cache.
    part.prox_cache.clear();
    let PartitionState {
        region_queries,
        prox_cache,
        replicas,
        delivery,
        ..
    } = &mut *part;
    delivery.gs.clear();
    delivery.dists.clear();
    for r in replicas.iter() {
        match cluster.get(r.server) {
            Some(s) => {
                // Per-replica proximity, memoized per country.
                delivery
                    .gs
                    .push(prox_cache.g(region_queries, &s.location, topology));
                // Region-weighted client distance of the replica (latency
                // proxy, diversity units).
                delivery.dists.push(
                    regions
                        .iter()
                        .map(|reg| {
                            reg.weight * f64::from(skute_geo::diversity(&reg.location, &s.location))
                        })
                        .sum(),
                );
            }
            None => {
                delivery.gs.push(1.0);
                delivery.dists.push(0.0);
            }
        }
    }
    delivery.order.clear();
    delivery.order.extend(0..replicas.len());
    let gs = &delivery.gs;
    delivery.order.sort_by(|&a, &b| gs[b].total_cmp(&gs[a]));
    delivery.q = q;
    delivery.sum_g = delivery.gs.iter().sum();
    delivery.ready = true;
    if with_events {
        plan_events(delivery);
    }
}

/// Applies one spill-free partition's planned per-replica accrual: query
/// counts and eq.-(5) utility from the planned event sequence, in event
/// order — the same per-replica folds the sequential commit interleaves
/// with its serving loop.
pub(crate) fn accrue_one(part: &mut PartitionState, gamma: f64) {
    let PartitionState {
        replicas, delivery, ..
    } = part;
    debug_assert!(delivery.accrual_pending);
    for &(i, served) in &delivery.events {
        replicas[i].queries_epoch += served;
        replicas[i].utility_epoch += gamma * served * delivery.gs[i];
    }
    delivery.accrual_pending = false;
}

/// Precomputes the planned delivery event sequence of one partition,
/// replaying the sequential commit's arithmetic **bit-exactly** under the
/// assumption that no server's query-capacity meter binds: the
/// proximity-proportional pass (each take clipped by the partition's
/// remaining queries, exactly like `serve_on` would return it uncapped),
/// then the spill pass, which under that assumption is absorbed entirely
/// by the closest replica, driving the remainder to exactly `0.0`. The
/// commit's reconciliation validates the assumption against live meters
/// and falls back to the sequential algorithm per partition where it
/// fails, so these planned floats are only ever committed when they equal
/// the sequential outcome.
fn plan_events(d: &mut DeliveryPlan) {
    d.events.clear();
    d.served_total = 0.0;
    d.final_remaining = 0.0;
    d.distance_sum = 0.0;
    if !d.ready || d.sum_g <= 0.0 {
        return;
    }
    let mut remaining = d.q;
    let mut served_total = 0.0;
    let mut distance_sum = 0.0;
    for &i in &d.order {
        let want = d.q * d.gs[i] / d.sum_g;
        let served = want.min(remaining);
        d.events.push((i, served));
        distance_sum += served * d.dists[i];
        remaining -= served;
        served_total += served;
    }
    if remaining > 1e-9 {
        // Spill pass: with no capacity binding, the closest replica
        // absorbs the whole float residue (`remaining - remaining = 0.0`).
        let best = d.order[0];
        let served = remaining;
        d.events.push((best, served));
        distance_sum += served * d.dists[best];
        remaining -= served;
        served_total += served;
    }
    d.served_total = served_total;
    d.final_remaining = remaining;
    d.distance_sum = distance_sum;
}

/// One partition's slice of the decision plan pass: records balances,
/// evaluates each vnode's situation against the phase-start membership,
/// runs speculative target queries, and pushes one [`PreDecision`] per
/// replica in replica order. Shared verbatim by the owned dispatch and
/// the single-thread inline path.
fn plan_one_decision(
    threshold: f64,
    part: &mut PartitionState,
    ctx: &DecisionInputs<'_>,
    slots: &mut Vec<PreDecision>,
    scratch: &mut DecisionScratch,
) {
    let pctx = PlacementContext {
        cluster: ctx.cluster,
        board: ctx.board,
        topology: ctx.topology,
        economy: ctx.economy,
    };
    let mib = 1024.0 * 1024.0;
    let consistency_cost =
        ctx.economy.consistency_cost_per_mib * (part.write_bytes_epoch as f64 / mib);
    let n = part.replicas.len();
    for idx in 0..n {
        let mut pre = PreDecision::default();
        let server = part.replicas[idx].server;
        let Some(rent) = ctx.board.price_of(server) else {
            // Server vanished mid-epoch; the replica was removed and the
            // commit pass skips the item.
            pre.skip = true;
            slots.push(pre);
            continue;
        };
        let u_eff = floored_utility(part.replicas[idx].utility_epoch, ctx.min_rent);
        let balance = u_eff - rent;
        scratch.placed.clear();
        for (i, r) in part.replicas.iter().enumerate() {
            if i == idx {
                continue;
            }
            if let Some(s) = ctx.cluster.get(r.server) {
                scratch.placed.push((s.location, s.confidence));
            }
        }
        part.replicas[idx].balance.record(balance);
        pre.rent = rent;
        pre.u_eff = u_eff;
        pre.consistency_cost = consistency_cost;
        pre.membership_version = part.membership_version;
        pre.replica_count = n;
        pre.availability_without_self = availability_of(&scratch.placed);
        pre.negative_streak = part.replicas[idx].balance.negative_streak();
        pre.positive_streak = part.replicas[idx].balance.positive_streak();
        pre.window_mean = part.replicas[idx].balance.window_mean();
        let situation = VnodeSituation {
            negative_streak: pre.negative_streak,
            positive_streak: pre.positive_streak,
            window_mean: pre.window_mean,
            availability_without_self: pre.availability_without_self,
            threshold,
            replica_count: n,
            max_replicas: ctx.economy.max_replicas,
            current_rent: rent,
            projected_replica_cost: ctx.min_rent.unwrap_or(0.0) + consistency_cost,
            hurdle: ctx.economy.replication_hurdle,
        };
        match classify(&situation) {
            Intent::Stay | Intent::Suicide => {}
            Intent::Migrate if ctx.speculation => {
                scratch.servers.clear();
                for (i, r) in part.replicas.iter().enumerate() {
                    if i != idx {
                        scratch.servers.push(r.server);
                    }
                }
                let size = part.synthetic_bytes + part.replicas[idx].store.logical_bytes();
                let rent_cap = rent * (1.0 - ctx.economy.migration_margin);
                let PartitionState {
                    region_queries,
                    prox_cache,
                    ..
                } = &mut *part;
                pre.spec = speculate(
                    ctx.index,
                    ctx.brute_force,
                    &pctx,
                    &scratch.servers,
                    size,
                    region_queries,
                    prox_cache,
                    Some(rent_cap),
                    &mut scratch.walk,
                );
                pre.spec_computed = true;
                record_spec_reads(&mut pre, scratch);
            }
            Intent::ReplicateForProfit if ctx.speculation => {
                scratch.servers.clear();
                scratch
                    .servers
                    .extend(part.replicas.iter().map(|r| r.server));
                let size = part.size_bytes();
                let PartitionState {
                    region_queries,
                    prox_cache,
                    ..
                } = &mut *part;
                pre.spec = speculate(
                    ctx.index,
                    ctx.brute_force,
                    &pctx,
                    &scratch.servers,
                    size,
                    region_queries,
                    prox_cache,
                    None,
                    &mut scratch.walk,
                );
                pre.spec_computed = true;
                record_spec_reads(&mut pre, scratch);
            }
            // The `no_speculation` oracle: leave `spec_computed` unset so
            // the commit pass re-walks on the live state.
            Intent::Migrate | Intent::ReplicateForProfit => {}
        }
        slots.push(pre);
    }
}

/// One candidate partition's slice of the repair plan pass: a single
/// speculative eq.-(3) replication target (no rent cap — the repair pass
/// buys availability at any price, exactly like its sequential walk) with
/// the walk's read set recorded. One [`PreDecision`] slot per candidate;
/// only the speculation fields and the membership version are meaningful.
fn plan_one_repair(
    part: &mut PartitionState,
    ctx: &DecisionInputs<'_>,
    slots: &mut Vec<PreDecision>,
    scratch: &mut DecisionScratch,
) {
    let pctx = PlacementContext {
        cluster: ctx.cluster,
        board: ctx.board,
        topology: ctx.topology,
        economy: ctx.economy,
    };
    let mut pre = PreDecision {
        membership_version: part.membership_version,
        ..PreDecision::default()
    };
    scratch.servers.clear();
    scratch
        .servers
        .extend(part.replicas.iter().map(|r| r.server));
    let size = part.size_bytes();
    let PartitionState {
        region_queries,
        prox_cache,
        ..
    } = &mut *part;
    pre.spec = speculate(
        ctx.index,
        ctx.brute_force,
        &pctx,
        &scratch.servers,
        size,
        region_queries,
        prox_cache,
        None,
        &mut scratch.walk,
    );
    pre.spec_computed = true;
    record_spec_reads(&mut pre, scratch);
    slots.push(pre);
}

/// Memoized eq.-(2) availability of a partition's current replica set,
/// computing and caching on miss. Bit-identical to the direct evaluation:
/// the placed list is built in replica order, exactly as the sequential
/// loops always did, and locations/confidences are immutable.
pub(crate) fn cached_availability(cluster: &Cluster, part: &mut PartitionState) -> f64 {
    if let Some(a) = part.cached_availability {
        return a;
    }
    let mut placed: Vec<(Location, f64)> = Vec::with_capacity(part.replicas.len());
    for r in &part.replicas {
        if let Some(s) = cluster.get(r.server) {
            placed.push((s.location, s.confidence));
        }
    }
    let a = availability_of(&placed);
    part.cached_availability = Some(a);
    a
}

/// One speculative eq.-(3) target query of the decision plan pass: the
/// read-only index walk (or the pure oracle scan when the cloud is routed
/// brute-force), bit-identical to the owned-access query the commit pass
/// would run against the same snapshot. The walk scratch records the
/// query's read set (the oracle scan reads everything).
#[allow(clippy::too_many_arguments)]
fn speculate(
    index: &PlacementIndex,
    brute_force: bool,
    ctx: &PlacementContext<'_>,
    existing: &[ServerId],
    partition_size: u64,
    region_queries: &[RegionQueries],
    prox: &mut ProximityCache,
    rent_below: Option<f64>,
    walk: &mut WalkScratch,
) -> Option<(ServerId, f64)> {
    if brute_force {
        walk.mark_reads_all();
        economic_target(ctx, existing, partition_size, region_queries, rent_below)
    } else {
        index.economic_target_in(
            ctx,
            existing,
            partition_size,
            region_queries,
            rent_below,
            prox,
            walk,
        )
    }
}

/// Copies the last speculative walk's read set into the chunk arena and
/// stamps the slot's offsets, or marks the slot full-scan when the query
/// read every candidate. Debug-build machinery like the recording itself:
/// release validation never consults the per-server reads (see
/// `crate::placement::validate_speculation`), so release arenas stay
/// empty.
fn record_spec_reads(pre: &mut PreDecision, scratch: &mut DecisionScratch) {
    let DecisionScratch { walk, reads, .. } = scratch;
    if walk.reads_all() {
        pre.spec_reads_all = true;
        return;
    }
    if !cfg!(debug_assertions) {
        return;
    }
    let start = reads.len();
    reads.extend_from_slice(walk.reads());
    pre.spec_reads_start = start as u32;
    pre.spec_reads_len = (reads.len() - start) as u32;
}
