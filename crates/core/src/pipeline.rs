//! The deterministic parallel epoch pipeline.
//!
//! [`crate::SkuteCloud`] runs every epoch through three phases — **traffic
//! delivery**, **availability repair**, **economic decisions** — each
//! structured as
//!
//! 1. a **parallel plan pass** that fans out across partitions on the
//!    [`WorkerPool`]: pure per-partition computation against state that is
//!    immutable for the duration of the phase (server locations,
//!    confidences, posted rents, the refreshed [`PlacementIndex`]
//!    snapshot), writing only partition-local state and per-shard scratch;
//! 2. a **sequential commit pass** that applies every effect on shared
//!    state — capacity meters, rent-board-indexed structures, executed
//!    actions — in a fixed order (ring/partition order for traffic, the
//!    seeded shuffle order for decisions).
//!
//! Determinism is structural, not incidental:
//!
//! * plan passes are order-independent per item, so chunk boundaries and
//!   worker scheduling cannot change any result;
//! * per-shard accumulators ([`ShardAccounts`]) merge in (shard,
//!   insertion) order — with contiguous chunks that is the original item
//!   order, so floating-point folds keep the exact bits of the sequential
//!   loop they replaced;
//! * per-worker scratch ([`WalkScratch`], placement buffers) carries no
//!   state between items; the only randomness in the epoch loop (the
//!   repair and decision shuffles, server seeding) stays on the cloud's
//!   sequential RNG stream — a future phase that needs randomness inside
//!   a plan pass must derive per-shard streams via
//!   [`skute_exec::stream_seed`] from the cloud seed plus the
//!   (deterministic) shard id, never from worker identity;
//! * speculative placement targets computed by the plan pass are only used
//!   at commit time while the cluster/board version pair still equals the
//!   frozen pre-pass snapshot; the first committed action invalidates all
//!   later speculation, which then re-runs on the live state exactly as
//!   the sequential loop would.
//!
//! The result: same-seed trajectories are **bitwise identical at every
//! thread count**, including `threads = 1`, which runs the identical code
//! inline with zero spawns.

use std::collections::BTreeMap;

use skute_cluster::{Board, Cluster, ServerId};
use skute_economy::{floored_utility, EconomyConfig, ProximityCache, RegionQueries};
use skute_exec::{chunk_count, ShardAccounts, WorkerPool};
use skute_geo::{Location, RegionWeight, Topology};
use skute_ring::PartitionId;

use crate::availability::availability_of;
use crate::decision::{classify, Intent, VnodeSituation};
use crate::metrics::mean_cv;
use crate::placement::{economic_target, PlacementContext, PlacementIndex, WalkScratch};
use crate::vnode::PartitionState;

/// Chunk size of a compute-heavy parallel phase over `n` partitions. Small
/// inputs stay in one chunk (which runs inline, with zero spawns); large
/// inputs split into at most ~16 chunks so work-stealing stays coarse.
/// Never depends on the thread count — only results-irrelevant scheduling
/// does.
fn phase_chunk(n: usize) -> usize {
    if n < 64 {
        n.max(1)
    } else {
        n.div_ceil(16).max(16)
    }
}

/// Chunk size of a light bookkeeping phase (per-item work is a few loads
/// and pushes, often cache hits): a much higher inline threshold, so the
/// fan-out only pays for itself on genuinely large rings.
fn light_chunk(n: usize) -> usize {
    if n < 512 {
        n.max(1)
    } else {
        n.div_ceil(8).max(64)
    }
}

/// Everything one virtual node's economic decision needs that is fixed for
/// the duration of the decision phase, precomputed by the parallel plan
/// pass and consumed by the sequential commit pass.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct PreDecision {
    /// The vnode's server had no posted rent: the commit pass skips the
    /// item entirely (matching the sequential loop's `continue`).
    pub skip: bool,
    /// Posted rent of the hosting server this epoch.
    pub rent: f64,
    /// Floored eq.-(5) utility earned this epoch.
    pub u_eff: f64,
    /// Consistency network cost of one extra replica.
    pub consistency_cost: f64,
    /// Partition membership version the situation below was computed at;
    /// a mismatch at commit time means an earlier committed action changed
    /// the partition and the situation must be recomputed live.
    pub membership_version: u64,
    /// Replica count at plan time.
    pub replica_count: usize,
    /// Eq.-(2) availability of the partition without this replica.
    pub availability_without_self: f64,
    /// Balance-window streaks and mean, read *after* recording this
    /// epoch's balance (the plan pass owns the recording).
    pub negative_streak: bool,
    /// See `negative_streak`.
    pub positive_streak: bool,
    /// Mean balance over the window, if any history exists.
    pub window_mean: Option<f64>,
    /// True when the plan pass ran a speculative eq.-(3) target query for
    /// this vnode (its planned intent needed one).
    pub spec_computed: bool,
    /// The speculative target (`None` = no feasible candidate), valid at
    /// commit time iff the cluster/board versions still match the frozen
    /// pre-pass snapshot.
    pub spec: Option<(ServerId, f64)>,
}

/// One partition's slice of the decision plan pass: the ring's SLA
/// threshold, the partition, and its replicas' [`PreDecision`] slots.
pub(crate) struct DecisionTask<'a> {
    pub threshold: f64,
    pub part: &'a mut PartitionState,
    pub slots: &'a mut [PreDecision],
}

/// Per-shard scratch of the decision plan pass.
#[derive(Debug, Clone, Default)]
struct DecisionScratch {
    walk: WalkScratch,
    servers: Vec<ServerId>,
    placed: Vec<(Location, f64)>,
}

/// Per-ring aggregates of the epoch report, computed by the report plan
/// pass from sharded accumulators merged in deterministic order.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RingPhaseStats {
    pub vnodes: usize,
    pub mean_availability: f64,
    pub min_availability: f64,
    pub sla_satisfied_frac: f64,
    pub load_cv: f64,
}

/// Shard view handed to one chunk of the report plan pass.
struct ReportShard<'a> {
    avail: &'a mut Vec<(PartitionId, f64)>,
    loads: &'a mut Vec<(ServerId, f64)>,
    vnodes: &'a mut Vec<(ServerId, usize)>,
}

/// Phase orchestration and reusable scratch of the epoch loop: the worker
/// pool, per-vnode decision slots, and the sharded report accumulators.
/// Owned by [`crate::SkuteCloud`]; one instance per cloud.
#[derive(Debug, Default)]
pub struct EpochPipeline {
    pool: WorkerPool,
    /// Per-vnode decision precomputation (indexed by work-list slot).
    pub(crate) pre: Vec<PreDecision>,
    /// Per-shard scratch of the decision plan pass.
    states: Vec<DecisionScratch>,
    // Report accumulators, reused across epochs.
    avail_acc: ShardAccounts<PartitionId, f64>,
    load_acc: ShardAccounts<ServerId, f64>,
    vnode_acc: ShardAccounts<ServerId, usize>,
    avail_merged: Vec<(PartitionId, f64)>,
    load_merged: Vec<(ServerId, f64)>,
    loads_flat: Vec<f64>,
    /// Cross-ring per-server vnode counts of the current report.
    vnodes_global: Vec<(ServerId, usize)>,
}

impl EpochPipeline {
    /// A pipeline running parallel phases on `threads` workers (`0` = the
    /// machine's available parallelism, `1` = fully inline). An explicit
    /// budget is honored exactly, even beyond the host's core count —
    /// oversubscription only costs wall clock (phase chunks are
    /// compute-bound), never determinism, and determinism tests rely on
    /// explicit budgets actually spawning workers.
    pub fn new(threads: usize) -> Self {
        Self {
            pool: WorkerPool::new(threads),
            ..Self::default()
        }
    }

    /// The resolved worker budget of the parallel phases.
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    // ------------------------------------------------------------------
    // Phase 1: traffic delivery — parallel plan pass
    // ------------------------------------------------------------------

    /// Plans one ring's query delivery: for every partition, folds the
    /// epoch's region mix into `region_queries`, refreshes the proximity
    /// cache, and fills the partition's [`crate::vnode::DeliveryPlan`]
    /// (per-replica proximity weights, client distances, serving order).
    /// Reads only immutable-for-the-phase state; writes only
    /// partition-local state, so chunks are independent.
    pub(crate) fn plan_delivery(
        &self,
        parts: &mut [&mut PartitionState],
        cluster: &Cluster,
        topology: &Topology,
        regions: &[RegionWeight],
        total_queries: f64,
        total_pop: f64,
    ) {
        let chunk = phase_chunk(parts.len());
        self.pool.run_chunks(parts, chunk, |_, chunk| {
            for part in chunk {
                let part = &mut **part;
                part.delivery.ready = false;
                let q = total_queries * part.popularity / total_pop;
                if q <= 0.0 {
                    continue;
                }
                part.queries_epoch += q;
                for region in regions {
                    let add = q * region.weight;
                    if add <= 0.0 {
                        continue;
                    }
                    match part
                        .region_queries
                        .iter_mut()
                        .find(|r| r.location == region.location)
                    {
                        Some(r) => r.queries += add,
                        None => part.region_queries.push(RegionQueries {
                            location: region.location,
                            queries: add,
                        }),
                    }
                }
                // The region mix just changed: drop stale memoized
                // proximity, then refill it while computing the
                // per-replica weights. Placement decisions later in the
                // epoch reuse the refilled cache.
                part.prox_cache.clear();
                let PartitionState {
                    region_queries,
                    prox_cache,
                    replicas,
                    delivery,
                    ..
                } = &mut *part;
                delivery.gs.clear();
                delivery.dists.clear();
                for r in replicas.iter() {
                    match cluster.get(r.server) {
                        Some(s) => {
                            // Per-replica proximity, memoized per country.
                            delivery
                                .gs
                                .push(prox_cache.g(region_queries, &s.location, topology));
                            // Region-weighted client distance of the
                            // replica (latency proxy, diversity units).
                            delivery.dists.push(
                                regions
                                    .iter()
                                    .map(|reg| {
                                        reg.weight
                                            * f64::from(skute_geo::diversity(
                                                &reg.location,
                                                &s.location,
                                            ))
                                    })
                                    .sum(),
                            );
                        }
                        None => {
                            delivery.gs.push(1.0);
                            delivery.dists.push(0.0);
                        }
                    }
                }
                delivery.order.clear();
                delivery.order.extend(0..replicas.len());
                let gs = &delivery.gs;
                delivery.order.sort_by(|&a, &b| gs[b].total_cmp(&gs[a]));
                delivery.q = q;
                delivery.sum_g = delivery.gs.iter().sum();
                delivery.ready = true;
            }
        });
    }

    // ------------------------------------------------------------------
    // Phase 2: availability repair — parallel pre-pass
    // ------------------------------------------------------------------

    /// Warms the memoized eq.-(2) availability of `parts` (the caller
    /// passes only cache misses) so the sequential repair scan reads
    /// cached floats. In the converged steady state the miss set is empty
    /// and this is free.
    pub(crate) fn warm_availability(&self, parts: &mut [&mut PartitionState], cluster: &Cluster) {
        let chunk = phase_chunk(parts.len());
        self.pool.run_chunks(parts, chunk, |_, chunk| {
            for part in chunk {
                let _ = cached_availability(cluster, part);
            }
        });
    }

    // ------------------------------------------------------------------
    // Phase 3: economic decisions — parallel plan pass
    // ------------------------------------------------------------------

    /// Precomputes every vnode's decision inputs — balance recording,
    /// streaks, availability-without-self, and (for vnodes whose planned
    /// intent needs one) a speculative eq.-(3) target against the frozen
    /// index snapshot. The commit pass consumes the slots in the seeded
    /// shuffle order.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn decisions_prepass(
        &mut self,
        tasks: &mut [DecisionTask<'_>],
        cluster: &Cluster,
        board: &Board,
        topology: &Topology,
        economy: &EconomyConfig,
        index: &PlacementIndex,
        brute_force: bool,
        min_rent: Option<f64>,
    ) {
        let chunk = phase_chunk(tasks.len());
        let chunks = chunk_count(tasks.len(), chunk);
        self.states.truncate(chunks);
        while self.states.len() < chunks {
            self.states.push(DecisionScratch::default());
        }
        let ctx = PlacementContext {
            cluster,
            board,
            topology,
            economy,
        };
        let mib = 1024.0 * 1024.0;
        self.pool
            .run_sharded(tasks, chunk, &mut self.states, |_, chunk, scratch| {
                for task in chunk {
                    let threshold = task.threshold;
                    let part = &mut *task.part;
                    let consistency_cost =
                        economy.consistency_cost_per_mib * (part.write_bytes_epoch as f64 / mib);
                    let n = part.replicas.len();
                    debug_assert_eq!(task.slots.len(), n);
                    for idx in 0..n {
                        let pre = &mut task.slots[idx];
                        *pre = PreDecision::default();
                        let server = part.replicas[idx].server;
                        let Some(rent) = board.price_of(server) else {
                            // Server vanished mid-epoch; the replica was
                            // removed and the commit pass skips the item.
                            pre.skip = true;
                            continue;
                        };
                        let u_eff = floored_utility(part.replicas[idx].utility_epoch, min_rent);
                        let balance = u_eff - rent;
                        scratch.placed.clear();
                        for (i, r) in part.replicas.iter().enumerate() {
                            if i == idx {
                                continue;
                            }
                            if let Some(s) = cluster.get(r.server) {
                                scratch.placed.push((s.location, s.confidence));
                            }
                        }
                        part.replicas[idx].balance.record(balance);
                        pre.rent = rent;
                        pre.u_eff = u_eff;
                        pre.consistency_cost = consistency_cost;
                        pre.membership_version = part.membership_version;
                        pre.replica_count = n;
                        pre.availability_without_self = availability_of(&scratch.placed);
                        pre.negative_streak = part.replicas[idx].balance.negative_streak();
                        pre.positive_streak = part.replicas[idx].balance.positive_streak();
                        pre.window_mean = part.replicas[idx].balance.window_mean();
                        let situation = VnodeSituation {
                            negative_streak: pre.negative_streak,
                            positive_streak: pre.positive_streak,
                            window_mean: pre.window_mean,
                            availability_without_self: pre.availability_without_self,
                            threshold,
                            replica_count: n,
                            max_replicas: economy.max_replicas,
                            current_rent: rent,
                            projected_replica_cost: min_rent.unwrap_or(0.0) + consistency_cost,
                            hurdle: economy.replication_hurdle,
                        };
                        match classify(&situation) {
                            Intent::Stay | Intent::Suicide => {}
                            Intent::Migrate => {
                                scratch.servers.clear();
                                for (i, r) in part.replicas.iter().enumerate() {
                                    if i != idx {
                                        scratch.servers.push(r.server);
                                    }
                                }
                                let size =
                                    part.synthetic_bytes + part.replicas[idx].store.logical_bytes();
                                let rent_cap = rent * (1.0 - economy.migration_margin);
                                let PartitionState {
                                    region_queries,
                                    prox_cache,
                                    ..
                                } = &mut *part;
                                pre.spec = speculate(
                                    index,
                                    brute_force,
                                    &ctx,
                                    &scratch.servers,
                                    size,
                                    region_queries,
                                    prox_cache,
                                    Some(rent_cap),
                                    &mut scratch.walk,
                                );
                                pre.spec_computed = true;
                            }
                            Intent::ReplicateForProfit => {
                                scratch.servers.clear();
                                scratch
                                    .servers
                                    .extend(part.replicas.iter().map(|r| r.server));
                                let size = part.size_bytes();
                                let PartitionState {
                                    region_queries,
                                    prox_cache,
                                    ..
                                } = &mut *part;
                                pre.spec = speculate(
                                    index,
                                    brute_force,
                                    &ctx,
                                    &scratch.servers,
                                    size,
                                    region_queries,
                                    prox_cache,
                                    None,
                                    &mut scratch.walk,
                                );
                                pre.spec_computed = true;
                            }
                        }
                    }
                }
            });
    }

    // ------------------------------------------------------------------
    // Epoch report — parallel plan pass with sharded accounting
    // ------------------------------------------------------------------

    /// Starts a new epoch report (clears the cross-ring accumulators).
    pub(crate) fn begin_report(&mut self) {
        self.vnodes_global.clear();
    }

    /// Computes one ring's report aggregates: availabilities (via the
    /// memoized cache), per-server served-query loads, and vnode counts,
    /// collected into [`ShardAccounts`] and merged in (partition, server)
    /// order — the exact fold order of the sequential loop this replaces.
    pub(crate) fn ring_stats(
        &mut self,
        parts: &mut [&mut PartitionState],
        cluster: &Cluster,
        threshold: f64,
    ) -> RingPhaseStats {
        let n = parts.len();
        let chunk = light_chunk(n);
        let chunks = chunk_count(n, chunk);
        self.avail_acc.reset(chunks);
        self.load_acc.reset(chunks);
        self.vnode_acc.reset(chunks);
        {
            let mut shards: Vec<ReportShard<'_>> = self
                .avail_acc
                .shards_mut()
                .iter_mut()
                .zip(self.load_acc.shards_mut())
                .zip(self.vnode_acc.shards_mut())
                .map(|((avail, loads), vnodes)| ReportShard {
                    avail,
                    loads,
                    vnodes,
                })
                .collect();
            self.pool
                .run_sharded(parts, chunk, &mut shards, |_, chunk, sh| {
                    for part in chunk {
                        let part = &mut **part;
                        let a = cached_availability(cluster, part);
                        sh.avail.push((part.id, a));
                        for r in &part.replicas {
                            sh.vnodes.push((r.server, 1usize));
                            sh.loads.push((r.server, r.queries_epoch));
                        }
                    }
                });
        }
        // Merges: partition ids ascend (= the rings' BTreeMap iteration
        // order), per-server loads combine in partition order.
        self.avail_merged.clear();
        self.avail_acc
            .merge_into_sorted(&mut self.avail_merged, || 0.0, |slot, v| *slot = v);
        self.load_merged.clear();
        self.load_acc
            .merge_into_sorted(&mut self.load_merged, || 0.0, |slot, v| *slot += v);
        let vnodes = self.vnode_acc.len();
        self.vnode_acc
            .merge_into_sorted(&mut self.vnodes_global, || 0usize, |slot, v| *slot += v);
        let mean_availability = if n == 0 {
            0.0
        } else {
            self.avail_merged.iter().map(|&(_, a)| a).sum::<f64>() / n as f64
        };
        let min_availability = if n == 0 {
            0.0
        } else {
            self.avail_merged
                .iter()
                .map(|&(_, a)| a)
                .fold(f64::INFINITY, f64::min)
                .min(f64::INFINITY)
        };
        let sla_ok = self
            .avail_merged
            .iter()
            .filter(|&&(_, a)| a >= threshold)
            .count();
        self.loads_flat.clear();
        self.loads_flat
            .extend(self.load_merged.iter().map(|&(_, l)| l));
        let (_, load_cv) = mean_cv(&self.loads_flat);
        RingPhaseStats {
            vnodes,
            mean_availability,
            min_availability,
            sla_satisfied_frac: if n == 0 {
                1.0
            } else {
                sla_ok as f64 / n as f64
            },
            load_cv,
        }
    }

    /// The epoch's per-server vnode distribution: every alive server
    /// (zero-seeded) plus the counts accumulated by
    /// [`EpochPipeline::ring_stats`] since [`EpochPipeline::begin_report`].
    pub(crate) fn vnodes_map(&self, cluster: &Cluster) -> BTreeMap<ServerId, usize> {
        let mut map: BTreeMap<ServerId, usize> = cluster.alive().map(|s| (s.id, 0usize)).collect();
        for &(id, count) in &self.vnodes_global {
            *map.entry(id).or_insert(0) += count;
        }
        map
    }
}

/// Memoized eq.-(2) availability of a partition's current replica set,
/// computing and caching on miss. Bit-identical to the direct evaluation:
/// the placed list is built in replica order, exactly as the sequential
/// loops always did, and locations/confidences are immutable.
pub(crate) fn cached_availability(cluster: &Cluster, part: &mut PartitionState) -> f64 {
    if let Some(a) = part.cached_availability {
        return a;
    }
    let mut placed: Vec<(Location, f64)> = Vec::with_capacity(part.replicas.len());
    for r in &part.replicas {
        if let Some(s) = cluster.get(r.server) {
            placed.push((s.location, s.confidence));
        }
    }
    let a = availability_of(&placed);
    part.cached_availability = Some(a);
    a
}

/// One speculative eq.-(3) target query of the decision plan pass: the
/// read-only index walk (or the pure oracle scan when the cloud is routed
/// brute-force), bit-identical to the owned-access query the commit pass
/// would run against the same snapshot.
#[allow(clippy::too_many_arguments)]
fn speculate(
    index: &PlacementIndex,
    brute_force: bool,
    ctx: &PlacementContext<'_>,
    existing: &[ServerId],
    partition_size: u64,
    region_queries: &[RegionQueries],
    prox: &mut ProximityCache,
    rent_below: Option<f64>,
    walk: &mut WalkScratch,
) -> Option<(ServerId, f64)> {
    if brute_force {
        economic_target(ctx, existing, partition_size, region_queries, rent_below)
    } else {
        index.economic_target_in(
            ctx,
            existing,
            partition_size,
            region_queries,
            rent_below,
            prox,
            walk,
        )
    }
}
