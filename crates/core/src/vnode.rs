//! Virtual nodes and per-partition runtime state.

use std::fmt;

use skute_cluster::ServerId;
use skute_economy::{BalanceHistory, ProximityCache, RegionQueries};
use skute_ring::PartitionId;
use skute_store::ReplicaStore;

/// Identifier of a virtual node (one replica of one partition), unique for
/// the lifetime of a cloud.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VnodeId(pub u64);

impl fmt::Display for VnodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// One replica of a partition: the virtual node agent of §II.
///
/// A replica lives on exactly one server, carries its own copy of the
/// partition's data, earns utility from the queries it answers and pays the
/// virtual rent of its server every epoch. Its [`BalanceHistory`] drives the
/// replicate/migrate/suicide decisions.
#[derive(Debug, Clone)]
pub struct Replica {
    /// Virtual node identifier.
    pub id: VnodeId,
    /// Hosting server.
    pub server: ServerId,
    /// Per-epoch balance history (window f).
    pub balance: BalanceHistory,
    /// This replica's copy of the partition's explicitly stored records,
    /// on the cloud's configured storage backend. The in-memory variant is
    /// copy-on-write: replicas synchronized by anti-entropy or replication
    /// share one allocation until one of them diverges. The LSM variant
    /// owns a durable store; independent copies go through
    /// [`ReplicaStore::fork`], which reports the bytes physically moved.
    pub store: ReplicaStore,
    /// Utility accrued in the current epoch (reset by `begin_epoch`).
    pub utility_epoch: f64,
    /// Queries served by this replica in the current epoch.
    pub queries_epoch: f64,
    /// Epoch at which the replica was created.
    pub created_epoch: u64,
}

impl Replica {
    /// A fresh replica on `server` with an empty store.
    pub fn new(id: VnodeId, server: ServerId, window: usize, epoch: u64) -> Self {
        Self {
            id,
            server,
            balance: BalanceHistory::new(window),
            store: ReplicaStore::default(),
            utility_epoch: 0.0,
            queries_epoch: 0.0,
            created_epoch: epoch,
        }
    }

    /// Resets the per-epoch accumulators.
    pub fn begin_epoch(&mut self) {
        self.utility_epoch = 0.0;
        self.queries_epoch = 0.0;
    }
}

/// Per-partition scratch of the traffic-delivery phase: the parallel plan
/// pass fills it (proximity weights, client distances, serving order, and
/// the planned per-replica delivery events), the commit consumes it
/// against the live capacity meters. Reused across epochs; meaningless
/// unless [`DeliveryPlan::ready`].
#[derive(Debug, Clone, Default)]
pub struct DeliveryPlan {
    /// Queries addressed to the partition by the planned delivery.
    pub q: f64,
    /// Σ of the per-replica proximity weights below.
    pub sum_g: f64,
    /// Per-replica eq.-(4) proximity weights, in replica order.
    pub gs: Vec<f64>,
    /// Per-replica region-weighted client distances, in replica order.
    pub dists: Vec<f64>,
    /// Replica indices sorted by descending proximity (serving order).
    pub order: Vec<usize>,
    /// The planned delivery event sequence `(replica index, queries)`,
    /// replaying exactly the sequential commit's serving order (the
    /// proximity-proportional pass followed by the spill pass) under the
    /// assumption that no server's query-capacity meter binds. The
    /// reconciliation pass validates that assumption against the live
    /// meters per partition and falls back to the sequential algorithm
    /// where it fails, so committed events are always bit-exact.
    pub events: Vec<(usize, f64)>,
    /// Σ served over `events` in event order (the partition's planned
    /// contribution to the ring's served counter).
    pub served_total: f64,
    /// Queries left unserved after the planned events (float residue of
    /// the proportional split; ≤ the commit's 1e-9 spill threshold).
    pub final_remaining: f64,
    /// Σ served × client-distance over `events` in event order.
    pub distance_sum: f64,
    /// True between a plan pass and its commit pass.
    pub ready: bool,
    /// Set by the reconciliation pass when the partition's planned events
    /// committed spill-free; the parallel accrual pass consumes it.
    pub accrual_pending: bool,
}

/// Runtime state of one partition of one virtual ring.
#[derive(Debug, Clone)]
pub struct PartitionState {
    /// Ring-local partition identifier.
    pub id: PartitionId,
    /// Replicas (virtual nodes), one per hosting server; never empty for a
    /// live partition.
    pub replicas: Vec<Replica>,
    /// Popularity weight of the partition (the paper draws these from
    /// Pareto(1, 50)); splits halve it between the children.
    pub popularity: f64,
    /// Logical bytes ingested without materialized records (synthetic
    /// workload accounting); every replica's server is charged this amount.
    pub synthetic_bytes: u64,
    /// Query volume per client region observed this epoch (the `q_l` of
    /// eq. 4).
    pub region_queries: Vec<RegionQueries>,
    /// Total queries addressed to the partition this epoch (before drops).
    pub queries_epoch: f64,
    /// Bytes written to the partition this epoch (consistency-cost input).
    pub write_bytes_epoch: u64,
    /// Per-country proximity weights memoized against the current
    /// `region_queries`; cleared whenever they change (epoch start, query
    /// delivery) and shared by every placement decision of the partition
    /// within an epoch.
    pub prox_cache: ProximityCache,
    /// Bumped on every replica-membership change (add, remove, or host
    /// change). The epoch pipeline's parallel pre-passes snapshot it to
    /// detect, at commit time, whether their per-vnode precomputation is
    /// still exact or must be redone against the mutated partition.
    pub membership_version: u64,
    /// Memoized eq.-(2) availability of the current replica set.
    /// Invalidated (with the version bump) by
    /// [`PartitionState::note_membership_changed`]; server locations are
    /// immutable and confidences only move when the cloud observes health
    /// samples (gray fault plans), in which case `begin_epoch` clears the
    /// cache fleet-wide via
    /// [`PartitionState::note_confidence_changed`] without touching the
    /// membership version. Survives across epochs otherwise: a converged
    /// partition never re-evaluates eq. (2) in `repair_availability` or
    /// the epoch report.
    pub cached_availability: Option<f64>,
    /// Traffic-delivery scratch (see [`DeliveryPlan`]).
    pub delivery: DeliveryPlan,
}

impl PartitionState {
    /// A new partition with no replicas yet.
    pub fn new(id: PartitionId, popularity: f64) -> Self {
        Self {
            id,
            replicas: Vec::new(),
            popularity,
            synthetic_bytes: 0,
            region_queries: Vec::new(),
            queries_epoch: 0.0,
            write_bytes_epoch: 0,
            prox_cache: ProximityCache::new(),
            membership_version: 0,
            cached_availability: None,
            delivery: DeliveryPlan::default(),
        }
    }

    /// Records that the replica set changed (replica added, removed, or
    /// moved to another server): bumps the membership version and drops the
    /// memoized availability. Every mutation of `replicas` must call this.
    pub fn note_membership_changed(&mut self) {
        self.membership_version += 1;
        self.cached_availability = None;
    }

    /// Records that server confidences changed under the replica set
    /// (health-EWMA updates at epoch start): drops the memoized
    /// availability so eq. (2) re-evaluates, **without** bumping the
    /// membership version — the replica set itself is intact, so
    /// speculative per-vnode precomputations remain valid.
    pub fn note_confidence_changed(&mut self) {
        self.cached_availability = None;
    }

    /// The logical size of one replica of this partition: synthetic bytes
    /// plus the largest materialized store among replicas (replicas converge
    /// to identical contents; the max is the safe transfer size).
    pub fn size_bytes(&self) -> u64 {
        let stored = self
            .replicas
            .iter()
            .map(|r| r.store.logical_bytes())
            .max()
            .unwrap_or(0);
        self.synthetic_bytes + stored
    }

    /// Number of replicas.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The servers currently hosting a replica, in replica order.
    pub fn replica_servers(&self) -> Vec<ServerId> {
        self.replicas.iter().map(|r| r.server).collect()
    }

    /// True when some replica lives on `server`.
    pub fn has_replica_on(&self, server: ServerId) -> bool {
        self.replicas.iter().any(|r| r.server == server)
    }

    /// Resets the per-epoch accumulators of the partition and its replicas.
    /// The availability cache is *not* reset: it depends only on replica
    /// membership, not on epoch-scoped meters.
    pub fn begin_epoch(&mut self) {
        self.region_queries.clear();
        self.prox_cache.clear();
        self.queries_epoch = 0.0;
        self.write_bytes_epoch = 0;
        self.delivery.ready = false;
        for r in &mut self.replicas {
            r.begin_epoch();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skute_store::{Record, Version};

    #[test]
    fn replica_epoch_reset() {
        let mut r = Replica::new(VnodeId(1), ServerId(0), 3, 0);
        r.utility_epoch = 5.0;
        r.queries_epoch = 10.0;
        r.begin_epoch();
        assert_eq!(r.utility_epoch, 0.0);
        assert_eq!(r.queries_epoch, 0.0);
    }

    #[test]
    fn partition_size_combines_synthetic_and_store() {
        let mut p = PartitionState::new(PartitionId(0), 1.0);
        p.synthetic_bytes = 1000;
        assert_eq!(p.size_bytes(), 1000);
        let mut r = Replica::new(VnodeId(1), ServerId(0), 3, 0);
        assert!(r.store.apply(
            &b"key"[..],
            Record::put(&b"0123456789"[..], Version::new(1, 0, 0))
        ));
        p.replicas.push(r);
        assert_eq!(p.size_bytes(), 1000 + 3 + 10);
    }

    #[test]
    fn replica_servers_and_membership() {
        let mut p = PartitionState::new(PartitionId(0), 1.0);
        p.replicas.push(Replica::new(VnodeId(1), ServerId(4), 3, 0));
        p.replicas.push(Replica::new(VnodeId(2), ServerId(9), 3, 0));
        assert_eq!(p.replica_servers(), vec![ServerId(4), ServerId(9)]);
        assert!(p.has_replica_on(ServerId(9)));
        assert!(!p.has_replica_on(ServerId(5)));
        assert_eq!(p.replica_count(), 2);
    }

    #[test]
    fn partition_epoch_reset_clears_accumulators() {
        let mut p = PartitionState::new(PartitionId(0), 1.0);
        p.queries_epoch = 12.0;
        p.write_bytes_epoch = 77;
        p.region_queries.push(RegionQueries {
            location: skute_geo::Location::client_in_country(0, 0),
            queries: 12.0,
        });
        let topo = skute_geo::Topology::paper();
        let _ = p.prox_cache.g(
            &p.region_queries.clone(),
            &skute_geo::Location::new(0, 0, 0, 0, 0, 0),
            &topo,
        );
        assert!(!p.prox_cache.is_empty());
        p.begin_epoch();
        assert_eq!(p.queries_epoch, 0.0);
        assert_eq!(p.write_bytes_epoch, 0);
        assert!(p.region_queries.is_empty());
        assert!(p.prox_cache.is_empty(), "stale proximity must not survive");
    }

    #[test]
    fn display_vnode_id() {
        assert_eq!(VnodeId(8).to_string(), "v8");
    }

    #[test]
    fn membership_note_bumps_version_and_drops_availability() {
        let mut p = PartitionState::new(PartitionId(0), 1.0);
        p.cached_availability = Some(63.0);
        let v0 = p.membership_version;
        p.note_membership_changed();
        assert_eq!(p.membership_version, v0 + 1);
        assert_eq!(p.cached_availability, None);
        // Epoch reset keeps the cache (membership did not change) but
        // invalidates any stale delivery plan.
        p.cached_availability = Some(63.0);
        p.delivery.ready = true;
        p.begin_epoch();
        assert_eq!(p.cached_availability, Some(63.0));
        assert!(!p.delivery.ready);
    }
}
