//! Errors of the core store.

use std::fmt;

use skute_store::StoreError;

/// Errors surfaced by [`crate::SkuteCloud`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The application id is not registered.
    UnknownApp,
    /// The application exists but has no such availability level.
    UnknownLevel,
    /// No server could host a required replica (capacity or candidates
    /// exhausted).
    NoPlacement,
    /// A storage-layer failure.
    Store(StoreError),
    /// The cloud has no alive servers.
    EmptyCluster,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::UnknownApp => f.write_str("unknown application"),
            CoreError::UnknownLevel => f.write_str("unknown availability level"),
            CoreError::NoPlacement => f.write_str("no feasible replica placement"),
            CoreError::Store(e) => write!(f, "store error: {e}"),
            CoreError::EmptyCluster => f.write_str("cluster has no alive servers"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StoreError> for CoreError {
    fn from(e: StoreError) -> Self {
        CoreError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        assert_eq!(CoreError::UnknownApp.to_string(), "unknown application");
        let e = CoreError::from(StoreError::NoReplicas);
        assert!(e.to_string().contains("no replicas"));
        use std::error::Error;
        assert!(e.source().is_some());
        assert!(CoreError::NoPlacement.source().is_none());
    }
}
