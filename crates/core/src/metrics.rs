//! Per-epoch observability: the numbers behind every figure of the paper.

use std::collections::BTreeMap;

use skute_cluster::ServerId;
use skute_ring::RingId;

use crate::decision::ActionCounts;

/// Per-ring statistics for one epoch.
#[derive(Debug, Clone, PartialEq)]
pub struct RingReport {
    /// Which virtual ring.
    pub ring: RingId,
    /// SLA target replica count.
    pub target_replicas: usize,
    /// Number of partitions in the ring.
    pub partitions: usize,
    /// Total virtual nodes (replicas) in the ring — the Fig. 2/3 series.
    pub vnodes: usize,
    /// Mean eq.-(2) availability over partitions.
    pub mean_availability: f64,
    /// Worst partition availability.
    pub min_availability: f64,
    /// Fraction of partitions meeting the SLA threshold.
    pub sla_satisfied_frac: f64,
    /// Queries addressed to the ring this epoch.
    pub queries_offered: f64,
    /// Queries actually served.
    pub queries_served: f64,
    /// Queries dropped for lack of server capacity.
    pub queries_dropped: f64,
    /// Average served queries per alive server — the Fig. 4 series.
    pub load_per_server: f64,
    /// Coefficient of variation of per-server served queries over the
    /// servers hosting this ring's replicas (0 = perfectly balanced).
    pub load_cv: f64,
    /// Mean geographic distance (diversity units, 0..=63) between the
    /// clients and the replicas that served them — the network-latency
    /// proxy of the paper's future-work analysis. Lower is closer.
    pub mean_client_distance: f64,
}

/// Cloud-wide report for one epoch, produced by
/// [`crate::SkuteCloud::end_epoch`].
#[derive(Debug, Clone, PartialEq)]
pub struct EpochReport {
    /// The epoch this report covers.
    pub epoch: u64,
    /// Virtual-node count per alive server — the Fig. 2 distribution.
    /// Keyed by a `BTreeMap` so iteration (and any float aggregation a
    /// consumer layers on top) has a stable, id-sorted order; the epoch
    /// pipeline assembles it from reused sorted accumulators instead of
    /// rehashing a fresh table every epoch.
    pub vnodes_per_server: BTreeMap<ServerId, usize>,
    /// One entry per virtual ring.
    pub rings: Vec<RingReport>,
    /// Actions executed during the epoch's decision phase.
    pub actions: ActionCounts,
    /// Synthetic/real inserts that failed for lack of storage — Fig. 5.
    pub insert_failures: u64,
    /// Partitions that lost their last replica this epoch.
    pub partitions_lost: u64,
    /// Bytes stored across alive servers.
    pub storage_used: u64,
    /// Byte capacity across alive servers.
    pub storage_capacity: u64,
    /// Total virtual rent paid by vnodes this epoch.
    pub rent_paid: f64,
    /// Total (floored) utility earned by vnodes this epoch.
    pub utility_earned: f64,
    /// Lowest posted rent on the board this epoch.
    pub min_rent: Option<f64>,
    /// Number of alive servers.
    pub alive_servers: usize,
}

impl EpochReport {
    /// Used-storage fraction in `[0, 1]`.
    pub fn storage_frac(&self) -> f64 {
        if self.storage_capacity == 0 {
            return 1.0;
        }
        self.storage_used as f64 / self.storage_capacity as f64
    }

    /// Total vnodes across all rings.
    pub fn total_vnodes(&self) -> usize {
        self.rings.iter().map(|r| r.vnodes).sum()
    }

    /// Aggregate net benefit `Σ u − Σ c` this epoch (eq. 5 summed).
    pub fn net_benefit(&self) -> f64 {
        self.utility_earned - self.rent_paid
    }

    /// The ring report for `ring`, if present.
    pub fn ring(&self, ring: RingId) -> Option<&RingReport> {
        self.rings.iter().find(|r| r.ring == ring)
    }
}

/// Outcome of one [`crate::SkuteCloud::anti_entropy`] pass over a ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AntiEntropyReport {
    /// Divergent partitions that had at least one replica repaired.
    pub partitions_repaired: usize,
    /// Replicas that received the LWW union (a copy-on-write handle, not a
    /// per-replica deep copy).
    pub replicas_updated: usize,
    /// Replicas of divergent partitions that already held the union and
    /// were skipped without a writeback.
    pub replicas_in_sync: usize,
    /// Replicas left divergent because their server could not absorb the
    /// union's extra bytes (retried after the economy rebalances).
    pub replicas_deferred: usize,
}

/// Outcome of one [`crate::SkuteCloud::scrub_quarantined`] pass over a
/// ring.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// Replica stores scanned (every replica of every partition).
    pub replicas_scanned: usize,
    /// Replicas whose scrub found unrecoverable corruption (checksum
    /// failures that survived the store's bounded read retries).
    pub replicas_quarantined: usize,
    /// Quarantined replicas re-seeded from the LWW union of their
    /// partition's healthy peers.
    pub replicas_rebuilt: usize,
    /// Quarantined replicas left in place because their server could not
    /// absorb the union's extra bytes (retried after the economy
    /// rebalances).
    pub replicas_deferred: usize,
    /// Partitions whose every replica was quarantined: no healthy peer
    /// exists to rebuild from, so the data is lost to the scrub.
    pub partitions_unrecoverable: usize,
}

/// Mean and coefficient of variation of a sample.
pub(crate) fn mean_cv(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (0.0, 0.0);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return (0.0, 0.0);
    }
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt() / mean)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> EpochReport {
        EpochReport {
            epoch: 7,
            vnodes_per_server: BTreeMap::new(),
            rings: vec![
                RingReport {
                    ring: RingId::new(0, 0),
                    target_replicas: 2,
                    partitions: 10,
                    vnodes: 20,
                    mean_availability: 40.0,
                    min_availability: 15.0,
                    sla_satisfied_frac: 1.0,
                    queries_offered: 100.0,
                    queries_served: 95.0,
                    queries_dropped: 5.0,
                    load_per_server: 0.5,
                    load_cv: 0.1,
                    mean_client_distance: 20.0,
                },
                RingReport {
                    ring: RingId::new(1, 0),
                    target_replicas: 3,
                    partitions: 10,
                    vnodes: 30,
                    mean_availability: 100.0,
                    min_availability: 90.0,
                    sla_satisfied_frac: 0.9,
                    queries_offered: 50.0,
                    queries_served: 50.0,
                    queries_dropped: 0.0,
                    load_per_server: 0.25,
                    load_cv: 0.2,
                    mean_client_distance: 31.0,
                },
            ],
            actions: ActionCounts::default(),
            insert_failures: 3,
            partitions_lost: 0,
            storage_used: 250,
            storage_capacity: 1000,
            rent_paid: 10.0,
            utility_earned: 12.5,
            min_rent: Some(0.1),
            alive_servers: 200,
        }
    }

    #[test]
    fn derived_quantities() {
        let r = report();
        assert!((r.storage_frac() - 0.25).abs() < 1e-12);
        assert_eq!(r.total_vnodes(), 50);
        assert!((r.net_benefit() - 2.5).abs() < 1e-12);
        assert_eq!(r.ring(RingId::new(1, 0)).unwrap().vnodes, 30);
        assert!(r.ring(RingId::new(9, 9)).is_none());
    }

    #[test]
    fn zero_capacity_is_full() {
        let mut r = report();
        r.storage_capacity = 0;
        assert_eq!(r.storage_frac(), 1.0);
    }

    #[test]
    fn mean_cv_basics() {
        assert_eq!(mean_cv(&[]), (0.0, 0.0));
        let (m, cv) = mean_cv(&[2.0, 2.0, 2.0]);
        assert_eq!(m, 2.0);
        assert_eq!(cv, 0.0);
        let (m2, cv2) = mean_cv(&[0.0, 4.0]);
        assert_eq!(m2, 2.0);
        assert!((cv2 - 1.0).abs() < 1e-12);
    }
}
