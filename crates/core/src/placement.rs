//! Replica target selection: eq. (3) and the pluggable strategy interface.

use skute_cluster::{Board, Cluster, ServerId};
use skute_economy::{candidate_score, proximity, EconomyConfig, RegionQueries};
use skute_geo::{Location, Topology};

/// Read-only view of the cloud a placement strategy may consult.
#[derive(Debug, Clone, Copy)]
pub struct PlacementContext<'a> {
    /// The physical servers.
    pub cluster: &'a Cluster,
    /// Posted virtual rents of the current epoch.
    pub board: &'a Board,
    /// The geographic layout.
    pub topology: &'a Topology,
    /// Economy tunables (diversity unit value, etc.).
    pub economy: &'a EconomyConfig,
}

/// A replica placement policy.
///
/// Skute's economic policy is [`EconomicPlacement`]; `skute-baseline`
/// provides random, successor-list, cheapest-first and max-spread
/// alternatives behind this same interface so the comparison benches can
/// swap policies without touching the harness.
pub trait PlacementStrategy {
    /// Human-readable policy name (used in benchmark tables).
    fn name(&self) -> &'static str;

    /// Chooses a server to host a new replica of a partition whose replicas
    /// currently live on `existing`, or `None` if no feasible server exists.
    ///
    /// `partition_size` is the bytes the new replica will occupy;
    /// `region_queries` is the partition's observed per-region query volume
    /// (used by proximity-aware policies).
    fn place_replica(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
        region_queries: &[RegionQueries],
    ) -> Option<ServerId>;
}

/// Enumerates feasible candidates: alive, not already hosting the
/// partition, enough free storage, and (optionally) cheaper than
/// `rent_below`.
///
/// The rent returned per candidate is **projected**: the posted board price
/// plus the eq.-(1) storage term the new replica itself would add
/// (`up · α · size/capacity`). §II-C requires accounting for "the
/// potentially increased virtual rent of the candidate server … after
/// replication"; because storage reservations land immediately while board
/// prices only refresh at epoch boundaries, the projection also gives
/// within-epoch feedback that stops every concurrently repairing partition
/// from herding onto the one currently-cheapest server.
pub fn feasible_candidates<'a>(
    ctx: &'a PlacementContext<'a>,
    existing: &'a [ServerId],
    partition_size: u64,
    rent_below: Option<f64>,
) -> impl Iterator<Item = (ServerId, Location, f64, f64)> + 'a {
    ctx.cluster.alive().filter_map(move |server| {
        if existing.contains(&server.id) {
            return None;
        }
        if server.storage_free() < partition_size {
            return None;
        }
        // A server must be posted on the board to be rentable at all.
        ctx.board.price_of(server.id)?;
        let up = server.marginal_price.price(server.monthly_cost);
        let added_frac = if server.capacities.storage_bytes == 0 {
            1.0
        } else {
            partition_size as f64 / server.capacities.storage_bytes as f64
        };
        // Eq. (1) evaluated on the live meters (which include storage
        // reserved by placements earlier in this same decision phase) plus
        // the replica being placed.
        let projected_storage = (server.storage_frac() + added_frac).min(1.0);
        let rent = up
            * (1.0
                + ctx.economy.alpha * projected_storage
                + ctx.economy.beta * server.query_load_frac());
        if let Some(cap) = rent_below {
            if rent >= cap {
                return None;
            }
        }
        Some((server.id, server.location, server.confidence, rent))
    })
}

/// Eq. (3): picks the feasible candidate maximizing
/// `g_j · conf_j · Σ_k diversity(s_k, s_j) · v − c_j`.
///
/// `rent_below` restricts the search to servers cheaper than the given rent
/// (the migration case: "find a less expensive server that is closer to the
/// client locations"). Returns the winner and its score.
pub fn economic_target(
    ctx: &PlacementContext<'_>,
    existing: &[ServerId],
    partition_size: u64,
    region_queries: &[RegionQueries],
    rent_below: Option<f64>,
) -> Option<(ServerId, f64)> {
    let existing_locations: Vec<Location> = existing
        .iter()
        .filter_map(|id| ctx.cluster.get(*id).map(|s| s.location))
        .collect();
    feasible_candidates(ctx, existing, partition_size, rent_below)
        .map(|(id, location, confidence, rent)| {
            let g = proximity(region_queries, &location, ctx.topology);
            let score = candidate_score(
                &existing_locations,
                &location,
                confidence,
                rent,
                g,
                ctx.economy.diversity_unit_value,
            );
            (id, score)
        })
        .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
}

/// The paper's placement policy (eq. 3) behind the strategy interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct EconomicPlacement;

impl PlacementStrategy for EconomicPlacement {
    fn name(&self) -> &'static str {
        "skute-economic"
    }

    fn place_replica(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
        region_queries: &[RegionQueries],
    ) -> Option<ServerId> {
        economic_target(ctx, existing, partition_size, region_queries, None).map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skute_cluster::{Capacities, ServerSpec};
    use skute_geo::Topology;

    fn setup() -> (Topology, Cluster, Board) {
        let topology = Topology::paper();
        let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
            location,
            capacities: Capacities::paper(1 << 30, 1000.0),
            monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
            confidence: 1.0,
        });
        let mut board = Board::new();
        board.begin_epoch(1);
        for s in cluster.alive() {
            // Price proportional to monthly cost so rents differentiate.
            board.post(s.id, s.monthly_cost / 720.0);
        }
        (topology, cluster, board)
    }

    #[test]
    fn economic_target_prefers_remote_cheap_servers() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        // One replica on server 0 (continent 0).
        let existing = vec![ServerId(0)];
        let (winner, _) = economic_target(&ctx, &existing, 0, &[], None).unwrap();
        let winner_loc = cluster.get(winner).unwrap().location;
        let origin = cluster.get(ServerId(0)).unwrap().location;
        assert_ne!(winner_loc.continent, origin.continent, "max diversity first");
        // Among the cross-continent candidates, a cheap one must win.
        assert_eq!(cluster.get(winner).unwrap().monthly_cost, 100.0);
    }

    #[test]
    fn existing_servers_are_excluded() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let existing: Vec<ServerId> = cluster.alive_ids();
        assert!(economic_target(&ctx, &existing, 0, &[], None).is_none());
    }

    #[test]
    fn storage_filter_applies() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        // Nothing can host 2 GiB on 1 GiB servers.
        assert!(economic_target(&ctx, &[], 2 << 30, &[], None).is_none());
        assert!(economic_target(&ctx, &[], 1 << 20, &[], None).is_some());
    }

    #[test]
    fn rent_cap_restricts_to_cheaper_servers() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let cheap_rent = 100.0 / 720.0;
        // Cap below the cheap price: no candidate at all.
        assert!(economic_target(&ctx, &[], 0, &[], Some(cheap_rent)).is_none());
        // Cap between cheap and expensive: only cheap servers eligible.
        let (winner, _) =
            economic_target(&ctx, &[], 0, &[], Some(cheap_rent + 1e-6)).unwrap();
        assert_eq!(cluster.get(winner).unwrap().monthly_cost, 100.0);
    }

    #[test]
    fn strategy_interface_returns_same_winner() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let existing = vec![ServerId(0)];
        let direct = economic_target(&ctx, &existing, 0, &[], None).map(|(id, _)| id);
        let mut strategy = EconomicPlacement;
        assert_eq!(strategy.place_replica(&ctx, &existing, 0, &[]), direct);
        assert_eq!(strategy.name(), "skute-economic");
    }

    #[test]
    fn determinism_under_ties() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let a = economic_target(&ctx, &[ServerId(0)], 0, &[], None);
        let b = economic_target(&ctx, &[ServerId(0)], 0, &[], None);
        assert_eq!(a, b);
    }
}
