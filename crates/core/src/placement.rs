//! Replica target selection: eq. (3), an incrementally maintained
//! rent-sorted candidate index, and the pluggable strategy interface.

use skute_cluster::{Board, Cluster, ServerId};
use skute_economy::{candidate_score, proximity, EconomyConfig, ProximityCache, RegionQueries};
use skute_geo::{Location, Topology};

/// Read-only view of the cloud a placement strategy may consult.
#[derive(Debug, Clone, Copy)]
pub struct PlacementContext<'a> {
    /// The physical servers.
    pub cluster: &'a Cluster,
    /// Posted virtual rents of the current epoch.
    pub board: &'a Board,
    /// The geographic layout.
    pub topology: &'a Topology,
    /// Economy tunables (diversity unit value, etc.).
    pub economy: &'a EconomyConfig,
}

/// A replica placement policy.
///
/// Skute's economic policy is [`EconomicPlacement`]; `skute-baseline`
/// provides random, successor-list, cheapest-first and max-spread
/// alternatives behind this same interface so the comparison benches can
/// swap policies without touching the harness.
pub trait PlacementStrategy {
    /// Human-readable policy name (used in benchmark tables).
    fn name(&self) -> &'static str;

    /// Chooses a server to host a new replica of a partition whose replicas
    /// currently live on `existing`, or `None` if no feasible server exists.
    ///
    /// `partition_size` is the bytes the new replica will occupy;
    /// `region_queries` is the partition's observed per-region query volume
    /// (used by proximity-aware policies).
    fn place_replica(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
        region_queries: &[RegionQueries],
    ) -> Option<ServerId>;
}

/// Enumerates feasible candidates: alive, not already hosting the
/// partition, enough free storage, and (optionally) cheaper than
/// `rent_below`.
///
/// The rent returned per candidate is **projected**: the posted board price
/// plus the eq.-(1) storage term the new replica itself would add
/// (`up · α · size/capacity`). §II-C requires accounting for "the
/// potentially increased virtual rent of the candidate server … after
/// replication"; because storage reservations land immediately while board
/// prices only refresh at epoch boundaries, the projection also gives
/// within-epoch feedback that stops every concurrently repairing partition
/// from herding onto the one currently-cheapest server.
pub fn feasible_candidates<'a>(
    ctx: &'a PlacementContext<'a>,
    existing: &'a [ServerId],
    partition_size: u64,
    rent_below: Option<f64>,
) -> impl Iterator<Item = (ServerId, Location, f64, f64)> + 'a {
    ctx.cluster.alive().filter_map(move |server| {
        if existing.contains(&server.id) {
            return None;
        }
        if server.storage_free() < partition_size {
            return None;
        }
        // A server must be posted on the board to be rentable at all.
        ctx.board.price_of(server.id)?;
        let up = server.marginal_price.price(server.monthly_cost);
        let added_frac = if server.capacities.storage_bytes == 0 {
            1.0
        } else {
            partition_size as f64 / server.capacities.storage_bytes as f64
        };
        // Eq. (1) evaluated on the live meters (which include storage
        // reserved by placements earlier in this same decision phase) plus
        // the replica being placed.
        let projected_storage = (server.storage_frac() + added_frac).min(1.0);
        let rent = up
            * (1.0
                + ctx.economy.alpha * projected_storage
                + ctx.economy.beta * server.query_load_frac());
        if let Some(cap) = rent_below {
            if rent >= cap {
                return None;
            }
        }
        Some((server.id, server.location, server.confidence, rent))
    })
}

/// Eq. (3): picks the feasible candidate maximizing
/// `g_j · conf_j · Σ_k diversity(s_k, s_j) · v − c_j`.
///
/// `rent_below` restricts the search to servers cheaper than the given rent
/// (the migration case: "find a less expensive server that is closer to the
/// client locations"). Returns the winner and its score.
pub fn economic_target(
    ctx: &PlacementContext<'_>,
    existing: &[ServerId],
    partition_size: u64,
    region_queries: &[RegionQueries],
    rent_below: Option<f64>,
) -> Option<(ServerId, f64)> {
    let existing_locations: Vec<Location> = existing
        .iter()
        .filter_map(|id| ctx.cluster.get(*id).map(|s| s.location))
        .collect();
    feasible_candidates(ctx, existing, partition_size, rent_below)
        .map(|(id, location, confidence, rent)| {
            let g = proximity(region_queries, &location, ctx.topology);
            let score = candidate_score(
                &existing_locations,
                &location,
                confidence,
                rent,
                g,
                ctx.economy.diversity_unit_value,
            );
            (id, score)
        })
        .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
}

/// One feasibility-relevant snapshot of a candidate server, cached by
/// [`PlacementIndex`].
#[derive(Debug, Clone, Copy)]
struct CandidateEntry {
    id: ServerId,
    location: Location,
    confidence: f64,
    /// Marginal usage price `up` of eq. (1).
    up: f64,
    /// Live storage fraction at index-build time.
    storage_frac: f64,
    /// Live query-load fraction at index-build time.
    query_frac: f64,
    storage_capacity: u64,
    storage_free: u64,
    /// Eq.-(1) rent with no replica added (`size = 0`): a lower bound on
    /// the projected rent of any placement, and the sort key of the walk.
    base_rent: f64,
}

/// All snapshotted candidates of one continent, rent-sorted.
#[derive(Debug, Clone, Default)]
struct ContinentBucket {
    continent: u16,
    /// Sorted by `(base_rent, id)` ascending.
    entries: Vec<CandidateEntry>,
    /// One representative location per distinct country in the bucket
    /// (proximity is constant within a country; see [`ProximityCache`]).
    reps: Vec<Location>,
    conf_max: f64,
    /// Identifies this bucket's `reps` set to proximity caches across
    /// queries (unique per index instance, reassigned on rebuild).
    token: u64,
}

/// An incrementally maintained, rent-sorted view of the feasible candidate
/// set that answers eq.-(3) target queries without scanning every alive
/// server.
///
/// The index snapshots every board-posted alive server (location,
/// confidence, usage fractions, marginal price), grouped by continent and
/// sorted within each group by **base rent** — the projected eq.-(1) rent
/// of a zero-byte placement, which lower-bounds the projected rent of any
/// real placement. A query runs a best-first merge over the group heads:
/// each continent's next-cheapest candidate is bounded by
///
/// `g_max(continent) · conf_max(continent) · div_ub(continent) · v − base_rent`
///
/// where `div_ub` counts 63 per existing replica on another continent and
/// 31 per replica on the same one — the diversity sum any candidate of the
/// continent can at most reach — and the walk stops as soon as every
/// remaining head's bound falls below the best score found. Every factor
/// upper-bounds the corresponding factor of the eq.-(3) score and
/// floating-point rounding is monotone for these non-negative products, so
/// the cutoff is sound bit-for-bit: the walk returns **exactly** the
/// winner (and tie-break) of the brute-force [`economic_target`] scan,
/// which stays available as the equivalence oracle for tests and
/// baselines.
///
/// Staleness is detected via [`Cluster::version`] and [`Board::version`]:
/// the snapshot is rebuilt only when prices or usage meters actually
/// changed, and the cloud reports executed actions through
/// [`PlacementIndex::note_servers_changed`] so one placement repositions
/// two entries instead of forcing a rebuild.
#[derive(Debug, Clone, Default)]
pub struct PlacementIndex {
    /// Buckets sorted by continent index.
    buckets: Vec<ContinentBucket>,
    /// Candidates inside a synthetic client zone defeat the country-level
    /// proximity bound; fall back to the brute-force oracle when present.
    has_client_zone: bool,
    stamp: Option<(u64, u64)>,
    /// Source of bucket tokens; never reused within one index.
    next_token: u64,
    /// Scratch for existing-replica locations (avoids a per-call alloc).
    existing_locs: Vec<Location>,
    /// Walk scratch: per-bucket head cursor and gain bound.
    heads: Vec<usize>,
    gains: Vec<f64>,
}

impl PlacementIndex {
    /// An empty index; the first query builds it.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry_fields(server: &skute_cluster::Server, economy: &EconomyConfig) -> CandidateEntry {
        let up = server.marginal_price.price(server.monthly_cost);
        let storage_frac = server.storage_frac();
        let query_frac = server.query_load_frac();
        let base_rent = up * (1.0 + economy.alpha * storage_frac + economy.beta * query_frac);
        CandidateEntry {
            id: server.id,
            location: server.location,
            confidence: server.confidence,
            up,
            storage_frac,
            query_frac,
            storage_capacity: server.capacities.storage_bytes,
            storage_free: server.storage_free(),
            base_rent,
        }
    }

    /// Rebuilds the snapshot iff the cluster or board changed since the
    /// last build. Returns `true` when a rebuild happened (test hook).
    pub fn refresh(&mut self, ctx: &PlacementContext<'_>) -> bool {
        let stamp = (ctx.cluster.version(), ctx.board.version());
        if self.stamp == Some(stamp) {
            return false;
        }
        self.buckets.clear();
        self.has_client_zone = false;
        for server in ctx.cluster.alive() {
            if ctx.board.price_of(server.id).is_none() {
                continue;
            }
            let entry = Self::entry_fields(server, ctx.economy);
            let continent = server.location.continent;
            let bi = match self
                .buckets
                .binary_search_by_key(&continent, |b| b.continent)
            {
                Ok(bi) => bi,
                Err(bi) => {
                    self.buckets.insert(
                        bi,
                        ContinentBucket {
                            continent,
                            ..ContinentBucket::default()
                        },
                    );
                    bi
                }
            };
            let bucket = &mut self.buckets[bi];
            bucket.entries.push(entry);
            if server.confidence > bucket.conf_max {
                bucket.conf_max = server.confidence;
            }
            if server.location.is_client_zone() {
                self.has_client_zone = true;
            } else if !bucket
                .reps
                .iter()
                .any(|l| l.country_key() == server.location.country_key())
            {
                bucket.reps.push(server.location);
            }
        }
        for bucket in &mut self.buckets {
            bucket.entries.sort_unstable_by(|a, b| {
                a.base_rent
                    .total_cmp(&b.base_rent)
                    .then_with(|| a.id.cmp(&b.id))
            });
            bucket.token = self.next_token;
            self.next_token += 1;
        }
        self.stamp = Some(stamp);
        true
    }

    /// Surgically refreshes the entries of `ids` after the caller mutated
    /// **only those servers** since the snapshot was last in sync, then
    /// re-stamps the snapshot as current — so executing a placement action
    /// costs two entry repositions instead of a full rebuild before the
    /// next decision.
    ///
    /// Contract: between the last [`PlacementIndex::refresh`] (or previous
    /// note) and this call, no server outside `ids` may have changed in
    /// any way that affects rent, storage or liveness. `SkuteCloud`
    /// upholds this by noting the touched servers immediately after every
    /// executed replication/migration/suicide. Board changes void the
    /// contract and drop the snapshot so the next query rebuilds.
    pub fn note_servers_changed(&mut self, ctx: &PlacementContext<'_>, ids: &[ServerId]) {
        let Some((_, board_version)) = self.stamp else {
            return; // never built; the next query will build it
        };
        if ctx.board.version() != board_version {
            self.stamp = None;
            return;
        }
        for &id in ids {
            let pos =
                self.buckets.iter().enumerate().find_map(|(bi, b)| {
                    b.entries.iter().position(|e| e.id == id).map(|ei| (bi, ei))
                });
            let server = ctx
                .cluster
                .get_alive(id)
                .filter(|s| ctx.board.price_of(s.id).is_some());
            match (pos, server) {
                (Some((bi, ei)), Some(server)) => {
                    // Locations never change, so the entry stays in its
                    // bucket; only its rent fields (and thus position) move.
                    let entry = Self::entry_fields(server, ctx.economy);
                    let bucket = &mut self.buckets[bi];
                    bucket.entries.remove(ei);
                    let at = bucket.entries.partition_point(|e| {
                        matches!(
                            e.base_rent
                                .total_cmp(&entry.base_rent)
                                .then_with(|| e.id.cmp(&entry.id)),
                            std::cmp::Ordering::Less
                        )
                    });
                    bucket.entries.insert(at, entry);
                }
                (Some((bi, ei)), None) => {
                    // Retired or withdrawn mid-phase; conf_max and the
                    // country representatives stay as (sound) over-bounds.
                    self.buckets[bi].entries.remove(ei);
                }
                (None, Some(_)) => {
                    // A server this snapshot never saw (e.g. commissioned
                    // mid-phase): the surgical contract cannot cover its
                    // country/confidence bounds — rebuild instead.
                    self.stamp = None;
                    return;
                }
                (None, None) => {}
            }
        }
        self.stamp = Some((ctx.cluster.version(), board_version));
    }

    /// Number of candidates currently snapshotted (test hook).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.entries.len()).sum()
    }

    /// True when no candidate is snapshotted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Eq. (3) over the index: same contract — and bit-identical result —
    /// as the brute-force [`economic_target`], but running a bounded
    /// best-first walk over the per-continent rent-sorted buckets, and
    /// reading per-country proximity through `prox` instead of recomputing
    /// it per candidate.
    ///
    /// `prox` must have been filled (or cleared) against the same
    /// `region_queries` it is handed here.
    pub fn economic_target(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
        region_queries: &[RegionQueries],
        rent_below: Option<f64>,
        prox: &mut ProximityCache,
    ) -> Option<(ServerId, f64)> {
        self.refresh(ctx);
        // The per-continent g_max bound relies on proximity being constant
        // within a server country, which holds only when every client sits
        // in a country zone and no candidate does. Anything else takes the
        // oracle scan so the equivalence contract holds unconditionally.
        if self.has_client_zone || !region_queries.iter().all(|r| r.location.is_client_zone()) {
            return economic_target(ctx, existing, partition_size, region_queries, rent_below);
        }
        // Migration queries usually find nothing under their rent cap:
        // when even the cheapest base rent is at or past the cap, no
        // candidate is feasible — answer without computing any bound.
        if let Some(cap) = rent_below {
            if !self
                .buckets
                .iter()
                .any(|b| b.entries.first().is_some_and(|e| e.base_rent < cap))
            {
                return None;
            }
        }
        self.existing_locs.clear();
        for id in existing {
            if let Some(s) = ctx.cluster.get(*id) {
                self.existing_locs.push(s.location);
            }
        }
        let v = ctx.economy.diversity_unit_value;
        let alpha = ctx.economy.alpha;
        let beta = ctx.economy.beta;
        // Per-bucket upper bound of the score's positive part: proximity,
        // confidence and diversity-sum factors replaced by the bucket's
        // maxima, multiplied in the same association order as
        // `candidate_score` so monotone rounding keeps the bound sound.
        // The diversity of a candidate pairs at most 63 with an existing
        // replica on another continent and at most 31 with one on its own.
        self.heads.clear();
        self.gains.clear();
        for b in &self.buckets {
            let mut div_ub = 0u32;
            for l in &self.existing_locs {
                div_ub += if l.continent == b.continent { 31 } else { 63 };
            }
            let g_max = prox.g_max(b.token, &b.reps, region_queries, ctx.topology);
            self.gains.push(g_max * b.conf_max * f64::from(div_ub) * v);
            self.heads.push(0);
        }
        let mut best: Option<(ServerId, f64)> = None;
        loop {
            // Best-first: the head with the greatest score bound.
            let mut pick: Option<(usize, f64)> = None;
            for bi in 0..self.buckets.len() {
                let Some(e) = self.buckets[bi].entries.get(self.heads[bi]) else {
                    continue;
                };
                if let Some(cap) = rent_below {
                    if e.base_rent >= cap {
                        // Rent-sorted: the whole rest of this bucket is
                        // past the cap too.
                        self.heads[bi] = usize::MAX;
                        continue;
                    }
                }
                let ub = self.gains[bi] - e.base_rent;
                if pick.is_none_or(|(_, best_ub)| ub > best_ub) {
                    pick = Some((bi, ub));
                }
            }
            let Some((bi, ub)) = pick else { break };
            // Branch-and-bound cutoff: no remaining candidate can beat
            // (or, because its rent is strictly costlier at equal gain,
            // even tie) the best score found so far.
            if let Some((_, best_score)) = best {
                if ub < best_score {
                    break;
                }
            }
            let e = self.buckets[bi].entries[self.heads[bi]];
            self.heads[bi] += 1;
            if existing.contains(&e.id) {
                continue;
            }
            if e.storage_free < partition_size {
                continue;
            }
            let added_frac = if e.storage_capacity == 0 {
                1.0
            } else {
                partition_size as f64 / e.storage_capacity as f64
            };
            let projected_storage = (e.storage_frac + added_frac).min(1.0);
            let rent = e.up * (1.0 + alpha * projected_storage + beta * e.query_frac);
            if let Some(cap) = rent_below {
                if rent >= cap {
                    continue;
                }
            }
            // Cheap per-candidate cut with the exact projected rent: the
            // real score can only be lower than the bucket gain bound
            // minus it.
            if let Some((_, best_score)) = best {
                if self.gains[bi] - rent < best_score {
                    continue;
                }
            }
            let g = prox.g(region_queries, &e.location, ctx.topology);
            let score = candidate_score(
                &self.existing_locs,
                &e.location,
                e.confidence,
                rent,
                g,
                ctx.economy.diversity_unit_value,
            );
            best = match best {
                None => Some((e.id, score)),
                Some((best_id, best_score)) => match score.total_cmp(&best_score) {
                    std::cmp::Ordering::Greater => Some((e.id, score)),
                    std::cmp::Ordering::Equal if e.id < best_id => Some((e.id, score)),
                    _ => best,
                },
            };
        }
        best
    }
}

/// The paper's placement policy (eq. 3) behind the strategy interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct EconomicPlacement;

impl PlacementStrategy for EconomicPlacement {
    fn name(&self) -> &'static str {
        "skute-economic"
    }

    fn place_replica(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
        region_queries: &[RegionQueries],
    ) -> Option<ServerId> {
        economic_target(ctx, existing, partition_size, region_queries, None).map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use skute_cluster::{Capacities, ServerSpec};
    use skute_geo::Topology;

    fn setup() -> (Topology, Cluster, Board) {
        let topology = Topology::paper();
        let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
            location,
            capacities: Capacities::paper(1 << 30, 1000.0),
            monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
            confidence: 1.0,
        });
        let mut board = Board::new();
        board.begin_epoch(1);
        for s in cluster.alive() {
            // Price proportional to monthly cost so rents differentiate.
            board.post(s.id, s.monthly_cost / 720.0);
        }
        (topology, cluster, board)
    }

    #[test]
    fn economic_target_prefers_remote_cheap_servers() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        // One replica on server 0 (continent 0).
        let existing = vec![ServerId(0)];
        let (winner, _) = economic_target(&ctx, &existing, 0, &[], None).unwrap();
        let winner_loc = cluster.get(winner).unwrap().location;
        let origin = cluster.get(ServerId(0)).unwrap().location;
        assert_ne!(
            winner_loc.continent, origin.continent,
            "max diversity first"
        );
        // Among the cross-continent candidates, a cheap one must win.
        assert_eq!(cluster.get(winner).unwrap().monthly_cost, 100.0);
    }

    #[test]
    fn existing_servers_are_excluded() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let existing: Vec<ServerId> = cluster.alive_ids();
        assert!(economic_target(&ctx, &existing, 0, &[], None).is_none());
    }

    #[test]
    fn storage_filter_applies() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        // Nothing can host 2 GiB on 1 GiB servers.
        assert!(economic_target(&ctx, &[], 2 << 30, &[], None).is_none());
        assert!(economic_target(&ctx, &[], 1 << 20, &[], None).is_some());
    }

    #[test]
    fn rent_cap_restricts_to_cheaper_servers() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let cheap_rent = 100.0 / 720.0;
        // Cap below the cheap price: no candidate at all.
        assert!(economic_target(&ctx, &[], 0, &[], Some(cheap_rent)).is_none());
        // Cap between cheap and expensive: only cheap servers eligible.
        let (winner, _) = economic_target(&ctx, &[], 0, &[], Some(cheap_rent + 1e-6)).unwrap();
        assert_eq!(cluster.get(winner).unwrap().monthly_cost, 100.0);
    }

    #[test]
    fn strategy_interface_returns_same_winner() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let existing = vec![ServerId(0)];
        let direct = economic_target(&ctx, &existing, 0, &[], None).map(|(id, _)| id);
        let mut strategy = EconomicPlacement;
        assert_eq!(strategy.place_replica(&ctx, &existing, 0, &[]), direct);
        assert_eq!(strategy.name(), "skute-economic");
    }

    #[test]
    fn index_matches_brute_force_on_the_paper_fixture() {
        let (topology, mut cluster, board) = setup();
        let economy = EconomyConfig::paper();
        // Skew some usage meters so rents differentiate beyond cost tiers.
        for i in [3u32, 57, 123, 199] {
            let s = cluster.get_mut(ServerId(i)).unwrap();
            let caps = s.capacities;
            assert!(s.usage.reserve_storage(&caps, (u64::from(i) % 7 + 1) << 26));
            s.usage.serve_queries(&caps, f64::from(i % 11) * 40.0);
        }
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let mut index = PlacementIndex::new();
        let regions = [RegionQueries {
            location: Location::client_in_country(1, 0),
            queries: 700.0,
        }];
        let cheap_rent = 100.0 / 720.0;
        for existing in [
            vec![],
            vec![ServerId(0)],
            vec![ServerId(0), ServerId(57), ServerId(123)],
        ] {
            for size in [0u64, 1 << 20, 1 << 29] {
                for cap in [None, Some(cheap_rent * 1.5), Some(cheap_rent / 2.0)] {
                    for rq in [&[][..], &regions[..]] {
                        let brute = economic_target(&ctx, &existing, size, rq, cap);
                        let mut prox = skute_economy::ProximityCache::new();
                        let indexed =
                            index.economic_target(&ctx, &existing, size, rq, cap, &mut prox);
                        assert_eq!(
                            indexed, brute,
                            "existing {existing:?} size {size} cap {cap:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn index_matches_brute_force_for_non_zone_clients() {
        // Regression: a client at a *real server location* (reachable via
        // `ClientGeo::Weighted`) makes proximity vary within a country, so
        // the per-continent g_max bound is unsound — the index must detect
        // the mix and take the oracle path instead of pruning the true
        // winner (an exact-location match with a huge proximity weight).
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let regions = [RegionQueries {
            location: topology.server_at(150),
            queries: 5_000.0,
        }];
        let existing = vec![ServerId(0)];
        let brute = economic_target(&ctx, &existing, 0, &regions, None);
        let mut index = PlacementIndex::new();
        let mut prox = skute_economy::ProximityCache::new();
        let indexed = index.economic_target(&ctx, &existing, 0, &regions, None, &mut prox);
        assert_eq!(indexed, brute);
        assert_eq!(brute.unwrap().0, ServerId(150), "exact match dominates");
    }

    #[test]
    fn index_invalidates_on_usage_and_price_changes() {
        let (topology, mut cluster, mut board) = setup();
        let economy = EconomyConfig::paper();
        let mut index = PlacementIndex::new();
        let mut prox = skute_economy::ProximityCache::new();
        let winner = |index: &mut PlacementIndex,
                      prox: &mut skute_economy::ProximityCache,
                      cluster: &Cluster,
                      board: &Board| {
            let ctx = PlacementContext {
                cluster,
                board,
                topology: &topology,
                economy: &economy,
            };
            let rebuilt = index.refresh(&ctx);
            let got = index.economic_target(&ctx, &[ServerId(0)], 1 << 20, &[], None, prox);
            let want = economic_target(&ctx, &[ServerId(0)], 1 << 20, &[], None);
            assert_eq!(got, want);
            (rebuilt, got)
        };
        let (rebuilt, first) = winner(&mut index, &mut prox, &cluster, &board);
        assert!(rebuilt, "first query builds the index");
        let (rebuilt, again) = winner(&mut index, &mut prox, &cluster, &board);
        assert!(!rebuilt, "unchanged cluster and board reuse the snapshot");
        assert_eq!(again, first);
        // Fill the current winner's storage: the usage-meter mutation must
        // invalidate the snapshot and steer the choice elsewhere.
        let (prev, _) = first.unwrap();
        {
            let s = cluster.get_mut(prev).unwrap();
            let caps = s.capacities;
            let free = s.storage_free();
            assert!(s.usage.reserve_storage(&caps, free));
        }
        let (rebuilt, after_fill) = winner(&mut index, &mut prox, &cluster, &board);
        assert!(rebuilt, "get_mut invalidates the snapshot");
        assert_ne!(after_fill.unwrap().0, prev, "full server cannot win");
        // Withdrawing a posting invalidates through the board version.
        let (next, _) = after_fill.unwrap();
        board.withdraw(next);
        let (rebuilt, after_withdraw) = winner(&mut index, &mut prox, &cluster, &board);
        assert!(rebuilt, "board changes invalidate the snapshot");
        assert_ne!(after_withdraw.unwrap().0, next);
    }

    proptest::proptest! {
        /// The rent-sorted walk must return the *same winner and tie-break*
        /// as the brute-force scan on arbitrary clusters, prices, usage
        /// meters, region mixes and rent caps.
        #[test]
        fn prop_index_equals_brute_force(
            server_picks in proptest::collection::vec((0u64..200, 50.0f64..200.0, 0.2f64..1.0), 2..24),
            usage in proptest::collection::vec((any::<u64>(), 0.0f64..900.0), 0..12),
            unposted in proptest::collection::vec(0usize..24, 0..4),
            existing_picks in proptest::collection::vec(0usize..24, 0..4),
            region_picks in proptest::collection::vec(
                (0u64..200, 0.0f64..1e4, any::<bool>()),
                0..5,
            ),
            size_exp in 0u32..31,
            cap_frac in proptest::option::of(0.1f64..3.0),
        ) {
            use proptest::prelude::*;
            let topology = Topology::paper();
            let mut cluster = Cluster::new();
            for &(loc_idx, cost, conf) in &server_picks {
                cluster.commission(
                    ServerSpec {
                        location: topology.server_at(loc_idx),
                        capacities: Capacities::paper(1 << 30, 1000.0),
                        monthly_cost: cost,
                        confidence: conf,
                    },
                    0,
                );
            }
            let n = cluster.len();
            // Random usage meters, through get_mut like the real epoch loop.
            for &(bytes, queries) in &usage {
                let id = ServerId((bytes % n as u64) as u32);
                let s = cluster.get_mut(id).unwrap();
                let caps = s.capacities;
                let _ = s.usage.reserve_storage(&caps, bytes % (1 << 30));
                s.usage.serve_queries(&caps, queries);
            }
            let mut board = Board::new();
            board.begin_epoch(1);
            for s in cluster.alive() {
                board.post(s.id, s.monthly_cost / 720.0);
            }
            for &u in &unposted {
                board.withdraw(ServerId((u % n) as u32));
            }
            let existing: Vec<ServerId> =
                existing_picks.iter().map(|&i| ServerId((i % n) as u32)).collect();
            let regions: Vec<RegionQueries> = region_picks
                .iter()
                .map(|&(loc_idx, queries, in_zone)| RegionQueries {
                    location: {
                        let l = topology.server_at(loc_idx);
                        if in_zone {
                            Location::client_in_country(l.continent, l.country)
                        } else {
                            // A client at a real server location: proximity
                            // is no longer country-constant, so the index
                            // must detect it and take the oracle path.
                            l
                        }
                    },
                    queries,
                })
                .collect();
            let partition_size = 1u64 << size_exp;
            let rent_below = cap_frac.map(|f| f * 100.0 / 720.0);
            let economy = EconomyConfig::paper();
            let ctx = PlacementContext {
                cluster: &cluster,
                board: &board,
                topology: &topology,
                economy: &economy,
            };
            let brute = economic_target(&ctx, &existing, partition_size, &regions, rent_below);
            let mut index = PlacementIndex::new();
            let mut prox = skute_economy::ProximityCache::new();
            let indexed =
                index.economic_target(&ctx, &existing, partition_size, &regions, rent_below, &mut prox);
            prop_assert_eq!(indexed, brute);
            // Re-query through the warm snapshot and cache: still identical.
            let indexed_warm =
                index.economic_target(&ctx, &existing, partition_size, &regions, rent_below, &mut prox);
            prop_assert_eq!(indexed_warm, brute);
        }
    }

    #[test]
    fn determinism_under_ties() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let a = economic_target(&ctx, &[ServerId(0)], 0, &[], None);
        let b = economic_target(&ctx, &[ServerId(0)], 0, &[], None);
        assert_eq!(a, b);
    }
}
