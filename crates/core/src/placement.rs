//! Replica target selection: eq. (3), an incrementally maintained
//! rent-sorted candidate index, and the pluggable strategy interface.

use skute_cluster::{Board, Cluster, ServerId};
use skute_economy::{candidate_score, proximity, EconomyConfig, ProximityCache, RegionQueries};
use skute_geo::{Location, Topology};

/// Read-only view of the cloud a placement strategy may consult.
#[derive(Debug, Clone, Copy)]
pub struct PlacementContext<'a> {
    /// The physical servers.
    pub cluster: &'a Cluster,
    /// Posted virtual rents of the current epoch.
    pub board: &'a Board,
    /// The geographic layout.
    pub topology: &'a Topology,
    /// Economy tunables (diversity unit value, etc.).
    pub economy: &'a EconomyConfig,
}

/// A replica placement policy.
///
/// Skute's economic policy is [`EconomicPlacement`]; `skute-baseline`
/// provides random, successor-list, cheapest-first and max-spread
/// alternatives behind this same interface so the comparison benches can
/// swap policies without touching the harness.
pub trait PlacementStrategy {
    /// Human-readable policy name (used in benchmark tables).
    fn name(&self) -> &'static str;

    /// Chooses a server to host a new replica of a partition whose replicas
    /// currently live on `existing`, or `None` if no feasible server exists.
    ///
    /// `partition_size` is the bytes the new replica will occupy;
    /// `region_queries` is the partition's observed per-region query volume
    /// (used by proximity-aware policies).
    fn place_replica(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
        region_queries: &[RegionQueries],
    ) -> Option<ServerId>;
}

/// Eq. (1) evaluated on a server's live meters (which include storage
/// reserved by placements earlier in the same decision phase) plus
/// `partition_size` bytes being placed. **The one copy** of the projected
/// rent arithmetic: the oracle scan, the speculative-walk validation and
/// the write-set rent cache all call it, so their floats cannot drift.
/// `partition_size = 0` yields the base rent that lower-bounds any
/// placement's projected rent (bit-monotone in the added bytes).
fn projected_rent(
    server: &skute_cluster::Server,
    partition_size: u64,
    economy: &EconomyConfig,
) -> f64 {
    let up = server.marginal_price.price(server.monthly_cost);
    let added_frac = if server.capacities.storage_bytes == 0 {
        1.0
    } else {
        partition_size as f64 / server.capacities.storage_bytes as f64
    };
    let projected_storage = (server.storage_frac() + added_frac).min(1.0);
    up * (1.0 + economy.alpha * projected_storage + economy.beta * server.query_load_frac())
}

/// Enumerates feasible candidates: alive, not already hosting the
/// partition, enough free storage, and (optionally) cheaper than
/// `rent_below`.
///
/// The rent returned per candidate is **projected**: the posted board price
/// plus the eq.-(1) storage term the new replica itself would add
/// (`up · α · size/capacity`). §II-C requires accounting for "the
/// potentially increased virtual rent of the candidate server … after
/// replication"; because storage reservations land immediately while board
/// prices only refresh at epoch boundaries, the projection also gives
/// within-epoch feedback that stops every concurrently repairing partition
/// from herding onto the one currently-cheapest server.
pub fn feasible_candidates<'a>(
    ctx: &'a PlacementContext<'a>,
    existing: &'a [ServerId],
    partition_size: u64,
    rent_below: Option<f64>,
) -> impl Iterator<Item = (ServerId, Location, f64, f64)> + 'a {
    ctx.cluster.alive().filter_map(move |server| {
        if existing.contains(&server.id) {
            return None;
        }
        if server.storage_free() < partition_size {
            return None;
        }
        // A server must be posted on the board to be rentable at all.
        ctx.board.price_of(server.id)?;
        let rent = projected_rent(server, partition_size, ctx.economy);
        if let Some(cap) = rent_below {
            if rent >= cap {
                return None;
            }
        }
        Some((server.id, server.location, server.confidence, rent))
    })
}

/// Eq. (3): picks the feasible candidate maximizing
/// `g_j · conf_j · Σ_k diversity(s_k, s_j) · v − c_j`.
///
/// `rent_below` restricts the search to servers cheaper than the given rent
/// (the migration case: "find a less expensive server that is closer to the
/// client locations"). Returns the winner and its score.
pub fn economic_target(
    ctx: &PlacementContext<'_>,
    existing: &[ServerId],
    partition_size: u64,
    region_queries: &[RegionQueries],
    rent_below: Option<f64>,
) -> Option<(ServerId, f64)> {
    let existing_locations: Vec<Location> = existing
        .iter()
        .filter_map(|id| ctx.cluster.get(*id).map(|s| s.location))
        .collect();
    feasible_candidates(ctx, existing, partition_size, rent_below)
        .map(|(id, location, confidence, rent)| {
            let g = proximity(region_queries, &location, ctx.topology);
            let score = candidate_score(
                &existing_locations,
                &location,
                confidence,
                rent,
                g,
                ctx.economy.diversity_unit_value,
            );
            (id, score)
        })
        .max_by(|a, b| a.1.total_cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
}

/// One feasibility-relevant snapshot of a candidate server, cached by
/// [`PlacementIndex`].
#[derive(Debug, Clone, Copy)]
struct CandidateEntry {
    id: ServerId,
    location: Location,
    confidence: f64,
    /// Marginal usage price `up` of eq. (1).
    up: f64,
    /// Live storage fraction at index-build time.
    storage_frac: f64,
    /// Live query-load fraction at index-build time.
    query_frac: f64,
    storage_capacity: u64,
    storage_free: u64,
    /// Eq.-(1) rent with no replica added (`size = 0`): a lower bound on
    /// the projected rent of any placement, and the sort key of the walk.
    base_rent: f64,
    /// The rent posted on the board (what rent-greedy baselines compare).
    posted: f64,
}

/// All snapshotted candidates of one continent, rent-sorted.
#[derive(Debug, Clone, Default)]
struct ContinentBucket {
    continent: u16,
    /// Sorted by `(base_rent, id)` ascending.
    entries: Vec<CandidateEntry>,
    /// One representative location per distinct country in the bucket
    /// (proximity is constant within a country; see [`ProximityCache`]).
    reps: Vec<Location>,
    conf_max: f64,
    /// Identifies this bucket's `reps` set to proximity caches across
    /// queries (unique per index instance, reassigned on rebuild).
    token: u64,
}

/// An incrementally maintained, rent-sorted view of the feasible candidate
/// set that answers eq.-(3) target queries without scanning every alive
/// server.
///
/// The index snapshots every board-posted alive server (location,
/// confidence, usage fractions, marginal price), grouped by continent and
/// sorted within each group by **base rent** — the projected eq.-(1) rent
/// of a zero-byte placement, which lower-bounds the projected rent of any
/// real placement. A query runs a best-first merge over the group heads:
/// each continent's next-cheapest candidate is bounded by
///
/// `g_max(continent) · conf_max(continent) · div_ub(continent) · v − base_rent`
///
/// where `div_ub` counts 63 per existing replica on another continent and
/// 31 per replica on the same one — the diversity sum any candidate of the
/// continent can at most reach — and the walk stops as soon as every
/// remaining head's bound falls below the best score found. Every factor
/// upper-bounds the corresponding factor of the eq.-(3) score and
/// floating-point rounding is monotone for these non-negative products, so
/// the cutoff is sound bit-for-bit: the walk returns **exactly** the
/// winner (and tie-break) of the brute-force [`economic_target`] scan,
/// which stays available as the equivalence oracle for tests and
/// baselines.
///
/// Staleness is detected via [`Cluster::version`] and [`Board::version`]:
/// the snapshot is rebuilt only when prices or usage meters actually
/// changed, and the cloud reports executed actions through
/// [`PlacementIndex::note_servers_changed`] so one placement repositions
/// two entries instead of forcing a rebuild.
#[derive(Debug, Clone, Default)]
pub struct PlacementIndex {
    /// Buckets sorted by continent index.
    buckets: Vec<ContinentBucket>,
    /// Candidates inside a synthetic client zone defeat the country-level
    /// proximity bound; fall back to the brute-force oracle when present.
    has_client_zone: bool,
    stamp: Option<(u64, u64)>,
    /// Source of bucket tokens; never reused within one index.
    next_token: u64,
    /// Walk scratch of the owned-access query path; read-only snapshot
    /// queries ([`PlacementIndex::economic_target_in`]) bring their own.
    walk: WalkScratch,
    /// Servers whose executed actions invalidated their entries, queued by
    /// [`PlacementIndex::queue_servers_changed`] during a commit pass and
    /// applied at the next read (phase barrier or query).
    queued: Vec<ServerId>,
}

/// Reusable scratch buffers of one best-first index walk. The read-only
/// snapshot path takes them from the caller so concurrent workers can walk
/// one shared index with per-worker scratch.
///
/// Besides the walk buffers, the scratch records the walk's **read set**:
/// the ids of every candidate entry whose snapshot fields the last query
/// actually examined (popped heads, including entries rejected for
/// storage, rent cap or membership — their fields steered the walk). A
/// query that routes through the full-cluster oracle scan instead marks
/// [`WalkScratch::reads_all`]. Speculative queries keep the read set so a
/// later commit can decide whether a mutation to some server could have
/// changed the answer (see [`validate_speculation`]).
#[derive(Debug, Clone, Default)]
pub struct WalkScratch {
    existing_locs: Vec<Location>,
    /// Per-bucket head cursor and gain bound.
    heads: Vec<usize>,
    gains: Vec<f64>,
    /// Entry ids examined by the last query (unordered).
    reads: Vec<ServerId>,
    /// The last query fell back to a full scan: every candidate was read.
    reads_all: bool,
}

impl WalkScratch {
    /// Server entries the last query examined. Meaningless when
    /// [`WalkScratch::reads_all`] is set.
    pub fn reads(&self) -> &[ServerId] {
        &self.reads
    }

    /// True when the last query read every candidate (oracle scan paths:
    /// brute-force routing, client-zone region mixes, stale snapshots).
    pub fn reads_all(&self) -> bool {
        self.reads_all
    }

    /// Marks the last query as a full scan (callers that answer through
    /// the brute-force oracle without running the walk).
    pub fn mark_reads_all(&mut self) {
        self.reads.clear();
        self.reads_all = true;
    }
}

impl PlacementIndex {
    /// An empty index; the first query builds it.
    pub fn new() -> Self {
        Self::default()
    }

    fn entry_fields(
        server: &skute_cluster::Server,
        economy: &EconomyConfig,
        posted: f64,
    ) -> CandidateEntry {
        let up = server.marginal_price.price(server.monthly_cost);
        let storage_frac = server.storage_frac();
        let query_frac = server.query_load_frac();
        let base_rent = up * (1.0 + economy.alpha * storage_frac + economy.beta * query_frac);
        CandidateEntry {
            id: server.id,
            location: server.location,
            confidence: server.confidence,
            up,
            storage_frac,
            query_frac,
            storage_capacity: server.capacities.storage_bytes,
            storage_free: server.storage_free(),
            base_rent,
            posted,
        }
    }

    /// Queues servers whose entries went stale (an action just executed on
    /// them). Applied lazily by the next read — the next query of a commit
    /// pass, or the refresh at the next phase barrier — so commit loops
    /// never pay for repositions nothing will read.
    pub fn queue_servers_changed(&mut self, ids: &[ServerId]) {
        self.queued.extend_from_slice(ids);
    }

    fn flush_queued(&mut self, ctx: &PlacementContext<'_>) {
        if self.queued.is_empty() {
            return;
        }
        let ids = std::mem::take(&mut self.queued);
        self.note_servers_changed(ctx, &ids);
        self.queued = ids;
        self.queued.clear();
    }

    /// Rebuilds the snapshot iff the cluster or board changed since the
    /// last build (queued invalidations are applied first, which usually
    /// re-synchronizes the stamp without a rebuild). Returns `true` when a
    /// rebuild happened (test hook).
    pub fn refresh(&mut self, ctx: &PlacementContext<'_>) -> bool {
        self.flush_queued(ctx);
        let stamp = (ctx.cluster.version(), ctx.board.version());
        if self.stamp == Some(stamp) {
            return false;
        }
        self.buckets.clear();
        self.has_client_zone = false;
        for server in ctx.cluster.alive() {
            let Some(posted) = ctx.board.price_of(server.id) else {
                continue;
            };
            let entry = Self::entry_fields(server, ctx.economy, posted);
            let continent = server.location.continent;
            let bi = match self
                .buckets
                .binary_search_by_key(&continent, |b| b.continent)
            {
                Ok(bi) => bi,
                Err(bi) => {
                    self.buckets.insert(
                        bi,
                        ContinentBucket {
                            continent,
                            ..ContinentBucket::default()
                        },
                    );
                    bi
                }
            };
            let bucket = &mut self.buckets[bi];
            bucket.entries.push(entry);
            if server.confidence > bucket.conf_max {
                bucket.conf_max = server.confidence;
            }
            if server.location.is_client_zone() {
                self.has_client_zone = true;
            } else if !bucket
                .reps
                .iter()
                .any(|l| l.country_key() == server.location.country_key())
            {
                bucket.reps.push(server.location);
            }
        }
        for bucket in &mut self.buckets {
            bucket.entries.sort_unstable_by(|a, b| {
                a.base_rent
                    .total_cmp(&b.base_rent)
                    .then_with(|| a.id.cmp(&b.id))
            });
            bucket.token = self.next_token;
            self.next_token += 1;
        }
        self.stamp = Some(stamp);
        true
    }

    /// Surgically refreshes the entries of `ids` after the caller mutated
    /// **only those servers** since the snapshot was last in sync, then
    /// re-stamps the snapshot as current — so executing a placement action
    /// costs two entry repositions instead of a full rebuild before the
    /// next decision.
    ///
    /// Contract: between the last [`PlacementIndex::refresh`] (or previous
    /// note) and this call, no server outside `ids` may have changed in
    /// any way that affects rent, storage or liveness. `SkuteCloud`
    /// upholds this by noting the touched servers immediately after every
    /// executed replication/migration/suicide. Board changes void the
    /// contract and drop the snapshot so the next query rebuilds.
    pub fn note_servers_changed(&mut self, ctx: &PlacementContext<'_>, ids: &[ServerId]) {
        let Some((_, board_version)) = self.stamp else {
            return; // never built; the next query will build it
        };
        if ctx.board.version() != board_version {
            self.stamp = None;
            return;
        }
        for &id in ids {
            let pos =
                self.buckets.iter().enumerate().find_map(|(bi, b)| {
                    b.entries.iter().position(|e| e.id == id).map(|ei| (bi, ei))
                });
            let server = ctx
                .cluster
                .get_alive(id)
                .and_then(|s| ctx.board.price_of(s.id).map(|p| (s, p)));
            match (pos, server) {
                (Some((bi, ei)), Some((server, posted))) => {
                    // Locations never change, so the entry stays in its
                    // bucket; only its rent fields (and thus position) move.
                    let entry = Self::entry_fields(server, ctx.economy, posted);
                    let bucket = &mut self.buckets[bi];
                    bucket.entries.remove(ei);
                    let at = bucket.entries.partition_point(|e| {
                        matches!(
                            e.base_rent
                                .total_cmp(&entry.base_rent)
                                .then_with(|| e.id.cmp(&entry.id)),
                            std::cmp::Ordering::Less
                        )
                    });
                    bucket.entries.insert(at, entry);
                }
                (Some((bi, ei)), None) => {
                    // Retired or withdrawn mid-phase; conf_max and the
                    // country representatives stay as (sound) over-bounds.
                    self.buckets[bi].entries.remove(ei);
                }
                (None, Some(_)) => {
                    // A server this snapshot never saw (e.g. commissioned
                    // mid-phase): the surgical contract cannot cover its
                    // country/confidence bounds — rebuild instead.
                    self.stamp = None;
                    return;
                }
                (None, None) => {}
            }
        }
        self.stamp = Some((ctx.cluster.version(), board_version));
    }

    /// Number of candidates currently snapshotted (test hook).
    pub fn len(&self) -> usize {
        self.buckets.iter().map(|b| b.entries.len()).sum()
    }

    /// True when no candidate is snapshotted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Eq. (3) over the index: same contract — and bit-identical result —
    /// as the brute-force [`economic_target`], but running a bounded
    /// best-first walk over the per-continent rent-sorted buckets, and
    /// reading per-country proximity through `prox` instead of recomputing
    /// it per candidate.
    ///
    /// `prox` must have been filled (or cleared) against the same
    /// `region_queries` it is handed here.
    pub fn economic_target(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
        region_queries: &[RegionQueries],
        rent_below: Option<f64>,
        prox: &mut ProximityCache,
    ) -> Option<(ServerId, f64)> {
        self.refresh(ctx);
        let Self {
            buckets,
            has_client_zone,
            walk,
            ..
        } = self;
        walk_economic_target(
            buckets,
            *has_client_zone,
            walk,
            ctx,
            existing,
            partition_size,
            region_queries,
            rent_below,
            prox,
        )
    }

    /// The read-only variant of [`PlacementIndex::economic_target`] for
    /// concurrent snapshot queries: the caller owns the walk scratch (one
    /// per worker), the index is only read, and the snapshot must already
    /// be current — [`PlacementIndex::refresh`] at the phase barrier, no
    /// cluster/board mutation since. Bit-identical to the owned path.
    ///
    /// A stale snapshot is a caller bug (asserted in debug builds), but
    /// release builds stay correct rather than silently wrong: the query
    /// detects the version mismatch and answers through the brute-force
    /// oracle scan of the live state.
    #[allow(clippy::too_many_arguments)]
    pub fn economic_target_in(
        &self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
        region_queries: &[RegionQueries],
        rent_below: Option<f64>,
        prox: &mut ProximityCache,
        walk: &mut WalkScratch,
    ) -> Option<(ServerId, f64)> {
        let current = Some((ctx.cluster.version(), ctx.board.version()));
        debug_assert_eq!(
            self.stamp, current,
            "snapshot queries need a refresh at the phase barrier"
        );
        if self.stamp != current {
            walk.mark_reads_all();
            return economic_target(ctx, existing, partition_size, region_queries, rent_below);
        }
        walk_economic_target(
            &self.buckets,
            self.has_client_zone,
            walk,
            ctx,
            existing,
            partition_size,
            region_queries,
            rent_below,
            prox,
        )
    }

    /// The cheapest-first baseline over the index: the feasible candidate
    /// with the lowest **posted** rent (ties to the lower id) — the same
    /// winner as a full `cluster.alive()` scan against the board, read off
    /// the compact snapshot entries instead.
    pub fn cheapest_posted(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
    ) -> Option<ServerId> {
        self.refresh(ctx);
        let mut best: Option<(f64, ServerId)> = None;
        for bucket in &self.buckets {
            for e in &bucket.entries {
                if e.storage_free < partition_size || existing.contains(&e.id) {
                    continue;
                }
                let candidate = (e.posted, e.id);
                let better = match &best {
                    None => true,
                    Some((bp, bid)) => matches!(
                        e.posted.total_cmp(bp).then_with(|| e.id.cmp(bid)),
                        std::cmp::Ordering::Less
                    ),
                };
                if better {
                    best = Some(candidate);
                }
            }
        }
        best.map(|(_, id)| id)
    }

    /// The max-spread baseline over the index: the feasible candidate
    /// maximizing the summed diversity to `existing` (ties to the lower
    /// id), pruning whole continent buckets whose diversity upper bound
    /// cannot beat the best gain found. Integer arithmetic throughout, so
    /// the bucket walk returns exactly the full-scan winner; note the
    /// candidate set is the index's (board-posted servers).
    pub fn max_spread(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
    ) -> Option<ServerId> {
        self.refresh(ctx);
        let Self { buckets, walk, .. } = self;
        walk.existing_locs.clear();
        for id in existing {
            if let Some(s) = ctx.cluster.get(*id) {
                walk.existing_locs.push(s.location);
            }
        }
        let mut best: Option<(u32, ServerId)> = None;
        for bucket in buckets.iter() {
            // A candidate pairs at most 63 with a replica on another
            // continent and at most 31 with one on its own.
            let ub: u32 = walk
                .existing_locs
                .iter()
                .map(|l| {
                    if l.continent == bucket.continent {
                        31
                    } else {
                        63
                    }
                })
                .sum();
            if let Some((best_gain, _)) = best {
                // Strictly below: an equal bound can still tie and win on id.
                if ub < best_gain {
                    continue;
                }
            }
            for e in &bucket.entries {
                if e.storage_free < partition_size || existing.contains(&e.id) {
                    continue;
                }
                let gain: u32 = walk
                    .existing_locs
                    .iter()
                    .map(|l| u32::from(skute_geo::diversity(l, &e.location)))
                    .sum();
                let better = match &best {
                    None => true,
                    Some((bg, bid)) => gain > *bg || (gain == *bg && e.id < *bid),
                };
                if better {
                    best = Some((gain, e.id));
                }
            }
        }
        best.map(|(_, id)| id)
    }
}

/// The bounded best-first eq.-(3) walk shared by the owned and read-only
/// query paths (see [`PlacementIndex::economic_target`] for the contract).
#[allow(clippy::too_many_arguments)]
fn walk_economic_target(
    buckets: &[ContinentBucket],
    has_client_zone: bool,
    walk: &mut WalkScratch,
    ctx: &PlacementContext<'_>,
    existing: &[ServerId],
    partition_size: u64,
    region_queries: &[RegionQueries],
    rent_below: Option<f64>,
    prox: &mut ProximityCache,
) -> Option<(ServerId, f64)> {
    // The read set is verification machinery: release validation rests
    // on the argmax-dominance theorem and the improved-server re-scores
    // (see `validate_speculation`), so only debug builds — every test
    // run — pay for recording and cross-checking the walk's reads.
    let record_reads = cfg!(debug_assertions);
    walk.reads.clear();
    walk.reads_all = false;
    // The per-continent g_max bound relies on proximity being constant
    // within a server country, which holds only when every client sits
    // in a country zone and no candidate does. Anything else takes the
    // oracle scan so the equivalence contract holds unconditionally.
    if has_client_zone || !region_queries.iter().all(|r| r.location.is_client_zone()) {
        walk.reads_all = true;
        return economic_target(ctx, existing, partition_size, region_queries, rent_below);
    }
    // Migration queries usually find nothing under their rent cap:
    // when even the cheapest base rent is at or past the cap, no
    // candidate is feasible — answer without computing any bound. Only
    // the bucket heads were read, and all were at or past the cap.
    if let Some(cap) = rent_below {
        if !buckets
            .iter()
            .any(|b| b.entries.first().is_some_and(|e| e.base_rent < cap))
        {
            if record_reads {
                for b in buckets {
                    if let Some(e) = b.entries.first() {
                        walk.reads.push(e.id);
                    }
                }
            }
            return None;
        }
    }
    walk.existing_locs.clear();
    for id in existing {
        if let Some(s) = ctx.cluster.get(*id) {
            walk.existing_locs.push(s.location);
        }
    }
    let v = ctx.economy.diversity_unit_value;
    let alpha = ctx.economy.alpha;
    let beta = ctx.economy.beta;
    // Per-bucket upper bound of the score's positive part: proximity,
    // confidence and diversity-sum factors replaced by the bucket's
    // maxima, multiplied in the same association order as
    // `candidate_score` so monotone rounding keeps the bound sound.
    // The diversity of a candidate pairs at most 63 with an existing
    // replica on another continent and at most 31 with one on its own.
    walk.heads.clear();
    walk.gains.clear();
    for b in buckets {
        let mut div_ub = 0u32;
        for l in &walk.existing_locs {
            div_ub += if l.continent == b.continent { 31 } else { 63 };
        }
        let g_max = prox.g_max(b.token, &b.reps, region_queries, ctx.topology);
        walk.gains.push(g_max * b.conf_max * f64::from(div_ub) * v);
        walk.heads.push(0);
    }
    let mut best: Option<(ServerId, f64)> = None;
    loop {
        // Best-first: the head with the greatest score bound.
        let mut pick: Option<(usize, f64)> = None;
        for (bi, bucket) in buckets.iter().enumerate() {
            let Some(e) = bucket.entries.get(walk.heads[bi]) else {
                continue;
            };
            if let Some(cap) = rent_below {
                if e.base_rent >= cap {
                    // Rent-sorted: the whole rest of this bucket is
                    // past the cap too. Only the head was read; the
                    // entries behind it are provably cap-infeasible at
                    // any higher rent, so they stay out of the read set.
                    if record_reads {
                        walk.reads.push(e.id);
                    }
                    walk.heads[bi] = usize::MAX;
                    continue;
                }
            }
            let ub = walk.gains[bi] - e.base_rent;
            if pick.is_none_or(|(_, best_ub)| ub > best_ub) {
                pick = Some((bi, ub));
            }
        }
        let Some((bi, ub)) = pick else { break };
        // Branch-and-bound cutoff: no remaining candidate can beat
        // (or, because its rent is strictly costlier at equal gain,
        // even tie) the best score found so far.
        if let Some((_, best_score)) = best {
            if ub < best_score {
                break;
            }
        }
        let e = buckets[bi].entries[walk.heads[bi]];
        walk.heads[bi] += 1;
        // Popped: the entry's fields steered the walk (even when the
        // candidate is then rejected), so it joins the read set. Entries
        // never popped were pruned by a bound strictly below the winner's
        // score and stay out — a mutation can only matter there if it
        // *improves* the candidate, which validation re-scores anyway.
        if record_reads {
            walk.reads.push(e.id);
        }
        if existing.contains(&e.id) {
            continue;
        }
        if e.storage_free < partition_size {
            continue;
        }
        let added_frac = if e.storage_capacity == 0 {
            1.0
        } else {
            partition_size as f64 / e.storage_capacity as f64
        };
        let projected_storage = (e.storage_frac + added_frac).min(1.0);
        let rent = e.up * (1.0 + alpha * projected_storage + beta * e.query_frac);
        if let Some(cap) = rent_below {
            if rent >= cap {
                continue;
            }
        }
        // Cheap per-candidate cut with the exact projected rent: the
        // real score can only be lower than the bucket gain bound
        // minus it.
        if let Some((_, best_score)) = best {
            if walk.gains[bi] - rent < best_score {
                continue;
            }
        }
        let g = prox.g(region_queries, &e.location, ctx.topology);
        let score = candidate_score(
            &walk.existing_locs,
            &e.location,
            e.confidence,
            rent,
            g,
            ctx.economy.diversity_unit_value,
        );
        best = match best {
            None => Some((e.id, score)),
            Some((best_id, best_score)) => match score.total_cmp(&best_score) {
                std::cmp::Ordering::Greater => Some((e.id, score)),
                std::cmp::Ordering::Equal if e.id < best_id => Some((e.id, score)),
                _ => best,
            },
        };
    }
    best
}

/// The write set of one decision commit pass: every server the committed
/// actions have mutated so far, split by mutation direction (the split is
/// what lets [`validate_speculation`] stay O(1)-ish per speculation).
#[derive(Debug, Clone, Default)]
pub struct SpecWriteSet {
    /// Sorted ids whose every touch so far only *reserved* storage
    /// (replication/migration targets): their eq.-(1) rent can only have
    /// risen and their free storage only shrunk, so as eq.-(3) candidates
    /// they strictly weakened.
    worse: Vec<ServerId>,
    /// Sorted ids with at least one storage *release* (migration sources,
    /// suicides): possibly stronger candidates now — validation re-scores
    /// them exactly.
    mixed: Vec<ServerId>,
    /// Servers touched since the rent cache was last refreshed — the only
    /// entries whose live rent can have moved (nothing else mutates
    /// between commit-pass actions), so the refresh is incremental.
    dirty: Vec<ServerId>,
    /// The mixed servers with their **live base rent** (eq. (1) at zero
    /// added bytes — a bit-monotone lower bound on any placement's
    /// projected rent), sorted ascending. Rent-capped validations scan
    /// only the prefix whose base rent clears the cap: the common
    /// convergence-epoch validation (a `None` migration speculation
    /// against dozens of freed sources) touches one float instead of
    /// running a feasibility check per mixed server.
    mixed_rents: Vec<(f64, ServerId)>,
}

impl SpecWriteSet {
    /// An empty write set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Forgets every touch (a new commit pass begins).
    pub fn clear(&mut self) {
        self.worse.clear();
        self.mixed.clear();
        self.mixed_rents.clear();
        self.dirty.clear();
    }

    /// True when no committed action has touched any server yet — every
    /// speculation is trivially valid.
    pub fn is_empty(&self) -> bool {
        self.worse.is_empty() && self.mixed.is_empty()
    }

    /// Records one committed action's touch on `id`. `worse` means the
    /// action only *reserved* storage there; a release demotes the server
    /// to the mixed set for the rest of the pass.
    pub fn record(&mut self, id: ServerId, worse: bool) {
        if !self.dirty.contains(&id) {
            self.dirty.push(id);
        }
        if worse {
            if self.mixed.binary_search(&id).is_ok() {
                return;
            }
            if let Err(at) = self.worse.binary_search(&id) {
                self.worse.insert(at, id);
            }
        } else {
            if let Ok(at) = self.worse.binary_search(&id) {
                self.worse.remove(at);
            }
            if let Err(at) = self.mixed.binary_search(&id) {
                self.mixed.insert(at, id);
            }
        }
    }

    /// Brings the live base-rent cache of the mixed set up to date.
    /// Incremental: between committed actions only the touched servers'
    /// meters move, so exactly the dirty ids get their entries recomputed
    /// (removed, and reinserted in rent order while they stay mixed).
    fn refresh_mixed_rents(&mut self, ctx: &PlacementContext<'_>) {
        while let Some(id) = self.dirty.pop() {
            if let Some(pos) = self.mixed_rents.iter().position(|&(_, i)| i == id) {
                self.mixed_rents.remove(pos);
            }
            if self.mixed.binary_search(&id).is_err() {
                continue;
            }
            let rent = match ctx.cluster.get_alive(id) {
                Some(s) if ctx.board.price_of(id).is_some() => projected_rent(s, 0, ctx.economy),
                // Dead or unposted: never feasible; park it past any cap.
                _ => f64::INFINITY,
            };
            let at = self.mixed_rents.partition_point(|&(r, i)| {
                matches!(
                    r.total_cmp(&rent).then_with(|| i.cmp(&id)),
                    std::cmp::Ordering::Less
                )
            });
            self.mixed_rents.insert(at, (rent, id));
        }
    }

    /// True when any committed action touched `id`.
    pub fn contains(&self, id: ServerId) -> bool {
        self.worse.binary_search(&id).is_ok() || self.mixed.binary_search(&id).is_ok()
    }

    /// Servers that only got weaker as candidates.
    pub fn worse(&self) -> &[ServerId] {
        &self.worse
    }

    /// Servers that may have gotten stronger as candidates.
    pub fn mixed(&self) -> &[ServerId] {
        &self.mixed
    }
}

/// Exactly the feasibility filter and projected-rent arithmetic of
/// [`feasible_candidates`], evaluated for one server against the live
/// cluster/board. Returns `(location, confidence, rent)` when the server
/// is a feasible candidate, `None` otherwise. The caller excludes
/// `existing` membership itself.
fn live_candidate(
    ctx: &PlacementContext<'_>,
    id: ServerId,
    partition_size: u64,
    rent_below: Option<f64>,
) -> Option<(Location, f64, f64)> {
    let server = ctx.cluster.get_alive(id)?;
    if server.storage_free() < partition_size {
        return None;
    }
    ctx.board.price_of(server.id)?;
    let rent = projected_rent(server, partition_size, ctx.economy);
    if let Some(cap) = rent_below {
        if rent >= cap {
            return None;
        }
    }
    Some((server.location, server.confidence, rent))
}

/// Re-scores one touched server against a speculation's recorded answer:
/// `true` when the server's live state genuinely conflicts — it would
/// change what a fresh walk returns. Exact per-candidate arithmetic of
/// [`feasible_candidates`]; ties break to the lower id, matching the
/// walk. `existing_locs` fills lazily across calls via `locs_filled`.
#[allow(clippy::too_many_arguments)]
fn recheck_conflicts(
    ctx: &PlacementContext<'_>,
    existing: &[ServerId],
    partition_size: u64,
    region_queries: &[RegionQueries],
    rent_below: Option<f64>,
    prox: &mut ProximityCache,
    spec: Option<(ServerId, f64)>,
    id: ServerId,
    existing_locs: &mut Vec<Location>,
    locs_filled: &mut bool,
) -> bool {
    if existing.contains(&id) {
        // Never a candidate; its meters enter no candidate's score.
        return false;
    }
    let Some((winner, winner_score)) = spec else {
        // `None` flips to `Some` iff the server became feasible.
        return live_candidate(ctx, id, partition_size, rent_below).is_some();
    };
    if id == winner {
        return true;
    }
    let Some((location, confidence, rent)) = live_candidate(ctx, id, partition_size, rent_below)
    else {
        return false;
    };
    if !*locs_filled {
        existing_locs.clear();
        for e in existing {
            if let Some(s) = ctx.cluster.get(*e) {
                existing_locs.push(s.location);
            }
        }
        *locs_filled = true;
    }
    let g = prox.g(region_queries, &location, ctx.topology);
    let score = candidate_score(
        existing_locs,
        &location,
        confidence,
        rent,
        g,
        ctx.economy.diversity_unit_value,
    );
    match score.total_cmp(&winner_score) {
        std::cmp::Ordering::Greater => true,
        std::cmp::Ordering::Equal => id < winner,
        std::cmp::Ordering::Less => false,
    }
}

/// Decides whether a speculative eq.-(3) answer computed against a frozen
/// snapshot is still **exactly** what a fresh walk over the live state
/// would return, given the write set of the committed actions since the
/// freeze. `true` means provably bit-identical; `false` means re-walk.
///
/// The argument is the argmax decomposition: the fresh walk returns the
/// brute-force argmax over the live candidate set (the index/oracle
/// equivalence contract), and only the write set's servers differ from
/// the frozen state — every other candidate scores the same bits it did
/// at plan time. The speculation therefore survives iff
///
/// * the frozen winner itself is untouched (its recorded score is still
///   its live score), and
/// * no touched candidate now beats it. Candidates that only *weakened*
///   ([`SpecWriteSet::worse`]: storage reserved, never released) need no
///   arithmetic at all — **argmax dominance**: every candidate's frozen
///   score already lost to the winner (or tied and lost the id break),
///   eq.-(1) rent is bit-monotone in the storage fraction (α/β are
///   validated non-negative and the marginal price `up` is a share of
///   the non-negative real cost), and feasibility only shrinks, so a
///   weakened candidate's live score still loses, read or pruned. Candidates that may have *improved*
///   ([`SpecWriteSet::mixed`]: some storage released) are re-scored
///   exactly ([`recheck_conflicts`]) — an unread pruned server can newly
///   win, so the read set cannot shortcut this direction.
///
/// A `None` speculation (no feasible candidate existed) stays `None` iff
/// no improved server became feasible; weakening cannot create
/// feasibility.
///
/// The read set the speculative walk recorded ([`WalkScratch::reads`],
/// plus `reads_all` for oracle-scan fallbacks) is the speculation's exact
/// dependency footprint: board price cells collapse to the frozen board
/// version the caller gates on (the commit pass never writes the board),
/// and the per-server dependencies are cross-checked here in debug builds
/// — every weakened server the walk actually read is re-scored and
/// asserted to still lose, verifying the dominance theorem on every real
/// trajectory the tests drive. `prox` must be the cache filled against
/// the same `region_queries`; `existing_locs` is caller scratch.
#[allow(clippy::too_many_arguments)]
pub fn validate_speculation(
    ctx: &PlacementContext<'_>,
    existing: &[ServerId],
    partition_size: u64,
    region_queries: &[RegionQueries],
    rent_below: Option<f64>,
    prox: &mut ProximityCache,
    spec: Option<(ServerId, f64)>,
    writes: &mut SpecWriteSet,
    reads: &[ServerId],
    reads_all: bool,
    existing_locs: &mut Vec<Location>,
) -> bool {
    let mut locs_filled = false;
    // Any touch to the winner voids its recorded score.
    if let Some((winner, _)) = spec {
        if writes.contains(winner) {
            return false;
        }
    }
    // Possibly improved candidates: exact re-score, reads cannot help. A
    // rent-capped query only re-scores the mixed servers whose live base
    // rent clears the cap (sorted ascending; the projected rent of any
    // placement is bounded below by the base rent, bit-monotonically), so
    // the common convergence validation — a capped `None` migration
    // speculation against dozens of freed sources — reads one float.
    if let Some(cap) = rent_below {
        writes.refresh_mixed_rents(ctx);
        for i in 0..writes.mixed_rents.len() {
            let (base, id) = writes.mixed_rents[i];
            if base >= cap {
                break;
            }
            if recheck_conflicts(
                ctx,
                existing,
                partition_size,
                region_queries,
                rent_below,
                prox,
                spec,
                id,
                existing_locs,
                &mut locs_filled,
            ) {
                return false;
            }
        }
    } else {
        for i in 0..writes.mixed.len() {
            let id = writes.mixed[i];
            if recheck_conflicts(
                ctx,
                existing,
                partition_size,
                region_queries,
                rent_below,
                prox,
                spec,
                id,
                existing_locs,
                &mut locs_filled,
            ) {
                return false;
            }
        }
    }
    // Strictly weakened candidates: argmax dominance, no arithmetic. The
    // debug cross-check re-scores the ones the walk actually read and
    // asserts the theorem held.
    if cfg!(debug_assertions) {
        for &id in writes.worse() {
            if reads_all || reads.contains(&id) {
                debug_assert!(
                    !recheck_conflicts(
                        ctx,
                        existing,
                        partition_size,
                        region_queries,
                        rent_below,
                        prox,
                        spec,
                        id,
                        existing_locs,
                        &mut locs_filled,
                    ),
                    "a strictly weakened candidate overtook the speculated winner"
                );
            }
        }
    }
    true
}

/// The paper's placement policy (eq. 3) behind the strategy interface.
#[derive(Debug, Clone, Copy, Default)]
pub struct EconomicPlacement;

impl PlacementStrategy for EconomicPlacement {
    fn name(&self) -> &'static str {
        "skute-economic"
    }

    fn place_replica(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
        region_queries: &[RegionQueries],
    ) -> Option<ServerId> {
        economic_target(ctx, existing, partition_size, region_queries, None).map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use skute_cluster::{Capacities, ServerSpec};
    use skute_geo::Topology;

    fn setup() -> (Topology, Cluster, Board) {
        let topology = Topology::paper();
        let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
            location,
            capacities: Capacities::paper(1 << 30, 1000.0),
            monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
            confidence: 1.0,
        });
        let mut board = Board::new();
        board.begin_epoch(1);
        for s in cluster.alive() {
            // Price proportional to monthly cost so rents differentiate.
            board.post(s.id, s.monthly_cost / 720.0);
        }
        (topology, cluster, board)
    }

    #[test]
    fn economic_target_prefers_remote_cheap_servers() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        // One replica on server 0 (continent 0).
        let existing = vec![ServerId(0)];
        let (winner, _) = economic_target(&ctx, &existing, 0, &[], None).unwrap();
        let winner_loc = cluster.get(winner).unwrap().location;
        let origin = cluster.get(ServerId(0)).unwrap().location;
        assert_ne!(
            winner_loc.continent, origin.continent,
            "max diversity first"
        );
        // Among the cross-continent candidates, a cheap one must win.
        assert_eq!(cluster.get(winner).unwrap().monthly_cost, 100.0);
    }

    #[test]
    fn existing_servers_are_excluded() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let existing: Vec<ServerId> = cluster.alive_ids();
        assert!(economic_target(&ctx, &existing, 0, &[], None).is_none());
    }

    #[test]
    fn storage_filter_applies() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        // Nothing can host 2 GiB on 1 GiB servers.
        assert!(economic_target(&ctx, &[], 2 << 30, &[], None).is_none());
        assert!(economic_target(&ctx, &[], 1 << 20, &[], None).is_some());
    }

    #[test]
    fn rent_cap_restricts_to_cheaper_servers() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let cheap_rent = 100.0 / 720.0;
        // Cap below the cheap price: no candidate at all.
        assert!(economic_target(&ctx, &[], 0, &[], Some(cheap_rent)).is_none());
        // Cap between cheap and expensive: only cheap servers eligible.
        let (winner, _) = economic_target(&ctx, &[], 0, &[], Some(cheap_rent + 1e-6)).unwrap();
        assert_eq!(cluster.get(winner).unwrap().monthly_cost, 100.0);
    }

    #[test]
    fn strategy_interface_returns_same_winner() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let existing = vec![ServerId(0)];
        let direct = economic_target(&ctx, &existing, 0, &[], None).map(|(id, _)| id);
        let mut strategy = EconomicPlacement;
        assert_eq!(strategy.place_replica(&ctx, &existing, 0, &[]), direct);
        assert_eq!(strategy.name(), "skute-economic");
    }

    #[test]
    fn index_matches_brute_force_on_the_paper_fixture() {
        let (topology, mut cluster, board) = setup();
        let economy = EconomyConfig::paper();
        // Skew some usage meters so rents differentiate beyond cost tiers.
        for i in [3u32, 57, 123, 199] {
            let s = cluster.get_mut(ServerId(i)).unwrap();
            let caps = s.capacities;
            assert!(s.usage.reserve_storage(&caps, (u64::from(i) % 7 + 1) << 26));
            s.usage.serve_queries(&caps, f64::from(i % 11) * 40.0);
        }
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let mut index = PlacementIndex::new();
        let regions = [RegionQueries {
            location: Location::client_in_country(1, 0),
            queries: 700.0,
        }];
        let cheap_rent = 100.0 / 720.0;
        for existing in [
            vec![],
            vec![ServerId(0)],
            vec![ServerId(0), ServerId(57), ServerId(123)],
        ] {
            for size in [0u64, 1 << 20, 1 << 29] {
                for cap in [None, Some(cheap_rent * 1.5), Some(cheap_rent / 2.0)] {
                    for rq in [&[][..], &regions[..]] {
                        let brute = economic_target(&ctx, &existing, size, rq, cap);
                        let mut prox = skute_economy::ProximityCache::new();
                        let indexed =
                            index.economic_target(&ctx, &existing, size, rq, cap, &mut prox);
                        assert_eq!(
                            indexed, brute,
                            "existing {existing:?} size {size} cap {cap:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn index_matches_brute_force_for_non_zone_clients() {
        // Regression: a client at a *real server location* (reachable via
        // `ClientGeo::Weighted`) makes proximity vary within a country, so
        // the per-continent g_max bound is unsound — the index must detect
        // the mix and take the oracle path instead of pruning the true
        // winner (an exact-location match with a huge proximity weight).
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let regions = [RegionQueries {
            location: topology.server_at(150),
            queries: 5_000.0,
        }];
        let existing = vec![ServerId(0)];
        let brute = economic_target(&ctx, &existing, 0, &regions, None);
        let mut index = PlacementIndex::new();
        let mut prox = skute_economy::ProximityCache::new();
        let indexed = index.economic_target(&ctx, &existing, 0, &regions, None, &mut prox);
        assert_eq!(indexed, brute);
        assert_eq!(brute.unwrap().0, ServerId(150), "exact match dominates");
    }

    #[test]
    fn index_invalidates_on_usage_and_price_changes() {
        let (topology, mut cluster, mut board) = setup();
        let economy = EconomyConfig::paper();
        let mut index = PlacementIndex::new();
        let mut prox = skute_economy::ProximityCache::new();
        let winner = |index: &mut PlacementIndex,
                      prox: &mut skute_economy::ProximityCache,
                      cluster: &Cluster,
                      board: &Board| {
            let ctx = PlacementContext {
                cluster,
                board,
                topology: &topology,
                economy: &economy,
            };
            let rebuilt = index.refresh(&ctx);
            let got = index.economic_target(&ctx, &[ServerId(0)], 1 << 20, &[], None, prox);
            let want = economic_target(&ctx, &[ServerId(0)], 1 << 20, &[], None);
            assert_eq!(got, want);
            (rebuilt, got)
        };
        let (rebuilt, first) = winner(&mut index, &mut prox, &cluster, &board);
        assert!(rebuilt, "first query builds the index");
        let (rebuilt, again) = winner(&mut index, &mut prox, &cluster, &board);
        assert!(!rebuilt, "unchanged cluster and board reuse the snapshot");
        assert_eq!(again, first);
        // Fill the current winner's storage: the usage-meter mutation must
        // invalidate the snapshot and steer the choice elsewhere.
        let (prev, _) = first.unwrap();
        {
            let s = cluster.get_mut(prev).unwrap();
            let caps = s.capacities;
            let free = s.storage_free();
            assert!(s.usage.reserve_storage(&caps, free));
        }
        let (rebuilt, after_fill) = winner(&mut index, &mut prox, &cluster, &board);
        assert!(rebuilt, "get_mut invalidates the snapshot");
        assert_ne!(after_fill.unwrap().0, prev, "full server cannot win");
        // Withdrawing a posting invalidates through the board version.
        let (next, _) = after_fill.unwrap();
        board.withdraw(next);
        let (rebuilt, after_withdraw) = winner(&mut index, &mut prox, &cluster, &board);
        assert!(rebuilt, "board changes invalidate the snapshot");
        assert_ne!(after_withdraw.unwrap().0, next);
    }

    proptest::proptest! {
        /// The rent-sorted walk must return the *same winner and tie-break*
        /// as the brute-force scan on arbitrary clusters, prices, usage
        /// meters, region mixes and rent caps.
        #[test]
        fn prop_index_equals_brute_force(
            server_picks in proptest::collection::vec((0u64..200, 50.0f64..200.0, 0.2f64..1.0), 2..24),
            usage in proptest::collection::vec((any::<u64>(), 0.0f64..900.0), 0..12),
            unposted in proptest::collection::vec(0usize..24, 0..4),
            existing_picks in proptest::collection::vec(0usize..24, 0..4),
            region_picks in proptest::collection::vec(
                (0u64..200, 0.0f64..1e4, any::<bool>()),
                0..5,
            ),
            size_exp in 0u32..31,
            cap_frac in proptest::option::of(0.1f64..3.0),
        ) {
            use proptest::prelude::*;
            let topology = Topology::paper();
            let mut cluster = Cluster::new();
            for &(loc_idx, cost, conf) in &server_picks {
                cluster.commission(
                    ServerSpec {
                        location: topology.server_at(loc_idx),
                        capacities: Capacities::paper(1 << 30, 1000.0),
                        monthly_cost: cost,
                        confidence: conf,
                    },
                    0,
                );
            }
            let n = cluster.len();
            // Random usage meters, through get_mut like the real epoch loop.
            for &(bytes, queries) in &usage {
                let id = ServerId((bytes % n as u64) as u32);
                let s = cluster.get_mut(id).unwrap();
                let caps = s.capacities;
                let _ = s.usage.reserve_storage(&caps, bytes % (1 << 30));
                s.usage.serve_queries(&caps, queries);
            }
            let mut board = Board::new();
            board.begin_epoch(1);
            for s in cluster.alive() {
                board.post(s.id, s.monthly_cost / 720.0);
            }
            for &u in &unposted {
                board.withdraw(ServerId((u % n) as u32));
            }
            let existing: Vec<ServerId> =
                existing_picks.iter().map(|&i| ServerId((i % n) as u32)).collect();
            let regions: Vec<RegionQueries> = region_picks
                .iter()
                .map(|&(loc_idx, queries, in_zone)| RegionQueries {
                    location: {
                        let l = topology.server_at(loc_idx);
                        if in_zone {
                            Location::client_in_country(l.continent, l.country)
                        } else {
                            // A client at a real server location: proximity
                            // is no longer country-constant, so the index
                            // must detect it and take the oracle path.
                            l
                        }
                    },
                    queries,
                })
                .collect();
            let partition_size = 1u64 << size_exp;
            let rent_below = cap_frac.map(|f| f * 100.0 / 720.0);
            let economy = EconomyConfig::paper();
            let ctx = PlacementContext {
                cluster: &cluster,
                board: &board,
                topology: &topology,
                economy: &economy,
            };
            let brute = economic_target(&ctx, &existing, partition_size, &regions, rent_below);
            let mut index = PlacementIndex::new();
            let mut prox = skute_economy::ProximityCache::new();
            let indexed =
                index.economic_target(&ctx, &existing, partition_size, &regions, rent_below, &mut prox);
            prop_assert_eq!(indexed, brute);
            // Re-query through the warm snapshot and cache: still identical.
            let indexed_warm =
                index.economic_target(&ctx, &existing, partition_size, &regions, rent_below, &mut prox);
            prop_assert_eq!(indexed_warm, brute);
        }
    }

    #[test]
    fn read_only_walk_matches_owned_walk() {
        let (topology, mut cluster, board) = setup();
        let economy = EconomyConfig::paper();
        // Skew meters so projected rents differentiate.
        for i in [5u32, 77, 140] {
            let s = cluster.get_mut(ServerId(i)).unwrap();
            let caps = s.capacities;
            assert!(s.usage.reserve_storage(&caps, (u64::from(i % 7) + 1) << 24));
        }
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let mut index = PlacementIndex::new();
        index.refresh(&ctx);
        let regions = [RegionQueries {
            location: Location::client_in_country(2, 0),
            queries: 400.0,
        }];
        for existing in [vec![], vec![ServerId(0), ServerId(123)]] {
            for cap in [None, Some(0.2)] {
                let mut prox_a = skute_economy::ProximityCache::new();
                let mut prox_b = skute_economy::ProximityCache::new();
                let mut walk = WalkScratch::default();
                let ro = index.economic_target_in(
                    &ctx,
                    &existing,
                    1 << 20,
                    &regions,
                    cap,
                    &mut prox_a,
                    &mut walk,
                );
                let owned =
                    index.economic_target(&ctx, &existing, 1 << 20, &regions, cap, &mut prox_b);
                assert_eq!(ro, owned, "existing {existing:?} cap {cap:?}");
            }
        }
    }

    #[test]
    fn queued_invalidation_applies_at_next_read() {
        let (topology, mut cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let mut index = PlacementIndex::new();
        let mut prox = skute_economy::ProximityCache::new();
        let first = {
            let ctx = PlacementContext {
                cluster: &cluster,
                board: &board,
                topology: &topology,
                economy: &economy,
            };
            index.economic_target(&ctx, &[], 1 << 20, &[], None, &mut prox)
        };
        let (winner, _) = first.unwrap();
        // Mutate exactly the winner (as an executed placement would) and
        // queue the invalidation instead of applying it immediately.
        {
            let s = cluster.get_mut(winner).unwrap();
            let caps = s.capacities;
            let free = s.storage_free();
            assert!(s.usage.reserve_storage(&caps, free));
        }
        index.queue_servers_changed(&[winner]);
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        // The queued note re-synchronizes the stamp: no rebuild, and the
        // answer matches the brute-force scan of the live state.
        let rebuilt = index.refresh(&ctx);
        assert!(!rebuilt, "queued repositioning avoids the rebuild");
        let indexed = index.economic_target(&ctx, &[], 1 << 20, &[], None, &mut prox);
        let brute = economic_target(&ctx, &[], 1 << 20, &[], None);
        assert_eq!(indexed, brute);
        assert_ne!(indexed.unwrap().0, winner, "full server cannot win");
    }

    #[test]
    fn index_baselines_match_full_scans() {
        let (topology, mut cluster, mut board) = setup();
        let economy = EconomyConfig::paper();
        for i in [9u32, 60, 150] {
            let s = cluster.get_mut(ServerId(i)).unwrap();
            let caps = s.capacities;
            assert!(s.usage.reserve_storage(&caps, 1 << 29));
        }
        board.withdraw(ServerId(17));
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let mut index = PlacementIndex::new();
        for existing in [vec![], vec![ServerId(0)], vec![ServerId(0), ServerId(199)]] {
            for size in [0u64, 1 << 29, 1 << 31] {
                // Cheapest-first: minimum posted rent, ties to lower id.
                let scan_cheapest = cluster
                    .alive()
                    .filter(|s| !existing.contains(&s.id) && s.storage_free() >= size)
                    .filter_map(|s| board.price_of(s.id).map(|p| (s.id, p)))
                    .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
                    .map(|(id, _)| id);
                assert_eq!(
                    index.cheapest_posted(&ctx, &existing, size),
                    scan_cheapest,
                    "cheapest: existing {existing:?} size {size}"
                );
                // Max-spread: maximum summed diversity, ties to lower id
                // (over the board-posted candidate set).
                let scan_spread = cluster
                    .alive()
                    .filter(|s| {
                        !existing.contains(&s.id)
                            && s.storage_free() >= size
                            && board.price_of(s.id).is_some()
                    })
                    .map(|s| {
                        let gain: u32 = existing
                            .iter()
                            .filter_map(|id| cluster.get(*id))
                            .map(|e| u32::from(skute_geo::diversity(&e.location, &s.location)))
                            .sum();
                        (s.id, gain)
                    })
                    .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
                    .map(|(id, _)| id);
                assert_eq!(
                    index.max_spread(&ctx, &existing, size),
                    scan_spread,
                    "spread: existing {existing:?} size {size}"
                );
            }
        }
    }

    #[test]
    fn non_conflicting_commit_keeps_speculation_alive() {
        let (topology, mut cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let existing = vec![ServerId(0)];
        let mut index = PlacementIndex::new();
        let mut walk = WalkScratch::default();
        let mut prox = skute_economy::ProximityCache::new();
        let spec = {
            let ctx = PlacementContext {
                cluster: &cluster,
                board: &board,
                topology: &topology,
                economy: &economy,
            };
            index.refresh(&ctx);
            index.economic_target_in(&ctx, &existing, 1 << 20, &[], None, &mut prox, &mut walk)
        };
        let (winner, _) = spec.unwrap();
        assert!(!walk.reads_all());
        let mut reads: Vec<ServerId> = walk.reads().to_vec();
        reads.sort_unstable();
        // A commit lands on a server the walk never read, only reserving
        // storage there (a replication target): the speculation survives
        // validation and still equals a fresh walk, bit for bit.
        let bystander = cluster
            .alive_ids()
            .into_iter()
            .find(|id| reads.binary_search(id).is_err() && *id != winner && !existing.contains(id))
            .expect("the bounded walk leaves most of 200 servers unread");
        {
            let s = cluster.get_mut(bystander).unwrap();
            let caps = s.capacities;
            assert!(s.usage.reserve_storage(&caps, 1 << 28));
        }
        let mut writes = SpecWriteSet::new();
        writes.record(bystander, true);
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let mut locs = Vec::new();
        assert!(validate_speculation(
            &ctx,
            &existing,
            1 << 20,
            &[],
            None,
            &mut prox,
            spec,
            &mut writes,
            &reads,
            false,
            &mut locs,
        ));
        assert_eq!(spec, economic_target(&ctx, &existing, 1 << 20, &[], None));
        // A commit on the frozen winner itself always conflicts.
        let mut writes = SpecWriteSet::new();
        writes.record(winner, true);
        assert!(!validate_speculation(
            &ctx,
            &existing,
            1 << 20,
            &[],
            None,
            &mut prox,
            spec,
            &mut writes,
            &reads,
            false,
            &mut locs,
        ));
        // A released-storage touch on an unread server forces the exact
        // re-score; the speculation is honored only when the re-score
        // proves the bystander still loses.
        let mut writes = SpecWriteSet::new();
        writes.record(bystander, false);
        let valid = validate_speculation(
            &ctx,
            &existing,
            1 << 20,
            &[],
            None,
            &mut prox,
            spec,
            &mut writes,
            &reads,
            false,
            &mut locs,
        );
        if valid {
            assert_eq!(spec, economic_target(&ctx, &existing, 1 << 20, &[], None));
        }
    }

    proptest::proptest! {
        /// The tentpole contract: under random commit interleavings, a
        /// speculation that passes read-set validation is **bitwise
        /// equal** to an immediate re-walk — no stale target can ever be
        /// honored. Mutations mirror what executed actions do to servers
        /// (storage reserved on targets, released on sources/suicides).
        #[test]
        fn prop_validated_speculation_equals_fresh_walk(
            server_picks in proptest::collection::vec((0u64..200, 50.0f64..200.0, 0.2f64..1.0), 4..24),
            existing_picks in proptest::collection::vec(0usize..24, 0..4),
            region_picks in proptest::collection::vec((0u64..200, 0.0f64..1e4), 0..4),
            size_exp in 0u32..31,
            cap_frac in proptest::option::of(0.1f64..3.0),
            mutations in proptest::collection::vec(
                (0usize..24, any::<bool>(), 0u64..(1u64 << 29)),
                0..10,
            ),
        ) {
            use proptest::prelude::*;
            let topology = Topology::paper();
            let mut cluster = Cluster::new();
            for &(loc_idx, cost, conf) in &server_picks {
                cluster.commission(
                    ServerSpec {
                        location: topology.server_at(loc_idx),
                        capacities: Capacities::paper(1 << 30, 1000.0),
                        monthly_cost: cost,
                        confidence: conf,
                    },
                    0,
                );
            }
            let n = cluster.len();
            let mut board = Board::new();
            board.begin_epoch(1);
            for s in cluster.alive() {
                board.post(s.id, s.monthly_cost / 720.0);
            }
            let existing: Vec<ServerId> =
                existing_picks.iter().map(|&i| ServerId((i % n) as u32)).collect();
            let regions: Vec<RegionQueries> = region_picks
                .iter()
                .map(|&(loc_idx, queries)| RegionQueries {
                    location: {
                        let l = topology.server_at(loc_idx);
                        Location::client_in_country(l.continent, l.country)
                    },
                    queries,
                })
                .collect();
            let partition_size = 1u64 << size_exp;
            let rent_below = cap_frac.map(|f| f * 100.0 / 720.0);
            let economy = EconomyConfig::paper();
            // The speculative walk against the frozen state, read set kept.
            let mut index = PlacementIndex::new();
            let mut walk = WalkScratch::default();
            let mut prox = skute_economy::ProximityCache::new();
            let spec = {
                let ctx = PlacementContext {
                    cluster: &cluster,
                    board: &board,
                    topology: &topology,
                    economy: &economy,
                };
                index.refresh(&ctx);
                index.economic_target_in(
                    &ctx, &existing, partition_size, &regions, rent_below, &mut prox, &mut walk,
                )
            };
            let mut reads: Vec<ServerId> = walk.reads().to_vec();
            reads.sort_unstable();
            // Random commit interleaving.
            let mut writes = SpecWriteSet::new();
            for &(pick, release, bytes) in &mutations {
                let id = ServerId((pick % n) as u32);
                let s = cluster.get_mut(id).unwrap();
                let caps = s.capacities;
                if release {
                    s.usage.release_storage(bytes);
                } else {
                    let _ = s.usage.reserve_storage(&caps, bytes);
                }
                writes.record(id, !release);
            }
            let ctx = PlacementContext {
                cluster: &cluster,
                board: &board,
                topology: &topology,
                economy: &economy,
            };
            let mut locs = Vec::new();
            let valid = validate_speculation(
                &ctx,
                &existing,
                partition_size,
                &regions,
                rent_below,
                &mut prox,
                spec,
                &mut writes,
                &reads,
                walk.reads_all(),
                &mut locs,
            );
            let fresh = economic_target(&ctx, &existing, partition_size, &regions, rent_below);
            if valid {
                prop_assert_eq!(spec, fresh, "validated speculation must equal a fresh walk");
            }
            if writes.is_empty() {
                prop_assert!(valid, "an empty write set conflicts with nothing");
            }
        }
    }

    #[test]
    fn determinism_under_ties() {
        let (topology, cluster, board) = setup();
        let economy = EconomyConfig::paper();
        let ctx = PlacementContext {
            cluster: &cluster,
            board: &board,
            topology: &topology,
            economy: &economy,
        };
        let a = economic_target(&ctx, &[ServerId(0)], 0, &[], None);
        let b = economic_target(&ctx, &[ServerId(0)], 0, &[], None);
        assert_eq!(a, b);
    }
}
