//! [`SkuteCloud`]: the self-managed, multi-ring key-value cloud.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use skute_cluster::{Board, Cluster, ServerId, ServerSpec};
use skute_economy::{proximity, ProximityCache, RegionQueries, RentModel};
use skute_geo::{Level, Location, RegionWeight, Topology};
use skute_ring::{PartitionId, RingId, VirtualRing};
use skute_store::{
    AntiEntropyUnion, FaultPlan, FaultStats, GrayMode, QuorumConfig, Record, ReplicaStore,
    StorageActivity, StoreError, Version,
};

use crate::app::{AppId, AppSpec, Application, AvailabilityLevel};
use crate::availability::{availability_of, threshold_for_replicas};
use crate::batch::{apply_deferred, BatchTask, DecisionBatcher, DeferredKind, DeferredOp};
use crate::config::SkuteConfig;
use crate::decision::{classify, clears_profit_hurdle, ActionCounts, Intent, VnodeSituation};
use crate::error::CoreError;
use crate::metrics::{AntiEntropyReport, EpochReport, RingReport, ScrubReport};
use crate::obs::CloudMetrics;
use crate::pipeline::{
    cached_availability, DecisionItem, DeliveryBatch, EpochPipeline, PreDecision,
};
use crate::placement::{
    economic_target, validate_speculation, PlacementContext, PlacementIndex, SpecWriteSet,
};
use crate::vnode::{PartitionState, Replica, VnodeId};

/// Runtime state of one virtual ring.
struct RingState {
    id: RingId,
    level: AvailabilityLevel,
    ring: VirtualRing,
    partitions: BTreeMap<PartitionId, PartitionState>,
    queries_offered_epoch: f64,
    queries_served_epoch: f64,
    queries_dropped_epoch: f64,
    /// Σ served × client-distance, for the mean query distance metric.
    distance_sum_epoch: f64,
}

impl RingState {
    fn begin_epoch(&mut self) {
        self.queries_offered_epoch = 0.0;
        self.queries_served_epoch = 0.0;
        self.queries_dropped_epoch = 0.0;
        self.distance_sum_epoch = 0.0;
        for p in self.partitions.values_mut() {
            p.begin_epoch();
        }
    }

    fn vnode_count(&self) -> usize {
        self.partitions.values().map(|p| p.replica_count()).sum()
    }
}

/// The Skute data cloud: physical servers, one virtual ring per application
/// availability level, the rent board, and the epoch-driven decentralized
/// optimization of §II.
///
/// Usage per epoch: [`SkuteCloud::begin_epoch`] (posts rents, resets
/// meters) → client traffic ([`SkuteCloud::put`]/[`SkuteCloud::get`]/
/// [`SkuteCloud::deliver_queries`]) → [`SkuteCloud::end_epoch`] (runs every
/// virtual node's decision process, splits overflowing partitions, and
/// returns an [`EpochReport`]).
pub struct SkuteCloud {
    config: SkuteConfig,
    /// Shared with the pipeline's parallel phases (jobs on the persistent
    /// pool must own their inputs; the topology is immutable, so one `Arc`
    /// serves every dispatch without a take/restore round trip).
    topology: Arc<Topology>,
    cluster: Cluster,
    board: Board,
    rent_model: RentModel,
    apps: Vec<Application>,
    rings: Vec<RingState>,
    epoch: u64,
    next_vnode: u64,
    write_seq: u64,
    rng: StdRng,
    insert_failures_epoch: u64,
    partitions_lost_epoch: u64,
    /// Actions executed outside end_epoch (emergency relocations).
    epoch_actions: ActionCounts,
    /// Rent-sorted candidate index behind every eq.-(3) target selection
    /// (unless `config.brute_force_placement` routes around it).
    index: PlacementIndex,
    /// Phase orchestration: the worker pool of the parallel plan passes
    /// plus their reusable per-shard scratch (see [`crate::pipeline`]).
    pipeline: EpochPipeline,
    /// Scratch buffers reused across epochs so the hot decision loop does
    /// not allocate on its common paths. The last tuple element is the
    /// vnode's slot in the pipeline's precomputation buffer.
    work_scratch: Vec<(usize, PartitionId, VnodeId, usize)>,
    servers_scratch: Vec<ServerId>,
    placed_scratch: Vec<(Location, f64)>,
    /// Per-replica `(query_capacity, simulated served)` pairs of the
    /// traffic reconciliation's feasibility peek.
    meter_scratch: Vec<(f64, f64)>,
    /// Servers mutated by the actions committed so far in the current
    /// decision commit pass (deduplicated, split by mutation direction) —
    /// the write set every later speculation is validated against.
    spec_touched: SpecWriteSet,
    /// Scratch for the validation's lazily built existing-replica
    /// location list.
    spec_locs: Vec<Location>,
    /// The open conflict-free batch of the decision commit (see
    /// [`crate::batch`]), reused across epochs. Always flushed empty
    /// before `economic_decisions` returns.
    batcher: DecisionBatcher,
    /// Optional observability sink (see [`crate::obs`]). Write-only from
    /// the cloud's point of view: nothing here is ever read back by a
    /// decision path, so trajectories are bitwise identical with metrics
    /// attached or absent.
    metrics: Option<Arc<CloudMetrics>>,
    /// Per-server gray modes of the current epoch (indexed by server id),
    /// refreshed at `begin_epoch` under a gray fault plan; empty while the
    /// plan has never been gray, so legacy runs pay nothing.
    gray_modes: Vec<GrayMode>,
    /// The continent currently severed from the rest of the cloud (from
    /// the fault plan, or forced via
    /// [`SkuteCloud::force_continent_partition`]).
    partition_cut: Option<u16>,
    /// Sim/operator override of the continental cut: `None` follows the
    /// fault plan, `Some(cut)` replaces whatever the plan derives.
    forced_cut: Option<Option<u16>>,
    /// Keys quorum reads found divergent, awaiting targeted read-repair
    /// at the next `end_epoch`. Interior mutability because the serving
    /// path is `&self`; drained sorted + deduplicated so the repair order
    /// is deterministic regardless of request interleaving.
    repair_queue: Mutex<Vec<(usize, Vec<u8>)>>,
}

/// One ring's query traffic for a batched
/// [`SkuteCloud::deliver_queries_multi`] call.
#[derive(Debug, Clone)]
pub struct TrafficBatch {
    /// Target application.
    pub app: AppId,
    /// Availability level (ring index within the application).
    pub level: u32,
    /// Queries offered to the ring this epoch.
    pub queries: f64,
    /// Client regions with normalized weights.
    pub regions: Vec<RegionWeight>,
}

/// Requested consistency of a serving-path read
/// ([`SkuteCloud::client_get_with`], `skute-server`'s `X-Consistency`
/// header).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadConsistency {
    /// Serve from the single highest-proximity reachable replica (the
    /// default; fastest, may observe a divergent replica).
    #[default]
    One,
    /// Read ⌈(k+1)/2⌉ replicas, resolve by last-writer-wins, and schedule
    /// read-repair for every stale replica observed. Together with the
    /// write path's `w = ⌊k/2⌋ + 1` ack requirement, `r + w > k`
    /// guarantees a quorum read always sees every acknowledged write.
    Quorum,
}

impl ReadConsistency {
    /// Stable lowercase name (the `X-Consistency` header value).
    pub fn as_str(self) -> &'static str {
        match self {
            ReadConsistency::One => "one",
            ReadConsistency::Quorum => "quorum",
        }
    }
}

impl fmt::Display for ReadConsistency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for ReadConsistency {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "one" | "1" => Ok(ReadConsistency::One),
            "quorum" => Ok(ReadConsistency::Quorum),
            other => Err(format!(
                "unknown read consistency {other:?} (expected one|quorum)"
            )),
        }
    }
}

/// The result of a proximity-routed [`SkuteCloud::client_get`]: the value
/// (if any), which server served it, and that server's eq.-(4) weight for
/// the requesting client.
#[derive(Debug, Clone)]
pub struct ClientRead {
    /// The live value under the key (`None` for absent keys and
    /// tombstones).
    pub value: Option<Bytes>,
    /// The replica server the read was routed to (for quorum reads, the
    /// highest-proximity replica that held the winning record).
    pub served_by: ServerId,
    /// The serving server's eq.-(4) proximity weight for this client
    /// (1.0 when no client location was given).
    pub proximity: f64,
    /// True when the requested consistency could not be met: no replica
    /// was reachable (consistency `One`) or fewer than ⌈(k+1)/2⌉ replicas
    /// were reachable (consistency `Quorum`) and the read was served
    /// best-effort from what remained.
    pub degraded: bool,
    /// Replica stores consulted to answer the read.
    pub replicas_read: usize,
    /// Stale replicas observed by a quorum read and enqueued for
    /// read-repair at the next epoch close.
    pub repairs_scheduled: usize,
}

impl SkuteCloud {
    /// Builds a cloud over an existing cluster.
    ///
    /// # Panics
    /// Panics if the config is invalid (see [`SkuteConfig::validate`]).
    pub fn new(config: SkuteConfig, topology: Topology, cluster: Cluster) -> Self {
        config.validate();
        let rent_model = RentModel::new(config.economy.alpha, config.economy.beta);
        let threads = config.threads;
        let mut cloud = Self {
            rng: StdRng::seed_from_u64(config.seed),
            config,
            topology: Arc::new(topology),
            cluster,
            board: Board::new(),
            rent_model,
            apps: Vec::new(),
            rings: Vec::new(),
            epoch: 0,
            next_vnode: 0,
            write_seq: 0,
            insert_failures_epoch: 0,
            partitions_lost_epoch: 0,
            epoch_actions: ActionCounts::default(),
            index: PlacementIndex::new(),
            pipeline: EpochPipeline::new(threads),
            work_scratch: Vec::new(),
            servers_scratch: Vec::new(),
            placed_scratch: Vec::new(),
            meter_scratch: Vec::new(),
            spec_touched: SpecWriteSet::new(),
            spec_locs: Vec::new(),
            batcher: DecisionBatcher::default(),
            metrics: None,
            gray_modes: Vec::new(),
            partition_cut: None,
            forced_cut: None,
            repair_queue: Mutex::new(Vec::new()),
        };
        cloud.post_prices();
        cloud
    }

    /// The current epoch (0 before the first [`SkuteCloud::begin_epoch`]).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The cloud configuration.
    pub fn config(&self) -> &SkuteConfig {
        &self.config
    }

    /// The geographic topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The physical cluster (read-only; lifecycle goes through
    /// [`SkuteCloud::add_server`]/[`SkuteCloud::retire_server`]).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The rent board of the current epoch.
    pub fn board(&self) -> &Board {
        &self.board
    }

    /// The epoch pipeline (worker budget of the parallel phases).
    pub fn pipeline(&self) -> &EpochPipeline {
        &self.pipeline
    }

    /// Attaches an observability sink: subsequent epochs record phase
    /// timings and per-epoch counters into it. Attaching (or detaching)
    /// metrics never changes the trajectory — the sink is write-only.
    pub fn set_metrics(&mut self, metrics: Arc<CloudMetrics>) {
        self.metrics = Some(metrics);
    }

    /// The attached observability sink, if any.
    pub fn metrics(&self) -> Option<&Arc<CloudMetrics>> {
        self.metrics.as_ref()
    }

    /// Refreshes the fleet-wide storage gauges (LSM engine activity and
    /// fault recoveries) in the attached sink by walking every replica.
    /// Intended at scrape/snapshot time, not per epoch; a no-op without an
    /// attached sink or under the mem backend (all gauges stay zero).
    pub fn refresh_storage_metrics(&self) {
        let Some(metrics) = &self.metrics else {
            return;
        };
        let mut activity = StorageActivity::default();
        let mut faults = FaultStats::default();
        for ring in &self.rings {
            for p in ring.partitions.values() {
                for r in &p.replicas {
                    if let Some(a) = r.store.activity() {
                        activity.absorb(&a);
                    }
                    if let Some(f) = r.store.fault_stats() {
                        faults.absorb(&f);
                    }
                }
            }
        }
        metrics.set_storage_totals(&activity, &faults);
    }

    /// Registered applications.
    pub fn applications(&self) -> &[Application] {
        &self.apps
    }

    // ------------------------------------------------------------------
    // Application management
    // ------------------------------------------------------------------

    /// Registers an application: calibrates one availability threshold per
    /// level against the topology, creates one virtual ring per level and
    /// seeds every partition with a single replica on a random alive server
    /// ("at startup … each partition is represented by a virtual node",
    /// §III-A). The replication process of Fig. 2 then grows each partition
    /// to its SLA replica count over the following epochs.
    pub fn create_application(&mut self, spec: AppSpec) -> Result<AppId, CoreError> {
        if spec.levels.is_empty() {
            return Err(CoreError::UnknownLevel);
        }
        if self.cluster.alive_count() == 0 {
            return Err(CoreError::EmptyCluster);
        }
        let app_id = AppId(self.apps.len() as u32);
        let mut levels = Vec::with_capacity(spec.levels.len());
        for (level_idx, level_spec) in spec.levels.iter().enumerate() {
            assert!(
                level_spec.replicas >= 1,
                "an SLA needs at least one replica"
            );
            assert!(
                level_spec.partitions >= 1,
                "a ring needs at least one partition"
            );
            let threshold = threshold_for_replicas(
                &self.topology,
                level_spec.replicas,
                self.config.availability_frac,
            );
            let quorum = level_spec
                .quorum
                .unwrap_or_else(|| QuorumConfig::availability(level_spec.replicas));
            let level = AvailabilityLevel {
                target_replicas: level_spec.replicas,
                threshold,
                quorum,
            };
            levels.push(level);
            let ring_id = RingId::new(app_id.0, level_idx as u32);
            let ring = VirtualRing::with_hasher(
                ring_id,
                level_spec.partitions,
                skute_ring::KeyHasher::with_seed(
                    u64::from(ring_id.app) << 32 | u64::from(ring_id.level),
                ),
            );
            let mut partitions = BTreeMap::new();
            for p in ring.partitions() {
                let mut state = PartitionState::new(p.id, 1.0);
                state.synthetic_bytes = level_spec.initial_partition_bytes;
                let server = self.seed_server(level_spec.initial_partition_bytes)?;
                let mut replica = Replica::new(
                    self.alloc_vnode(),
                    server,
                    self.config.economy.decision_window,
                    self.epoch,
                );
                replica.store =
                    ReplicaStore::open_with(self.config.backend, self.config.fault_plan);
                state.replicas.push(replica);
                partitions.insert(p.id, state);
            }
            self.rings.push(RingState {
                id: ring_id,
                level,
                ring,
                partitions,
                queries_offered_epoch: 0.0,
                queries_served_epoch: 0.0,
                queries_dropped_epoch: 0.0,
                distance_sum_epoch: 0.0,
            });
        }
        self.apps.push(Application {
            id: app_id,
            name: spec.name,
            levels,
        });
        Ok(app_id)
    }

    /// Assigns popularity weights to the partitions of one ring, in ring
    /// order (the paper draws them from Pareto(1, 50)).
    pub fn assign_popularity(
        &mut self,
        app: AppId,
        level: u32,
        mut f: impl FnMut(usize) -> f64,
    ) -> Result<(), CoreError> {
        let ring_idx = self.ring_index(app, level)?;
        let ids = self.rings[ring_idx].ring.partition_ids();
        for (i, pid) in ids.iter().enumerate() {
            if let Some(p) = self.rings[ring_idx].partitions.get_mut(pid) {
                p.popularity = f(i).max(0.0);
            }
        }
        Ok(())
    }

    /// Partition ids of one ring, in ring order.
    pub fn partition_ids(&self, app: AppId, level: u32) -> Result<Vec<PartitionId>, CoreError> {
        Ok(self.rings[self.ring_index(app, level)?]
            .ring
            .partition_ids())
    }

    /// The servers hosting replicas of a partition.
    pub fn replica_servers(
        &self,
        app: AppId,
        level: u32,
        pid: PartitionId,
    ) -> Result<Vec<ServerId>, CoreError> {
        let ring = &self.rings[self.ring_index(app, level)?];
        ring.partitions
            .get(&pid)
            .map(|p| p.replica_servers())
            .ok_or(CoreError::NoPlacement)
    }

    /// Total virtual nodes of one ring.
    pub fn ring_vnodes(&self, app: AppId, level: u32) -> Result<usize, CoreError> {
        Ok(self.rings[self.ring_index(app, level)?].vnode_count())
    }

    /// Logical size of one replica of a partition (synthetic bytes plus the
    /// largest materialized store).
    pub fn partition_size(
        &self,
        app: AppId,
        level: u32,
        pid: PartitionId,
    ) -> Result<u64, CoreError> {
        let ring = &self.rings[self.ring_index(app, level)?];
        ring.partitions
            .get(&pid)
            .map(|p| p.size_bytes())
            .ok_or(CoreError::NoPlacement)
    }

    /// Per-replica storage footprints of a partition: for every replica,
    /// the hosting server and the exact bytes it is charged for (synthetic
    /// bytes plus that replica's own store). The sum of footprints across
    /// all partitions of all rings equals the cluster's used storage —
    /// the accounting invariant the integration tests verify.
    pub fn replica_footprints(
        &self,
        app: AppId,
        level: u32,
        pid: PartitionId,
    ) -> Result<Vec<(ServerId, u64)>, CoreError> {
        let ring = &self.rings[self.ring_index(app, level)?];
        let p = ring.partitions.get(&pid).ok_or(CoreError::NoPlacement)?;
        Ok(p.replicas
            .iter()
            .map(|r| (r.server, p.synthetic_bytes + r.store.logical_bytes()))
            .collect())
    }

    /// Deliberately corrupts the on-disk state of one replica of a
    /// partition (fault-injection hook: forges persistent corruption for
    /// [`SkuteCloud::scrub_quarantined`] to detect). Flushes the replica's
    /// memtable first so a durable run exists to damage. Returns `true`
    /// when bytes were actually flipped — `false` for the mem oracle or an
    /// empty replica.
    pub fn corrupt_replica(
        &mut self,
        app: AppId,
        level: u32,
        pid: PartitionId,
        replica: usize,
    ) -> Result<bool, CoreError> {
        let ring_idx = self.ring_index(app, level)?;
        let p = self.rings[ring_idx]
            .partitions
            .get_mut(&pid)
            .ok_or(CoreError::NoPlacement)?;
        let r = p.replicas.get_mut(replica).ok_or(CoreError::NoPlacement)?;
        r.store.flush();
        Ok(r.store.corrupt_newest_run())
    }

    /// Fleet-wide injected-fault counters of one ring: the sum of every
    /// replica store's [`FaultStats`]. Observability only — under the mem
    /// oracle (no IO path to fault) all counters are zero.
    pub fn fault_stats(&self, app: AppId, level: u32) -> Result<FaultStats, CoreError> {
        let ring = &self.rings[self.ring_index(app, level)?];
        let mut total = FaultStats::default();
        for p in ring.partitions.values() {
            for r in &p.replicas {
                if let Some(stats) = r.store.fault_stats() {
                    total.absorb(&stats);
                }
            }
        }
        Ok(total)
    }

    // ------------------------------------------------------------------
    // Epoch lifecycle
    // ------------------------------------------------------------------

    /// Opens a new epoch: feeds utilization into the marginal-price
    /// estimators, posts eq.-(1) rents on the board, and resets all
    /// per-epoch meters and accumulators.
    pub fn begin_epoch(&mut self) {
        self.epoch += 1;
        // Feed utilization observed during the epoch that just closed.
        for s in self.cluster.alive_mut() {
            let util = s.utilization();
            s.marginal_price.observe(util);
        }
        self.refresh_gray_state();
        self.post_prices();
        self.cluster.begin_epoch();
        for ring in &mut self.rings {
            ring.begin_epoch();
        }
        self.insert_failures_epoch = 0;
        self.partitions_lost_epoch = 0;
        self.epoch_actions = ActionCounts::default();
    }

    /// Re-derives per-server gray modes and the continental cut for the
    /// new epoch and feeds one health sample per alive server into the
    /// confidence EWMA. A strict no-op when the fault plan has never been
    /// gray and no cut was ever forced, so legacy same-seed trajectories
    /// stay byte-identical. Everything here is sequential, in ascending
    /// server-id order, and a pure function of `(plan, epoch)` — gray
    /// trajectories are therefore invariant across thread counts and
    /// storage backends.
    fn refresh_gray_state(&mut self) {
        let plan = self.config.fault_plan;
        let continents = self.topology.fanout(Level::Continent);
        let cut = match self.forced_cut {
            Some(forced) => forced,
            None => plan.partitioned_continent(self.epoch, continents),
        };
        let active = plan.gray_failures() || cut.is_some();
        if !active && self.gray_modes.is_empty() && self.partition_cut.is_none() {
            return;
        }
        self.partition_cut = cut;
        self.gray_modes.clear();
        self.gray_modes
            .resize(self.cluster.len(), GrayMode::Healthy);
        let (mut min_bp, mut sum, mut alive, mut degraded) = (i64::MAX, 0.0f64, 0u64, 0i64);
        for idx in 0..self.gray_modes.len() {
            let id = ServerId(idx as u32);
            let mode = plan.gray_mode(idx as u64, self.epoch);
            self.gray_modes[idx] = mode;
            let Some(server) = self.cluster.get_mut(id) else {
                continue;
            };
            if !server.is_alive() {
                continue;
            }
            let mut sample = mode.health_sample();
            if cut == Some(server.location.continent) {
                // A cut continent is unreachable from the majority side no
                // matter how healthy its servers are individually.
                sample = sample.min(0.1);
            }
            server.observe_health(sample);
            if mode.is_degraded() || cut == Some(server.location.continent) {
                degraded += 1;
            }
            let bp = (server.confidence * 10_000.0).round() as i64;
            min_bp = min_bp.min(bp);
            sum += server.confidence;
            alive += 1;
        }
        // Confidences moved, so every memoized eq.-(2) availability is
        // stale. Membership is untouched: clear caches without bumping
        // membership versions (speculative precomputations stay valid).
        for ring in &mut self.rings {
            for p in ring.partitions.values_mut() {
                p.note_confidence_changed();
            }
        }
        if let Some(m) = &self.metrics {
            if alive > 0 {
                m.confidence_min_bp.set(min_bp);
                m.confidence_mean_bp
                    .set((sum / alive as f64 * 10_000.0).round() as i64);
            }
            m.gray_degraded_servers.set(degraded);
            m.partition_cut_continent
                .set(cut.map_or(-1, i64::from));
        }
    }

    /// The gray mode `server` runs under this epoch ([`GrayMode::Healthy`]
    /// outside gray fault plans).
    pub fn gray_mode_of(&self, server: ServerId) -> GrayMode {
        self.gray_modes
            .get(server.0 as usize)
            .copied()
            .unwrap_or_default()
    }

    /// The continent currently severed from the rest of the cloud, if any.
    pub fn partitioned_continent(&self) -> Option<u16> {
        self.partition_cut
    }

    /// Replaces the fault plan mid-run (CI injects a gray plan into a
    /// serving cloud this way). Gray modes and the continental cut apply
    /// from the next [`SkuteCloud::begin_epoch`]; storage-fault families
    /// only affect stores opened afterwards.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.config.fault_plan = plan;
    }

    /// Overrides the fault plan's continental cut from the next
    /// [`SkuteCloud::begin_epoch`] on: `Some(c)` severs continent `c`,
    /// `None` forces the cut healed (even under a partition plan). The
    /// sim's partition events route here.
    pub fn force_continent_partition(&mut self, cut: Option<u16>) {
        self.forced_cut = Some(cut);
    }

    fn post_prices(&mut self) {
        self.board.begin_epoch(self.epoch);
        let prices: Vec<(ServerId, f64)> = self
            .cluster
            .alive()
            .map(|s| (s.id, self.rent_model.price_server(s)))
            .collect();
        for (id, p) in prices {
            self.board.post(id, p);
        }
    }

    // ------------------------------------------------------------------
    // Server lifecycle
    // ------------------------------------------------------------------

    /// Commissions a new server mid-epoch; its rent is posted immediately so
    /// the decision phase of this very epoch can already use it.
    pub fn add_server(&mut self, spec: ServerSpec) -> ServerId {
        let id = self.cluster.commission(spec, self.epoch);
        let price = self
            .cluster
            .get(id)
            .map(|s| self.rent_model.price_server(s))
            .unwrap_or_default();
        self.board.post(id, price);
        id
    }

    /// Retires (fails) a server: every replica it hosted disappears.
    /// Partitions that lose their last replica are counted as lost and
    /// reseeded empty on a random alive server.
    pub fn retire_server(&mut self, id: ServerId) {
        self.cluster.retire(id, self.epoch);
        self.board.withdraw(id);
        let window = self.config.economy.decision_window;
        let epoch = self.epoch;
        let mut reseeds: Vec<(usize, PartitionId)> = Vec::new();
        for (ri, ring) in self.rings.iter_mut().enumerate() {
            for (pid, p) in ring.partitions.iter_mut() {
                let before = p.replicas.len();
                p.replicas.retain(|r| r.server != id);
                if p.replicas.len() != before {
                    p.note_membership_changed();
                }
                if before > 0 && p.replicas.is_empty() {
                    reseeds.push((ri, *pid));
                }
            }
        }
        for (ri, pid) in reseeds {
            self.partitions_lost_epoch += 1;
            // The data is gone; restart the partition empty so the ring
            // keeps covering its key range.
            if let Ok(server) = self.seed_server(0) {
                let vid = self.alloc_vnode();
                let backend = self.config.backend;
                let plan = self.config.fault_plan;
                if let Some(p) = self.rings[ri].partitions.get_mut(&pid) {
                    p.synthetic_bytes = 0;
                    let mut replica = Replica::new(vid, server, window, epoch);
                    replica.store = ReplicaStore::open_with(backend, plan);
                    p.replicas.push(replica);
                    p.note_membership_changed();
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Client API
    // ------------------------------------------------------------------

    /// Writes a key-value pair into an application's ring.
    pub fn put(
        &mut self,
        app: AppId,
        level: u32,
        key: &[u8],
        value: impl Into<Bytes>,
    ) -> Result<(), CoreError> {
        let version = self.next_version();
        self.write_record(app, level, key, Record::put(value.into(), version))
    }

    /// Deletes a key (writes a tombstone).
    pub fn delete(&mut self, app: AppId, level: u32, key: &[u8]) -> Result<(), CoreError> {
        let version = self.next_version();
        self.write_record(app, level, key, Record::tombstone(version))
    }

    /// Reads a key: merges the first `r` replica responses (LWW).
    pub fn get(&mut self, app: AppId, level: u32, key: &[u8]) -> Result<Option<Bytes>, CoreError> {
        let ring_idx = self.ring_index(app, level)?;
        let pid = self.rings[ring_idx].ring.route(key);
        let quorum = self.rings[ring_idx].level.quorum;
        let partition = self.rings[ring_idx]
            .partitions
            .get(&pid)
            .ok_or(CoreError::NoPlacement)?;
        if partition.replicas.is_empty() {
            return Err(CoreError::Store(StoreError::NoReplicas));
        }
        let r_eff = quorum.r.min(partition.replicas.len());
        let responses: Vec<Option<Record>> = partition
            .replicas
            .iter()
            .take(r_eff)
            .map(|replica| replica.store.get(key))
            .collect();
        let merged = Record::merge_all(responses.into_iter().flatten());
        Ok(merged.and_then(|r| r.value))
    }

    /// Serving-path read: routes `key` through the ring and picks the
    /// **alive** replica with the highest eq.-(4) proximity weight for
    /// `client` (ties break to the earliest replica; no client location
    /// means every weight is the neutral 1.0, so the first alive replica
    /// serves). Falls back to the LWW merge across all replicas when the
    /// chosen replica misses — a divergent replica must not turn a stored
    /// key into a spurious 404.
    ///
    /// Read-only (`&self`): the serving path never touches capacity
    /// meters or any decision input, so interleaving client reads with
    /// epoch ticks cannot perturb trajectories.
    pub fn client_get(
        &self,
        app: AppId,
        level: u32,
        key: &[u8],
        client: Option<Location>,
    ) -> Result<ClientRead, CoreError> {
        self.client_get_with(app, level, key, client, ReadConsistency::One)
    }

    /// True when a client at `client` can reach the replica on `server`
    /// at `location` under the current gray modes and continental cut. A
    /// client with no stated location is assumed to sit outside the cut
    /// continent (the majority side).
    fn replica_reachable(
        &self,
        server: ServerId,
        location: &Location,
        client: Option<Location>,
    ) -> bool {
        if matches!(
            self.gray_modes.get(server.0 as usize),
            Some(GrayMode::Partitioned)
        ) {
            return false;
        }
        match self.partition_cut {
            Some(cut) => {
                let client_in_cut = client.is_some_and(|c| c.continent == cut);
                (location.continent == cut) == client_in_cut
            }
            None => true,
        }
    }

    /// [`SkuteCloud::client_get`] with an explicit [`ReadConsistency`].
    ///
    /// `Quorum` reads ⌈(k+1)/2⌉ reachable replicas (highest eq.-(4)
    /// proximity first), resolves them by last-writer-wins, and enqueues
    /// every stale replica observed for targeted read-repair at the next
    /// [`SkuteCloud::end_epoch`]. When fewer than a quorum of replicas is
    /// reachable — a continental cut, gray-partitioned servers — the read
    /// degrades gracefully to the best reachable subset (or the local
    /// stores outright when nothing is reachable) and is flagged
    /// [`ClientRead::degraded`].
    pub fn client_get_with(
        &self,
        app: AppId,
        level: u32,
        key: &[u8],
        client: Option<Location>,
        consistency: ReadConsistency,
    ) -> Result<ClientRead, CoreError> {
        let ring_idx = self.ring_index(app, level)?;
        let pid = self.rings[ring_idx].ring.route(key);
        let partition = self.rings[ring_idx]
            .partitions
            .get(&pid)
            .ok_or(CoreError::NoPlacement)?;
        if partition.replicas.is_empty() {
            return Err(CoreError::Store(StoreError::NoReplicas));
        }
        let regions = client.map(|location| {
            [RegionQueries {
                location,
                queries: 1.0,
            }]
        });
        // Alive, reachable replicas with their proximity weights, in
        // replica order.
        let mut reachable: Vec<(usize, f64)> = Vec::new();
        for (i, replica) in partition.replicas.iter().enumerate() {
            let Some(server) = self.cluster.get_alive(replica.server) else {
                continue;
            };
            if !self.replica_reachable(replica.server, &server.location, client) {
                continue;
            }
            let g = match &regions {
                Some(r) => proximity(r, &server.location, &self.topology),
                None => 1.0,
            };
            reachable.push((i, g));
        }
        let read = match consistency {
            ReadConsistency::One => {
                // Highest proximity wins, ties break to the earliest
                // replica — exactly the pre-quorum routing.
                let mut best: Option<(usize, f64)> = None;
                for &(i, g) in &reachable {
                    if best.is_none_or(|(_, bg)| g > bg) {
                        best = Some((i, g));
                    }
                }
                // Nothing reachable: serve from the first replica's store
                // anyway (the data still exists; liveness is the repair
                // pass's problem, not the read path's) and flag the read.
                let degraded = best.is_none();
                let (idx, g) = best.unwrap_or((0, 1.0));
                let chosen = &partition.replicas[idx];
                let value = match chosen.store.get(key) {
                    Some(record) => record.value,
                    None => {
                        let responses = partition.replicas.iter().map(|r| r.store.get(key));
                        Record::merge_all(responses.flatten()).and_then(|r| r.value)
                    }
                };
                ClientRead {
                    value,
                    served_by: chosen.server,
                    proximity: g,
                    degraded,
                    replicas_read: 1,
                    repairs_scheduled: 0,
                }
            }
            ReadConsistency::Quorum => {
                let k = partition.replicas.len();
                let need = k / 2 + 1;
                let degraded = reachable.len() < need;
                // Read set: the `need` highest-proximity reachable
                // replicas (ties to the earliest), or every replica when
                // nothing is reachable at all.
                let mut read_set: Vec<(usize, f64)> = if reachable.is_empty() {
                    (0..k).map(|i| (i, 1.0)).collect()
                } else {
                    reachable.clone()
                };
                read_set.sort_by(|a, b| {
                    b.1.partial_cmp(&a.1)
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                read_set.truncate(need.max(1));
                let responses: Vec<(usize, f64, Option<Record>)> = read_set
                    .iter()
                    .map(|&(i, g)| (i, g, partition.replicas[i].store.get(key)))
                    .collect();
                let winner = Record::merge_all(responses.iter().filter_map(|(_, _, r)| r.clone()));
                // Every response below the winning version is stale;
                // schedule the key for targeted repair.
                let repairs_scheduled = match &winner {
                    Some(w) => responses
                        .iter()
                        .filter(|(_, _, r)| match r {
                            Some(rec) => rec.version < w.version,
                            None => true,
                        })
                        .count(),
                    None => 0,
                };
                if repairs_scheduled > 0 {
                    self.repair_queue
                        .lock()
                        .expect("read-repair queue poisoned")
                        .push((ring_idx, key.to_vec()));
                }
                // Serve from the highest-proximity replica that held the
                // winning record (read_set is already proximity-sorted).
                let (idx, g) = responses
                    .iter()
                    .find(|(_, _, r)| match (&winner, r) {
                        (Some(w), Some(rec)) => rec.version == w.version,
                        (None, None) => true,
                        _ => false,
                    })
                    .map(|&(i, g, _)| (i, g))
                    .unwrap_or((read_set[0].0, read_set[0].1));
                let value = match winner {
                    Some(record) => record.value,
                    // A degraded quorum can miss the key entirely while an
                    // unreachable replica still holds it; fall back to the
                    // local LWW merge rather than inventing a 404.
                    None if degraded => {
                        let responses = partition.replicas.iter().map(|r| r.store.get(key));
                        Record::merge_all(responses.flatten()).and_then(|r| r.value)
                    }
                    None => None,
                };
                ClientRead {
                    value,
                    served_by: partition.replicas[idx].server,
                    proximity: g,
                    degraded,
                    replicas_read: responses.len(),
                    repairs_scheduled,
                }
            }
        };
        if let Some(m) = &self.metrics {
            if consistency == ReadConsistency::Quorum {
                m.quorum_reads.inc();
                if read.repairs_scheduled > 0 {
                    m.quorum_divergent.inc();
                }
                m.read_repairs_scheduled.add(read.repairs_scheduled as u64);
            }
            if read.degraded {
                m.degraded_reads.inc();
            }
        }
        Ok(read)
    }

    /// Ordered prefix scan over one ring: merges every partition's
    /// replicas version-dominantly (so divergent replicas cannot hide or
    /// resurrect entries), filters live records under `prefix`, and
    /// returns up to `limit` `(key, value)` pairs in key order
    /// (`limit = 0` means unbounded).
    pub fn scan(
        &self,
        app: AppId,
        level: u32,
        prefix: &[u8],
        limit: usize,
    ) -> Result<Vec<(Bytes, Bytes)>, CoreError> {
        let ring_idx = self.ring_index(app, level)?;
        let mut merged: BTreeMap<Bytes, Record> = BTreeMap::new();
        for partition in self.rings[ring_idx].partitions.values() {
            for replica in &partition.replicas {
                replica.store.for_each(&mut |key, record| {
                    if !key.starts_with(prefix) {
                        return;
                    }
                    match merged.get(key) {
                        Some(existing) if record.version <= existing.version => {}
                        _ => {
                            merged.insert(key.clone(), record.clone());
                        }
                    }
                });
            }
        }
        let mut out = Vec::new();
        for (key, record) in merged {
            if let Some(value) = record.value {
                out.push((key, value));
                if limit > 0 && out.len() >= limit {
                    break;
                }
            }
        }
        Ok(out)
    }

    /// Ingests a synthetic object: charges `logical_bytes` against every
    /// replica's server without materializing a payload.
    ///
    /// When a replica's server lacks space, that replica first attempts an
    /// immediate eq.-(3) migration to a server with room (the paper's claim
    /// is that the economy "balances the used storage efficiently and fast
    /// enough so that there are no data losses", §III-E — a write blocked on
    /// a full server is exactly the moment to rebalance). Only if the
    /// rebalance cannot free space does the insert **fail** (the Fig. 5
    /// metric); failures charge no server.
    pub fn ingest_synthetic(
        &mut self,
        app: AppId,
        level: u32,
        key: &[u8],
        logical_bytes: u64,
    ) -> Result<(), CoreError> {
        let ring_idx = self.ring_index(app, level)?;
        let pid = self.rings[ring_idx].ring.route(key);
        let partition = self.rings[ring_idx]
            .partitions
            .get(&pid)
            .ok_or(CoreError::NoPlacement)?;
        if partition.replicas.is_empty() {
            self.insert_failures_epoch += 1;
            return Err(CoreError::Store(StoreError::NoReplicas));
        }
        let blocked: Vec<usize> = partition
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| {
                self.cluster
                    .get_alive(r.server)
                    .is_none_or(|s| s.storage_free() < logical_bytes)
            })
            .map(|(i, _)| i)
            .collect();
        for idx in blocked {
            self.relocate_blocked_replica(ring_idx, pid, idx, logical_bytes);
        }
        let partition = self.rings[ring_idx]
            .partitions
            .get_mut(&pid)
            .ok_or(CoreError::NoPlacement)?;
        let servers = partition.replica_servers();
        let fits = servers.iter().all(|id| {
            self.cluster
                .get_alive(*id)
                .is_some_and(|s| s.storage_free() >= logical_bytes)
        });
        if !fits {
            self.insert_failures_epoch += 1;
            return Err(CoreError::Store(StoreError::CapacityExceeded));
        }
        for id in servers {
            if let Some(s) = self.cluster.get_mut(id) {
                let caps = s.capacities;
                let ok = s.usage.reserve_storage(&caps, logical_bytes);
                debug_assert!(ok, "pre-checked reservation cannot fail");
            }
        }
        partition.synthetic_bytes += logical_bytes;
        partition.write_bytes_epoch += logical_bytes;
        Ok(())
    }

    /// Anti-entropy pass over one ring: detects divergent replica stores
    /// with Merkle summaries (replicas can diverge when a full server
    /// rejects a write) and repairs them by installing the LWW union on
    /// every replica, with exact storage re-accounting.
    ///
    /// The union is built once per divergent partition and distributed to
    /// the divergent replicas: under the mem backend as a copy-on-write
    /// handle (every repaired replica shares one allocation until it next
    /// diverges), under the LSM backend by merging the union's entries
    /// into each replica's durable store. Partitions whose replicas are
    /// already identical (shared allocations, or all Merkle roots equal)
    /// are skipped outright and contribute to no counter; within a
    /// *divergent* partition, replicas that already hold the union are
    /// skipped without a writeback and counted in
    /// [`AntiEntropyReport::replicas_in_sync`]. A replica whose server
    /// cannot absorb the union's extra bytes is left divergent and counted
    /// as deferred (it will be retried after the economy rebalances).
    pub fn anti_entropy(&mut self, app: AppId, level: u32) -> Result<AntiEntropyReport, CoreError> {
        let ring_idx = self.ring_index(app, level)?;
        let hasher = self.rings[ring_idx].ring.hasher();
        let pids = self.rings[ring_idx].ring.partition_ids();
        let mut report = AntiEntropyReport::default();
        for pid in pids {
            let Some(range) = self.rings[ring_idx].ring.range_of(pid) else {
                continue;
            };
            let partition = match self.rings[ring_idx].partitions.get(&pid) {
                Some(p) if p.replicas.len() >= 2 => p,
                _ => continue,
            };
            // Replicas sharing one storage allocation are trivially in
            // sync: skip the Merkle pass entirely. (Mem replicas converge
            // to shared COW allocations; LSM replicas always own their
            // files and converge to equal Merkle roots instead.)
            if partition
                .replicas
                .windows(2)
                .all(|w| w[0].store.shares_storage_with(&w[1].store))
            {
                continue;
            }
            let roots: Vec<u64> = partition
                .replicas
                .iter()
                .map(|r| r.store.merkle_summary(hasher, range, 32).root())
                .collect();
            if roots.windows(2).all(|w| w[0] == w[1]) {
                continue;
            }
            // Build the LWW union of all replica stores, once.
            let union = {
                let mut union = partition.replicas[0].store.snapshot();
                for r in &partition.replicas[1..] {
                    r.store.merge_into(&mut union);
                }
                union
            };
            let union_bytes = union.logical_bytes();
            let union_root = skute_store::MerkleSummary::build(&union, hasher, range, 32).root();
            let union = AntiEntropyUnion::new(self.config.backend, union);
            let mut any_updated = false;
            for (idx, &root) in roots.iter().enumerate() {
                if root == union_root {
                    report.replicas_in_sync += 1;
                    continue;
                }
                let (server, old_bytes) = {
                    let r = &self.rings[ring_idx].partitions[&pid].replicas[idx];
                    (r.server, r.store.logical_bytes())
                };
                let ok = if union_bytes >= old_bytes {
                    self.cluster
                        .get_mut(server)
                        .map(|s| {
                            let caps = s.capacities;
                            s.usage.reserve_storage(&caps, union_bytes - old_bytes)
                        })
                        .unwrap_or(false)
                } else {
                    if let Some(s) = self.cluster.get_mut(server) {
                        s.usage.release_storage(old_bytes - union_bytes);
                    }
                    true
                };
                if ok {
                    let p = self.rings[ring_idx].partitions.get_mut(&pid).unwrap();
                    p.replicas[idx].store.install_union(&union);
                    report.replicas_updated += 1;
                    any_updated = true;
                } else {
                    report.replicas_deferred += 1;
                }
            }
            if any_updated {
                report.partitions_repaired += 1;
            }
        }
        Ok(report)
    }

    /// Storage scrub over one ring: verifies every replica store's on-disk
    /// checksums (a real re-read of every SSTable run under the LSM
    /// backend; the mem oracle is trivially healthy), quarantines replicas
    /// whose corruption survived the store's bounded read retries, and
    /// re-seeds each quarantined replica from the LWW union of its
    /// partition's **healthy** peers — a fresh store built through the
    /// same union installation the anti-entropy pass uses, with exact
    /// storage re-accounting. Rebuild copies are priced in **measured**
    /// bytes ([`ActionCounts::scrub_rebuilds`] /
    /// [`ActionCounts::measured_scrub_bytes`], observability-only —
    /// decisions and the trajectory never read them, so scrubbing cannot
    /// perturb determinism). A quarantined replica whose server cannot
    /// absorb the union's extra bytes is deferred; a partition whose every
    /// replica is quarantined has no healthy peer and is counted
    /// unrecoverable (its stores are left in place).
    pub fn scrub_quarantined(&mut self, app: AppId, level: u32) -> Result<ScrubReport, CoreError> {
        let ring_idx = self.ring_index(app, level)?;
        let pids = self.rings[ring_idx].ring.partition_ids();
        let mut report = ScrubReport::default();
        for pid in pids {
            let suspects: Vec<usize> = {
                let Some(partition) = self.rings[ring_idx].partitions.get_mut(&pid) else {
                    continue;
                };
                let mut suspects = Vec::new();
                for (idx, r) in partition.replicas.iter_mut().enumerate() {
                    report.replicas_scanned += 1;
                    if !r.store.verify() {
                        suspects.push(idx);
                    }
                }
                suspects
            };
            if suspects.is_empty() {
                continue;
            }
            report.replicas_quarantined += suspects.len();
            let partition = &self.rings[ring_idx].partitions[&pid];
            let healthy: Vec<usize> = (0..partition.replicas.len())
                .filter(|i| !suspects.contains(i))
                .collect();
            let Some((&first, rest)) = healthy.split_first() else {
                report.partitions_unrecoverable += 1;
                continue;
            };
            // LWW union of the healthy peers only — the corrupt stores
            // contribute nothing to the rebuild.
            let union = {
                let mut union = partition.replicas[first].store.snapshot();
                for &i in rest {
                    partition.replicas[i].store.merge_into(&mut union);
                }
                union
            };
            let union_bytes = union.logical_bytes();
            let union = AntiEntropyUnion::new(self.config.backend, union);
            for idx in suspects {
                let (server, old_bytes) = {
                    let r = &self.rings[ring_idx].partitions[&pid].replicas[idx];
                    (r.server, r.store.logical_bytes())
                };
                let ok = if union_bytes >= old_bytes {
                    self.cluster
                        .get_mut(server)
                        .map(|s| {
                            let caps = s.capacities;
                            s.usage.reserve_storage(&caps, union_bytes - old_bytes)
                        })
                        .unwrap_or(false)
                } else {
                    if let Some(s) = self.cluster.get_mut(server) {
                        s.usage.release_storage(old_bytes - union_bytes);
                    }
                    true
                };
                if !ok {
                    report.replicas_deferred += 1;
                    continue;
                }
                let mut fresh =
                    ReplicaStore::open_with(self.config.backend, self.config.fault_plan);
                fresh.install_union(&union);
                let measured = fresh.measured_transfer().unwrap_or(union_bytes);
                let p = self.rings[ring_idx].partitions.get_mut(&pid).unwrap();
                p.replicas[idx].store = fresh;
                report.replicas_rebuilt += 1;
                self.epoch_actions.scrub_rebuilds += 1;
                self.epoch_actions.measured_scrub_bytes += measured;
            }
        }
        Ok(report)
    }

    /// Emergency rebalance: replica `idx` of a partition sits on a server
    /// that cannot absorb `incoming` more bytes; migrate it (eq. 3, no rent
    /// cap — space beats price here) to a server that fits the partition
    /// plus the incoming write. Best-effort: bandwidth limits still apply.
    fn relocate_blocked_replica(
        &mut self,
        ring_idx: usize,
        pid: PartitionId,
        idx: usize,
        incoming: u64,
    ) {
        let Some(partition) = self.rings[ring_idx].partitions.get_mut(&pid) else {
            return;
        };
        if idx >= partition.replicas.len() {
            return;
        }
        let size = partition.synthetic_bytes + partition.replicas[idx].store.logical_bytes();
        self.servers_scratch.clear();
        self.servers_scratch
            .extend(partition.replicas.iter().map(|r| r.server));
        self.servers_scratch.remove(idx);
        let target = {
            let ctx = PlacementContext {
                cluster: &self.cluster,
                board: &self.board,
                topology: &self.topology,
                economy: &self.config.economy,
            };
            let PartitionState {
                region_queries,
                prox_cache,
                ..
            } = &mut *partition;
            select_target(
                &mut self.index,
                self.config.brute_force_placement,
                &ctx,
                &self.servers_scratch,
                size.saturating_add(incoming),
                region_queries,
                prox_cache,
                None,
            )
        };
        if let Some((target, _)) = target {
            let window = self.config.economy.decision_window;
            let epoch = self.epoch;
            let vid = VnodeId(self.next_vnode);
            let partition = self.rings[ring_idx].partitions.get_mut(&pid).unwrap();
            let source = partition.replicas[idx].server;
            if let Some(t) = exec_migration(&mut self.cluster, partition, idx, target) {
                self.epoch_actions.migrations += 1;
                self.epoch_actions.migrated_bytes += t.logical;
                self.epoch_actions.measured_migrated_bytes += t.measured;
                self.note_index(&[source, target]);
                return;
            }
            // Migration budget exhausted: fall back to the (3× larger)
            // replication budget — copy the replica to the target, then
            // drop the blocked copy.
            if let Some(t) =
                exec_replication(&mut self.cluster, partition, target, vid, window, epoch)
            {
                self.next_vnode += 1;
                exec_suicide(&mut self.cluster, partition, idx);
                self.epoch_actions.migrations += 1;
                self.epoch_actions.migrated_bytes += t.logical;
                self.epoch_actions.measured_migrated_bytes += t.measured;
                self.note_index(&[source, target]);
            }
        }
    }

    fn next_version(&mut self) -> Version {
        self.write_seq += 1;
        Version::new(self.epoch, self.write_seq, 0)
    }

    fn write_record(
        &mut self,
        app: AppId,
        level: u32,
        key: &[u8],
        record: Record,
    ) -> Result<(), CoreError> {
        let ring_idx = self.ring_index(app, level)?;
        let pid = self.rings[ring_idx].ring.route(key);
        let quorum = self.rings[ring_idx].level.quorum;
        let ring = &mut self.rings[ring_idx];
        let partition = ring
            .partitions
            .get_mut(&pid)
            .ok_or(CoreError::NoPlacement)?;
        if partition.replicas.is_empty() {
            self.insert_failures_epoch += 1;
            return Err(CoreError::Store(StoreError::NoReplicas));
        }
        let new_entry = key.len() as u64 + record.logical_size;
        let mut acks = 0usize;
        for replica in partition.replicas.iter_mut() {
            let old_entry = replica
                .store
                .get(key)
                .map(|r| key.len() as u64 + r.logical_size);
            let Some(server) = self.cluster.get_mut(replica.server) else {
                continue;
            };
            if !server.is_alive() {
                continue;
            }
            // Gray-degraded replicas ack no writes: read-only and
            // individually partitioned servers, and anything behind the
            // continental cut, silently miss the update and stay
            // divergent until read-repair or a scrub converges them. The
            // quorum ack check below still guarantees `w = ⌊k/2⌋ + 1`
            // healthy acks or a client-visible error — acknowledged
            // writes are never lost to gray servers.
            let gray_blocked = match self.gray_modes.get(replica.server.0 as usize) {
                Some(GrayMode::ReadOnly | GrayMode::Partitioned) => true,
                _ => self
                    .partition_cut
                    .is_some_and(|cut| server.location.continent == cut),
            };
            if gray_blocked {
                continue;
            }
            let caps = server.capacities;
            match old_entry {
                Some(old) if new_entry <= old => {
                    // Shrinking update always fits.
                    if replica.store.apply(key.to_vec(), record.clone()) {
                        server.usage.release_storage(old - new_entry);
                    }
                    acks += 1;
                }
                Some(old) => {
                    if server.usage.reserve_storage(&caps, new_entry - old) {
                        let applied = replica.store.apply(key.to_vec(), record.clone());
                        debug_assert!(applied, "fresh versions always dominate");
                        acks += 1;
                    }
                }
                None => {
                    if server.usage.reserve_storage(&caps, new_entry) {
                        let applied = replica.store.apply(key.to_vec(), record.clone());
                        debug_assert!(applied, "fresh versions always dominate");
                        acks += 1;
                    }
                }
            }
        }
        partition.write_bytes_epoch += record.logical_size;
        let w_eff = quorum.w.min(partition.replicas.len());
        if acks < w_eff {
            self.insert_failures_epoch += 1;
            return Err(CoreError::Store(StoreError::CapacityExceeded));
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Query traffic
    // ------------------------------------------------------------------

    /// Delivers an epoch's query traffic to one ring: `total_queries` are
    /// spread over partitions proportionally to their popularity, arrive
    /// from `regions` (normalized weights), and are answered by replicas
    /// proportionally to their client proximity `g`, spilling over when a
    /// server's query capacity saturates. Replica utility accrues per
    /// eq. (5).
    ///
    /// Equivalent to a one-element [`SkuteCloud::deliver_queries_multi`]
    /// call; batching every ring's traffic into one `multi` call runs all
    /// plan passes in a single pool dispatch.
    pub fn deliver_queries(
        &mut self,
        app: AppId,
        level: u32,
        total_queries: f64,
        regions: &[RegionWeight],
    ) -> Result<(), CoreError> {
        self.deliver_queries_multi(vec![TrafficBatch {
            app,
            level,
            queries: total_queries,
            regions: regions.to_vec(),
        }])
    }

    /// Delivers one epoch's query traffic to several rings at once,
    /// batching every ring's delivery **plan** pass into a single
    /// dispatch on the persistent worker pool, then committing:
    ///
    /// 1. a sequential **reconciliation** walks the rings in batch order
    ///    and each ring's partitions in ring order, validating every
    ///    partition's planned delivery events against the live per-server
    ///    query-capacity meters (a bit-exact simulation of the sequential
    ///    `serve_on` arithmetic). Spill-free partitions commit their
    ///    capacity movement from the plan; a partition whose events could
    ///    touch a saturating meter falls back to the original sequential
    ///    algorithm on the spot, in exactly the position the sequential
    ///    loop would have processed it;
    /// 2. a parallel **accrual** pass applies the per-replica query
    ///    counts and eq.-(5) utility of the spill-free partitions
    ///    (partition-local arithmetic on planned floats).
    ///
    /// The trajectory is therefore **bitwise identical** to
    /// [`SkuteConfig::sequential_traffic_commit`] mode — which routes
    /// step 1 entirely through the sequential algorithm and skips step 2
    /// — and to the pre-batching per-ring calls: delivery plans read no
    /// capacity meters, so batching cannot change any float.
    ///
    /// Batches are processed in order; batches addressing the same ring
    /// observe each other's committed traffic exactly like consecutive
    /// [`SkuteCloud::deliver_queries`] calls. A batch naming an unknown
    /// app or level fails the whole call before any traffic lands.
    pub fn deliver_queries_multi(&mut self, batches: Vec<TrafficBatch>) -> Result<(), CoreError> {
        // Resolve every ring up front: a bad batch fails the whole call
        // before any traffic lands.
        let mut resolved: Vec<(usize, TrafficBatch)> = Vec::with_capacity(batches.len());
        for b in batches {
            let ri = self.ring_index(b.app, b.level)?;
            resolved.push((ri, b));
        }
        // Batches targeting the same ring must observe each other's
        // committed traffic: split the call into waves of distinct rings,
        // processed in order (each wave is one plan dispatch).
        let mut wave: Vec<(usize, TrafficBatch)> = Vec::new();
        for (ri, b) in resolved {
            if wave.iter().any(|(wri, _)| *wri == ri) {
                let w = std::mem::take(&mut wave);
                self.deliver_wave(w);
            }
            wave.push((ri, b));
        }
        if !wave.is_empty() {
            self.deliver_wave(wave);
        }
        Ok(())
    }

    /// Plans and commits one wave of distinct-ring traffic batches.
    ///
    /// The reconciled (planned-event) commit only engages when the
    /// pipeline has workers to run the accrual pass on; an inline
    /// (`threads = 1`) pipeline plans in place over borrowed partitions —
    /// no map rebuilds, no context round trip — and commits through the
    /// sequential loop. Both routes are bitwise identical (asserted by the
    /// thread-matrix and commit-mode equivalence tests).
    fn deliver_wave(&mut self, wave: Vec<(usize, TrafficBatch)>) {
        let gamma = self.config.economy.utility_per_query;
        let planned_commit = !self.config.sequential_traffic_commit && self.pipeline.threads() > 1;
        let plan_start = self.obs_start();
        if self.pipeline.threads() == 1 {
            // Single-thread fast path: identical per-partition arithmetic,
            // run in place.
            let mut ring_indices: Vec<usize> = Vec::with_capacity(wave.len());
            for (ri, b) in wave {
                if b.queries <= 0.0 {
                    continue;
                }
                let total_pop: f64 = self.rings[ri]
                    .partitions
                    .values()
                    .map(|p| p.popularity)
                    .sum();
                if total_pop <= 0.0 {
                    continue;
                }
                let Self {
                    rings,
                    cluster,
                    topology,
                    ..
                } = self;
                for part in rings[ri].partitions.values_mut() {
                    crate::pipeline::plan_one_delivery(
                        part, cluster, topology, &b.regions, b.queries, total_pop, false,
                    );
                }
                ring_indices.push(ri);
            }
            self.obs_phase(plan_start, |m| &m.phase_traffic_plan);
            let commit_start = self.obs_start();
            for ri in ring_indices {
                self.commit_ring_traffic(ri, gamma, true);
            }
            self.obs_phase(commit_start, |m| &m.phase_traffic_commit);
            return;
        }
        let mut batches: Vec<DeliveryBatch> = Vec::with_capacity(wave.len());
        for (ri, b) in wave {
            if b.queries <= 0.0 {
                continue;
            }
            let total_pop: f64 = self.rings[ri]
                .partitions
                .values()
                .map(|p| p.popularity)
                .sum();
            if total_pop <= 0.0 {
                continue;
            }
            // Move the ring's partitions out for the owned-task dispatch;
            // they come back in the same ascending order.
            let parts: Vec<(PartitionId, PartitionState)> =
                std::mem::take(&mut self.rings[ri].partitions)
                    .into_iter()
                    .collect();
            batches.push(DeliveryBatch {
                ring_idx: ri,
                total_queries: b.queries,
                total_pop,
                regions: b.regions,
                parts,
            });
        }
        if batches.is_empty() {
            return;
        }
        // Plan pass: one pool dispatch across every ring of the wave.
        let cluster = std::mem::take(&mut self.cluster);
        let (cluster, batches) = self.pipeline.plan_delivery_multi(
            cluster,
            Arc::clone(&self.topology),
            batches,
            planned_commit,
        );
        self.cluster = cluster;
        let ring_indices: Vec<usize> = batches.iter().map(|b| b.ring_idx).collect();
        for batch in batches {
            let ri = batch.ring_idx;
            self.rings[ri].partitions = batch.parts.into_iter().collect();
        }
        // Commit: sequential reconciliation in batch/ring order, then the
        // parallel accrual of the spill-free partitions.
        self.obs_phase(plan_start, |m| &m.phase_traffic_plan);
        let commit_start = self.obs_start();
        for ri in ring_indices {
            self.commit_ring_traffic(ri, gamma, !planned_commit);
        }
        if planned_commit {
            self.apply_pending_accrual(gamma);
        }
        self.obs_phase(commit_start, |m| &m.phase_traffic_commit);
    }

    /// The traffic commit of one ring, in ring order: spill-free planned
    /// deliveries apply their meter movement directly (accrual deferred to
    /// the parallel pass); everything else runs the sequential algorithm
    /// in place. With `sequential` set, every partition takes the
    /// sequential path (the oracle mode).
    fn commit_ring_traffic(&mut self, ring_idx: usize, gamma: f64, sequential: bool) {
        let pids: Vec<PartitionId> = self.rings[ring_idx].ring.partition_ids();
        for pid in pids {
            let Some(partition) = self.rings[ring_idx].partitions.get_mut(&pid) else {
                continue;
            };
            if !partition.delivery.ready {
                continue; // no queries addressed to this partition
            }
            let q = partition.delivery.q;
            if partition.delivery.sum_g <= 0.0 {
                let ring = &mut self.rings[ring_idx];
                ring.queries_offered_epoch += q;
                ring.queries_dropped_epoch += q;
                continue;
            }
            if !sequential && self.try_commit_planned(ring_idx, pid) {
                // Spill-free: the planned events were applied to the
                // meters bit-exactly; ring totals come from the planned
                // folds (same floats the sequential loop would produce).
                let d = &self.rings[ring_idx].partitions[&pid].delivery;
                let (served_total, final_remaining, distance_sum) =
                    (d.served_total, d.final_remaining, d.distance_sum);
                let ring = &mut self.rings[ring_idx];
                ring.queries_offered_epoch += q;
                ring.queries_served_epoch += served_total;
                ring.queries_dropped_epoch += final_remaining.max(0.0);
                ring.distance_sum_epoch += distance_sum;
                continue;
            }
            // Sequential algorithm: the oracle mode, and the fallback for
            // partitions whose planned events could touch a saturating
            // capacity meter.
            let partition = self.rings[ring_idx].partitions.get_mut(&pid).unwrap();
            let (served_total, remaining, distance_sum) =
                Self::commit_partition_sequential(&mut self.cluster, partition, gamma);
            let ring = &mut self.rings[ring_idx];
            ring.queries_offered_epoch += q;
            ring.queries_served_epoch += served_total;
            ring.queries_dropped_epoch += remaining.max(0.0);
            ring.distance_sum_epoch += distance_sum;
        }
    }

    /// Tries to commit one partition's planned delivery events against the
    /// live capacity meters. The feasibility peek simulates `serve_on`'s
    /// arithmetic bit-exactly (per-replica `served + amount` folds against
    /// `(capacity - served).max(0)` rooms seeded from the live meters); if
    /// any event would be clipped — including events on dead servers — the
    /// partition is left untouched and the caller falls back to the
    /// sequential algorithm. On success the meters receive exactly the
    /// adds `serve_on` would have performed, in event order, and the
    /// partition is queued for the parallel accrual pass.
    fn try_commit_planned(&mut self, ring_idx: usize, pid: PartitionId) -> bool {
        let Self {
            rings,
            cluster,
            meter_scratch,
            ..
        } = self;
        let partition = rings[ring_idx].partitions.get_mut(&pid).unwrap();
        let PartitionState {
            replicas, delivery, ..
        } = &mut *partition;
        meter_scratch.clear();
        for r in replicas.iter() {
            match cluster.get(r.server) {
                Some(s) if s.is_alive() => {
                    meter_scratch.push((s.capacities.query_capacity, s.usage.queries_served))
                }
                _ => meter_scratch.push((0.0, 0.0)), // dead server: no room
            }
        }
        for &(i, amount) in &delivery.events {
            if amount <= 0.0 {
                continue; // serve_on no-ops on non-positive requests
            }
            let (cap, served) = meter_scratch[i];
            let room = (cap - served).max(0.0);
            if amount > room {
                return false;
            }
            meter_scratch[i].1 = served + amount;
        }
        // Every event fits: apply the same adds serve_on would have
        // performed, in event order.
        for &(i, amount) in &delivery.events {
            if amount <= 0.0 {
                continue;
            }
            if let Some(s) = cluster.get_mut(replicas[i].server) {
                s.usage.queries_served += amount;
            }
        }
        delivery.accrual_pending = true;
        true
    }

    /// The original sequential per-partition traffic commit: the
    /// proximity-proportional pass capped by live capacity, the spill
    /// pass, and the drop recording. Returns the partition's
    /// `(served, remaining, distance_sum)` contributions to the ring
    /// totals.
    fn commit_partition_sequential(
        cluster: &mut Cluster,
        partition: &mut PartitionState,
        gamma: f64,
    ) -> (f64, f64, f64) {
        let PartitionState {
            replicas, delivery, ..
        } = &mut *partition;
        let q = delivery.q;
        let sum_g = delivery.sum_g;
        let gs = &delivery.gs;
        let dists = &delivery.dists;
        let order = &delivery.order;
        let mut distance_sum = 0.0;
        // Pass 1: proximity-proportional shares, capped by capacity.
        let mut remaining = q;
        let mut served_total = 0.0;
        for &i in order.iter() {
            let want = q * gs[i] / sum_g;
            let served = Self::serve_on(cluster, replicas[i].server, want.min(remaining));
            replicas[i].queries_epoch += served;
            replicas[i].utility_epoch += gamma * served * gs[i];
            distance_sum += served * dists[i];
            remaining -= served;
            served_total += served;
        }
        // Pass 2: spill the remainder to whoever still has capacity,
        // closest replicas first.
        if remaining > 1e-9 {
            for &i in order.iter() {
                if remaining <= 1e-9 {
                    break;
                }
                let served = Self::serve_on(cluster, replicas[i].server, remaining);
                replicas[i].queries_epoch += served;
                replicas[i].utility_epoch += gamma * served * gs[i];
                distance_sum += served * dists[i];
                remaining -= served;
                served_total += served;
            }
        }
        if remaining > 1e-9 {
            // Genuinely dropped: record on the closest replica's server.
            if let Some(&best) = order.first() {
                if let Some(s) = cluster.get_mut(replicas[best].server) {
                    s.usage.queries_dropped += remaining;
                }
            }
        }
        (served_total, remaining, distance_sum)
    }

    /// Runs the parallel accrual pass over every partition whose planned
    /// events committed spill-free in this wave.
    fn apply_pending_accrual(&mut self, gamma: f64) {
        let mut pending: Vec<(usize, PartitionId, PartitionState)> = Vec::new();
        for (ri, ring) in self.rings.iter_mut().enumerate() {
            let ids: Vec<PartitionId> = ring
                .partitions
                .iter()
                .filter(|(_, p)| p.delivery.accrual_pending)
                .map(|(pid, _)| *pid)
                .collect();
            for pid in ids {
                let part = ring.partitions.remove(&pid).expect("listed above");
                pending.push((ri, pid, part));
            }
        }
        if pending.is_empty() {
            return;
        }
        let done = self.pipeline.apply_traffic_accrual(pending, gamma);
        for (ri, pid, part) in done {
            self.rings[ri].partitions.insert(pid, part);
        }
    }

    fn serve_on(cluster: &mut Cluster, server: ServerId, queries: f64) -> f64 {
        if queries <= 0.0 {
            return 0.0;
        }
        match cluster.get_mut(server) {
            Some(s) if s.is_alive() => {
                let caps = s.capacities;
                let remaining = (caps.query_capacity - s.usage.queries_served).max(0.0);
                let take = queries.min(remaining);
                s.usage.queries_served += take;
                take
            }
            _ => 0.0,
        }
    }

    // ------------------------------------------------------------------
    // End of epoch: the decision process
    // ------------------------------------------------------------------

    /// Closes the epoch: runs the availability-repair pass, every virtual
    /// node's economic decision (§II-C), splits partitions over the 256 MB
    /// cap, and returns the epoch's report.
    pub fn end_epoch(&mut self) -> EpochReport {
        let mut actions = self.epoch_actions;
        self.epoch_actions = ActionCounts::default();
        let mut rent_paid = 0.0;
        let mut utility_earned = 0.0;
        let repair_start = self.obs_start();
        self.drain_read_repairs();
        if self.config.scrub_every > 0 && self.epoch % self.config.scrub_every == 0 {
            let ids: Vec<RingId> = self.rings.iter().map(|r| r.id).collect();
            for id in ids {
                let _ = self.scrub_quarantined(AppId(id.app), id.level);
            }
        }
        self.repair_availability(&mut actions);
        self.obs_phase(repair_start, |m| &m.phase_repair);
        let decisions_start = self.obs_start();
        self.economic_decisions(&mut actions, &mut rent_paid, &mut utility_earned);
        self.obs_phase(decisions_start, |m| &m.phase_decisions);
        let report_start = self.obs_start();
        self.split_overflowing(&mut actions);
        let report = self.report(actions, rent_paid, utility_earned);
        self.obs_phase(report_start, |m| &m.phase_report);
        if let Some(m) = &self.metrics {
            m.observe_report(&report);
        }
        report
    }

    /// Applies the targeted read-repairs quorum reads scheduled since the
    /// last epoch close: for every queued key, installs the
    /// partition-wide LWW winner on each stale replica with exact storage
    /// re-accounting. The queue is sorted and deduplicated first, so the
    /// repair order is a pure function of its contents regardless of how
    /// concurrent serving threads interleaved their enqueues. A replica
    /// whose server cannot absorb the winner's extra bytes is skipped
    /// (anti-entropy and the scheduled scrub retry it later). Simulation
    /// trajectories never enter here — only `client_get_with` enqueues —
    /// so determinism byte-compares are untouched.
    fn drain_read_repairs(&mut self) {
        let mut queued = {
            let mut q = self
                .repair_queue
                .lock()
                .expect("read-repair queue poisoned");
            std::mem::take(&mut *q)
        };
        if queued.is_empty() {
            return;
        }
        queued.sort();
        queued.dedup();
        let mut applied = 0u64;
        for (ring_idx, key) in queued {
            if ring_idx >= self.rings.len() {
                continue;
            }
            let pid = self.rings[ring_idx].ring.route(&key);
            let Some(partition) = self.rings[ring_idx].partitions.get(&pid) else {
                continue;
            };
            let Some(winner) =
                Record::merge_all(partition.replicas.iter().filter_map(|r| r.store.get(&key)))
            else {
                continue;
            };
            let new_entry = key.len() as u64 + winner.logical_size;
            let stale: Vec<usize> = partition
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| match r.store.get(&key) {
                    Some(rec) => rec.version < winner.version,
                    None => true,
                })
                .map(|(i, _)| i)
                .collect();
            for idx in stale {
                let (server, old_entry) = {
                    let r = &self.rings[ring_idx].partitions[&pid].replicas[idx];
                    (
                        r.server,
                        r.store
                            .get(&key)
                            .map(|rec| key.len() as u64 + rec.logical_size),
                    )
                };
                if self.cluster.get_alive(server).is_none() {
                    continue;
                }
                let ok = match old_entry {
                    Some(old) if new_entry <= old => {
                        if let Some(s) = self.cluster.get_mut(server) {
                            s.usage.release_storage(old - new_entry);
                        }
                        true
                    }
                    Some(old) => self
                        .cluster
                        .get_mut(server)
                        .map(|s| {
                            let caps = s.capacities;
                            s.usage.reserve_storage(&caps, new_entry - old)
                        })
                        .unwrap_or(false),
                    None => self
                        .cluster
                        .get_mut(server)
                        .map(|s| {
                            let caps = s.capacities;
                            s.usage.reserve_storage(&caps, new_entry)
                        })
                        .unwrap_or(false),
                };
                if !ok {
                    continue;
                }
                let p = self.rings[ring_idx].partitions.get_mut(&pid).unwrap();
                if p.replicas[idx].store.apply(key.clone(), winner.clone()) {
                    applied += 1;
                }
            }
        }
        if let Some(m) = &self.metrics {
            m.read_repairs_applied.add(applied);
        }
    }

    /// Timestamps a phase start only when a sink is attached (metrics off
    /// means not even `Instant::now` runs on the epoch path).
    fn obs_start(&self) -> Option<Instant> {
        self.metrics.as_ref().map(|_| Instant::now())
    }

    /// Records the elapsed phase time into the sink's chosen histogram.
    fn obs_phase(&self, start: Option<Instant>, pick: fn(&CloudMetrics) -> &skute_obs::Histogram) {
        if let (Some(m), Some(t0)) = (&self.metrics, start) {
            pick(m).observe_duration(t0.elapsed());
        }
    }

    /// Availability pass: every partition below its SLA threshold replicates
    /// towards the eq.-(3) optimal server, limited by bandwidth, storage and
    /// the per-epoch repair cap.
    ///
    /// A parallel pre-pass warms every partition's memoized eq.-(2)
    /// availability, so the sequential shuffled scan below reads cached
    /// floats and only partitions genuinely below threshold do placement
    /// work. Repairs invalidate their partition's cache (membership
    /// changed), so follow-up iterations re-evaluate, exactly like the
    /// sequential loop always did.
    ///
    /// The pass then runs the same plan/validate protocol as the economic
    /// phase: a parallel **plan** pass computes one speculative eq.-(3)
    /// replication target per below-threshold candidate against the frozen
    /// index snapshot (each walk recording its read set), and the
    /// sequential shuffled commit honors a candidate's speculation on its
    /// **first** repair iteration whenever read-set validation proves the
    /// previously committed repairs cannot have changed its answer —
    /// otherwise (and on every follow-up iteration, whose membership the
    /// first repair changed) it re-walks the live state, exactly as the
    /// sequential loop would. This matters precisely under failure
    /// bursts: a correlated outage floods this pass with repair work, and
    /// the speculative prepass moves the placement walks onto the worker
    /// pool. `SkuteConfig::sequential_repair` routes everything through
    /// the sequential walk as the bitwise oracle (trajectories are
    /// identical up to the speculation hit/miss counters).
    fn repair_availability(&mut self, actions: &mut ActionCounts) {
        let window = self.config.economy.decision_window;
        let max_repairs = self.config.max_repairs_per_partition_per_epoch;
        let max_replicas = self.config.economy.max_replicas;
        if self.pipeline.threads() == 1 {
            // Single-thread fast path: warm the cache in place.
            let Self { rings, cluster, .. } = self;
            for ring in rings.iter_mut() {
                for part in ring.partitions.values_mut() {
                    if part.cached_availability.is_none() {
                        let _ = cached_availability(cluster, part);
                    }
                }
            }
        } else {
            // Move the cache-miss partitions out for the owned-task warm
            // dispatch; the converged steady state has no misses and skips
            // the dispatch entirely.
            let mut misses: Vec<(usize, PartitionId, PartitionState)> = Vec::new();
            for (ri, ring) in self.rings.iter_mut().enumerate() {
                let ids: Vec<PartitionId> = ring
                    .partitions
                    .iter()
                    .filter(|(_, p)| p.cached_availability.is_none())
                    .map(|(pid, _)| *pid)
                    .collect();
                for pid in ids {
                    let part = ring.partitions.remove(&pid).expect("listed above");
                    misses.push((ri, pid, part));
                }
            }
            if !misses.is_empty() {
                let cluster = std::mem::take(&mut self.cluster);
                let (cluster, warmed) = self.pipeline.warm_availability(cluster, misses);
                self.cluster = cluster;
                for (ri, pid, part) in warmed {
                    self.rings[ri].partitions.insert(pid, part);
                }
            }
        }
        // Plan pass: speculative targets for every candidate (below
        // threshold with headroom for another replica), slotted in flat
        // (ring, partition) order. Skipped entirely by the sequential
        // oracle and by the brute-force / no-speculation oracles (their
        // walks re-run sequentially either way, bit-for-bit identical).
        let speculative = !self.config.sequential_repair
            && !self.config.brute_force_placement
            && !self.config.no_speculation;
        let mut repair_slots: BTreeMap<(usize, PartitionId), usize> = BTreeMap::new();
        if speculative {
            for (ri, ring) in self.rings.iter().enumerate() {
                let threshold = ring.level.threshold;
                for (pid, p) in &ring.partitions {
                    if p.replica_count() < max_replicas
                        && p.cached_availability.is_some_and(|a| a < threshold)
                    {
                        let slot = repair_slots.len();
                        repair_slots.insert((ri, *pid), slot);
                    }
                }
            }
        }
        if !repair_slots.is_empty() {
            let ctx = PlacementContext {
                cluster: &self.cluster,
                board: &self.board,
                topology: &self.topology,
                economy: &self.config.economy,
            };
            self.index.refresh(&ctx);
            if self.pipeline.threads() == 1 {
                // Single-thread fast path: identical per-candidate
                // arithmetic, run in place in the same flat order.
                let slots = &repair_slots;
                let Self {
                    rings,
                    cluster,
                    board,
                    topology,
                    config,
                    index,
                    pipeline,
                    ..
                } = self;
                let inputs = crate::pipeline::DecisionInputs {
                    cluster,
                    board,
                    topology,
                    economy: &config.economy,
                    index,
                    brute_force: false,
                    speculation: true,
                    min_rent: None,
                };
                pipeline.repairs_prepass_inline(
                    rings.iter_mut().enumerate().flat_map(|(ri, ring)| {
                        ring.partitions
                            .iter_mut()
                            .filter(move |(pid, _)| slots.contains_key(&(ri, **pid)))
                            .map(|(_, p)| p)
                    }),
                    &inputs,
                );
            } else {
                // Move the candidates (and the shared inputs) into the
                // owned-task prepass dispatch; everything comes back at
                // the barrier in flat candidate order.
                let mut items: Vec<DecisionItem> = Vec::with_capacity(repair_slots.len());
                for &(ri, pid) in repair_slots.keys() {
                    let part = self.rings[ri]
                        .partitions
                        .remove(&pid)
                        .expect("listed above");
                    items.push(DecisionItem {
                        ring_idx: ri,
                        threshold: self.rings[ri].level.threshold,
                        pid,
                        part,
                    });
                }
                let (cluster, board, index, items) = self.pipeline.repairs_prepass(
                    std::mem::take(&mut self.cluster),
                    std::mem::take(&mut self.board),
                    Arc::clone(&self.topology),
                    self.config.economy,
                    std::mem::take(&mut self.index),
                    items,
                );
                self.cluster = cluster;
                self.board = board;
                self.index = index;
                for item in items {
                    self.rings[item.ring_idx]
                        .partitions
                        .insert(item.pid, item.part);
                }
            }
            debug_assert_eq!(self.pipeline.pre.len(), repair_slots.len());
        }
        // Commit pass (sequential, seeded shuffle order — byte-identical
        // to the historical sequential loop). Every committed repair
        // records its touched target; later speculations are honored only
        // while validation holds.
        let frozen_board = self.board.version();
        self.spec_touched.clear();
        for ri in 0..self.rings.len() {
            let threshold = self.rings[ri].level.threshold;
            let mut pids = self.rings[ri].ring.partition_ids();
            pids.shuffle(&mut self.rng);
            for pid in pids {
                for attempt in 0..max_repairs {
                    let Some(partition) = self.rings[ri].partitions.get_mut(&pid) else {
                        break;
                    };
                    if partition.replica_count() >= max_replicas {
                        break;
                    }
                    if cached_availability(&self.cluster, partition) >= threshold {
                        break;
                    }
                    // Only the first iteration can hold a speculation: a
                    // committed repair changes this partition's membership,
                    // so follow-ups always re-walk the live state.
                    let slot = if attempt == 0 {
                        repair_slots.get(&(ri, pid)).copied()
                    } else {
                        None
                    };
                    self.servers_scratch.clear();
                    self.servers_scratch
                        .extend(partition.replicas.iter().map(|r| r.server));
                    let size = partition.size_bytes();
                    let target = match slot {
                        Some(slot) => {
                            let pre = self.pipeline.pre[slot];
                            // Eligible while the board still holds its
                            // frozen prices and the membership the walk
                            // saw is untouched; touched-server validation
                            // then decides (see `economic_decisions`).
                            let spec_live = pre.spec_computed
                                && self.board.version() == frozen_board
                                && partition.membership_version == pre.membership_version;
                            let mut honored = spec_live && self.spec_touched.is_empty();
                            let target = if honored {
                                pre.spec
                            } else {
                                let ctx = PlacementContext {
                                    cluster: &self.cluster,
                                    board: &self.board,
                                    topology: &self.topology,
                                    economy: &self.config.economy,
                                };
                                let PartitionState {
                                    region_queries,
                                    prox_cache,
                                    ..
                                } = &mut *partition;
                                let (target, h) = resolve_spec_target(
                                    &mut self.index,
                                    false,
                                    &ctx,
                                    &self.servers_scratch,
                                    size,
                                    region_queries,
                                    prox_cache,
                                    None,
                                    spec_live,
                                    &pre,
                                    spec_reads(&self.pipeline, &pre),
                                    &mut self.spec_touched,
                                    &mut self.spec_locs,
                                );
                                honored = h;
                                target
                            };
                            if honored {
                                actions.spec_hits += 1;
                            } else {
                                actions.spec_misses += 1;
                            }
                            target
                        }
                        None => {
                            let ctx = PlacementContext {
                                cluster: &self.cluster,
                                board: &self.board,
                                topology: &self.topology,
                                economy: &self.config.economy,
                            };
                            let PartitionState {
                                region_queries,
                                prox_cache,
                                ..
                            } = &mut *partition;
                            select_target(
                                &mut self.index,
                                self.config.brute_force_placement,
                                &ctx,
                                &self.servers_scratch,
                                size,
                                region_queries,
                                prox_cache,
                                None,
                            )
                        }
                    };
                    let Some((target, _)) = target else {
                        actions.blocked_transfers += 1;
                        break;
                    };
                    let epoch = self.epoch;
                    let vid = VnodeId(self.next_vnode);
                    let partition = self.rings[ri].partitions.get_mut(&pid).unwrap();
                    if let Some(t) =
                        exec_replication(&mut self.cluster, partition, target, vid, window, epoch)
                    {
                        self.next_vnode += 1;
                        actions.availability_replications += 1;
                        actions.replicated_bytes += t.logical;
                        actions.measured_replicated_bytes += t.measured;
                        self.note_index(&[target]);
                        self.spec_touched.record(target, true);
                    } else {
                        actions.blocked_transfers += 1;
                        break;
                    }
                }
            }
        }
    }

    /// Economic pass: every vnode records its balance and acts on f-epoch
    /// streaks (suicide / migrate / profit-replicate).
    ///
    /// Structured as a pipeline phase. The parallel **plan** pass touches
    /// only partition-local state — it records balances, evaluates each
    /// vnode's [`VnodeSituation`] against the phase-start membership, and
    /// runs speculative eq.-(3) target queries through the index's
    /// read-only snapshot view, each walk recording its read set. The
    /// sequential **commit** pass then walks the seeded shuffle order:
    /// rent/utility totals accumulate from the precomputed per-vnode
    /// values (same floats, same order as the old in-loop accumulation),
    /// situations are re-evaluated live only for partitions whose
    /// membership an earlier committed action changed, and speculative
    /// targets are **validated, not discarded**: every executed action
    /// records the servers it touched, and a later speculation is honored
    /// whenever `validate_speculation` proves those touches cannot have
    /// changed its answer (the board is never written mid-pass, so its
    /// frozen version covers every walk's price reads). Only genuine
    /// read/write overlap — the winner itself touched, a touched
    /// candidate re-scoring past the winner, or this partition's own
    /// membership changing — re-walks the live state, exactly as the
    /// sequential loop would; `actions.spec_hits`/`spec_misses` count the
    /// two outcomes, and `SkuteConfig::no_speculation` routes everything
    /// through the re-walk path as the oracle.
    fn economic_decisions(
        &mut self,
        actions: &mut ActionCounts,
        rent_paid: &mut f64,
        utility_earned: &mut f64,
    ) {
        let economy = self.config.economy;
        let window = economy.decision_window;
        let brute_force = self.config.brute_force_placement;
        let speculation = !self.config.no_speculation;
        let min_rent = self.board.min_price();
        // Snapshot vnode identities into the reusable work list; replicas
        // mutate as we act. The slot indexes the pipeline's precomputation
        // buffer (flat enumeration order, which the plan pass replays).
        let mut work = std::mem::take(&mut self.work_scratch);
        work.clear();
        let mut slots = 0usize;
        for (ri, ring) in self.rings.iter().enumerate() {
            for (pid, p) in &ring.partitions {
                for r in &p.replicas {
                    work.push((ri, *pid, r.id, slots));
                    slots += 1;
                }
            }
        }
        work.shuffle(&mut self.rng);
        // Plan pass (parallel): refresh the index snapshot at the barrier,
        // freeze the version pair, fan the per-vnode precomputation out.
        if !brute_force {
            let ctx = PlacementContext {
                cluster: &self.cluster,
                board: &self.board,
                topology: &self.topology,
                economy: &self.config.economy,
            };
            self.index.refresh(&ctx);
        }
        let frozen = (self.cluster.version(), self.board.version());
        if self.pipeline.threads() == 1 {
            // Single-thread fast path: identical per-vnode arithmetic, run
            // in place over borrowed partitions in the same flat order.
            let Self {
                rings,
                cluster,
                board,
                topology,
                config,
                index,
                pipeline,
                ..
            } = self;
            let inputs = crate::pipeline::DecisionInputs {
                cluster,
                board,
                topology,
                economy: &config.economy,
                index,
                brute_force,
                speculation,
                min_rent,
            };
            pipeline.decisions_prepass_inline(
                rings.iter_mut().flat_map(|ring| {
                    let threshold = ring.level.threshold;
                    ring.partitions.values_mut().map(move |p| (threshold, p))
                }),
                &inputs,
            );
        } else {
            // Move every partition (and the shared decision inputs) into
            // the owned-task prepass dispatch; everything comes back at
            // the barrier, partitions in flat (ring, partition) order —
            // the same enumeration the slot indices were assigned in.
            let mut items: Vec<DecisionItem> = Vec::new();
            for (ri, ring) in self.rings.iter_mut().enumerate() {
                let threshold = ring.level.threshold;
                for (pid, part) in std::mem::take(&mut ring.partitions) {
                    items.push(DecisionItem {
                        ring_idx: ri,
                        threshold,
                        pid,
                        part,
                    });
                }
            }
            let (cluster, board, index, items) = self.pipeline.decisions_prepass(
                std::mem::take(&mut self.cluster),
                std::mem::take(&mut self.board),
                Arc::clone(&self.topology),
                self.config.economy,
                std::mem::take(&mut self.index),
                brute_force,
                speculation,
                min_rent,
                items,
            );
            self.cluster = cluster;
            self.board = board;
            self.index = index;
            for item in items {
                self.rings[item.ring_idx]
                    .partitions
                    .insert(item.pid, item.part);
            }
        }
        debug_assert_eq!(self.pipeline.pre.len(), slots, "one slot per vnode");
        // Commit pass (sequential resolution, seeded shuffle order).
        // Every executed action records its touched servers (the pass's
        // write set); later speculations are honored as long as read-set
        // validation proves the touches cannot have changed their answer,
        // and re-walk on the live state only on genuine read/write
        // overlap. Capacity meters move eagerly at resolution time, in
        // resolution order, so every later resolution reads exact
        // balances; only the partition-local placements of conflict-free
        // actions are deferred into batches (see [`crate::batch`]) and
        // applied in one worker-pool dispatch per flush —
        // `SkuteConfig::sequential_decisions` instead routes them through
        // the one-at-a-time in-place oracle.
        let sequential = self.config.sequential_decisions;
        let defer = !sequential && self.pipeline.threads() > 1;
        let mut batcher = std::mem::take(&mut self.batcher);
        debug_assert_eq!(batcher.width(), 0, "previous pass flushed everything");
        self.spec_touched.clear();
        for &(ri, pid, vid, slot) in &work {
            // Resolution reads the partition's live replicas; a pending
            // deferred placement on it must land first. The batch
            // bookkeeping — this flush boundary included — runs at every
            // thread count, so batch boundaries depend only on the
            // resolved action sequence and the counters are
            // thread-invariant; with `threads == 1` the ops already
            // applied inline and the flush only counts.
            if !sequential && batcher.touches_partition((ri, pid)) {
                self.flush_decision_batch(&mut batcher, actions);
            }
            let threshold = self.rings[ri].level.threshold;
            // The vnode may have been split away or suicided already.
            let Some(partition) = self.rings[ri].partitions.get_mut(&pid) else {
                continue;
            };
            let Some(idx) = partition.replicas.iter().position(|r| r.id == vid) else {
                continue;
            };
            let server = partition.replicas[idx].server;
            let pre = self.pipeline.pre[slot];
            if pre.skip {
                continue; // server vanished mid-epoch; replica was removed
            }
            *rent_paid += pre.rent;
            *utility_earned += pre.u_eff;
            let (availability_without_self, replica_count) =
                if partition.membership_version == pre.membership_version {
                    (pre.availability_without_self, pre.replica_count)
                } else {
                    // An earlier committed action changed this partition:
                    // re-evaluate against the live membership, exactly as
                    // the sequential loop always did.
                    self.placed_scratch.clear();
                    for (i, r) in partition.replicas.iter().enumerate() {
                        if i == idx {
                            continue;
                        }
                        if let Some(s) = self.cluster.get(r.server) {
                            self.placed_scratch.push((s.location, s.confidence));
                        }
                    }
                    (
                        availability_of(&self.placed_scratch),
                        partition.replicas.len(),
                    )
                };
            let situation = VnodeSituation {
                negative_streak: pre.negative_streak,
                positive_streak: pre.positive_streak,
                window_mean: pre.window_mean,
                availability_without_self,
                threshold,
                replica_count,
                max_replicas: economy.max_replicas,
                current_rent: pre.rent,
                projected_replica_cost: min_rent.unwrap_or(0.0) + pre.consistency_cost,
                hurdle: economy.replication_hurdle,
            };
            // A speculation is eligible at all only while the board still
            // holds its frozen prices (the pass never writes the board)
            // and this partition's membership — the speculation's
            // `existing` set and size — is untouched. Touched-server
            // validation then decides whether it is provably still the
            // fresh-walk answer.
            let spec_live = pre.spec_computed
                && self.board.version() == frozen.1
                && partition.membership_version == pre.membership_version;
            let resolved = match classify(&situation) {
                Intent::Stay => Resolved::Stay,
                Intent::Suicide => Resolved::Suicide { idx },
                Intent::Migrate => {
                    let mut honored = spec_live && self.spec_touched.is_empty();
                    let target = if honored {
                        pre.spec
                    } else {
                        self.servers_scratch.clear();
                        for (i, r) in partition.replicas.iter().enumerate() {
                            if i != idx {
                                self.servers_scratch.push(r.server);
                            }
                        }
                        let size = partition.synthetic_bytes
                            + partition.replicas[idx].store.logical_bytes();
                        // Hysteresis: only servers meaningfully cheaper than
                        // the current one are worth the transfer.
                        let rent_cap = pre.rent * (1.0 - economy.migration_margin);
                        let ctx = PlacementContext {
                            cluster: &self.cluster,
                            board: &self.board,
                            topology: &self.topology,
                            economy: &self.config.economy,
                        };
                        let PartitionState {
                            region_queries,
                            prox_cache,
                            ..
                        } = &mut *partition;
                        let (target, h) = resolve_spec_target(
                            &mut self.index,
                            brute_force,
                            &ctx,
                            &self.servers_scratch,
                            size,
                            region_queries,
                            prox_cache,
                            Some(rent_cap),
                            spec_live,
                            &pre,
                            spec_reads(&self.pipeline, &pre),
                            &mut self.spec_touched,
                            &mut self.spec_locs,
                        );
                        honored = h;
                        target
                    };
                    if pre.spec_computed {
                        if honored {
                            actions.spec_hits += 1;
                        } else {
                            actions.spec_misses += 1;
                        }
                    }
                    match target {
                        Some((target, _)) if target != server => Resolved::Migrate { idx, target },
                        _ => Resolved::Stay,
                    }
                }
                Intent::ReplicateForProfit => {
                    let mut honored = spec_live && self.spec_touched.is_empty();
                    let target = if honored {
                        pre.spec
                    } else {
                        self.servers_scratch.clear();
                        self.servers_scratch
                            .extend(partition.replicas.iter().map(|r| r.server));
                        let size = partition.size_bytes();
                        let ctx = PlacementContext {
                            cluster: &self.cluster,
                            board: &self.board,
                            topology: &self.topology,
                            economy: &self.config.economy,
                        };
                        let PartitionState {
                            region_queries,
                            prox_cache,
                            ..
                        } = &mut *partition;
                        let (target, h) = resolve_spec_target(
                            &mut self.index,
                            brute_force,
                            &ctx,
                            &self.servers_scratch,
                            size,
                            region_queries,
                            prox_cache,
                            None,
                            spec_live,
                            &pre,
                            spec_reads(&self.pipeline, &pre),
                            &mut self.spec_touched,
                            &mut self.spec_locs,
                        );
                        honored = h;
                        target
                    };
                    if pre.spec_computed {
                        if honored {
                            actions.spec_hits += 1;
                        } else {
                            actions.spec_misses += 1;
                        }
                    }
                    match target {
                        Some((target, _)) => {
                            // Re-verify the hurdle with the actual candidate
                            // rent.
                            let actual_rent = self.board.price_of(target).unwrap_or(f64::MAX);
                            let actual = VnodeSituation {
                                projected_replica_cost: actual_rent + pre.consistency_cost,
                                ..situation
                            };
                            if clears_profit_hurdle(&actual) {
                                Resolved::Replicate { target }
                            } else {
                                Resolved::Stay
                            }
                        }
                        None => Resolved::Stay,
                    }
                }
            };
            // Application: the meter half runs now (eagerly, still in
            // resolution order); the placement half defers into the open
            // batch, falls back in place after a flush on a server
            // conflict, or applies immediately in the sequential modes.
            match resolved {
                Resolved::Stay => {}
                Resolved::Suicide { idx } => {
                    let touched = [(server, false)];
                    let conflict = !sequential && batcher.conflicts(&touched);
                    if conflict {
                        self.flush_decision_batch(&mut batcher, actions);
                        actions.batch_conflicts += 1;
                    }
                    let partition = self.rings[ri].partitions.get(&pid).unwrap();
                    plan_suicide(&mut self.cluster, partition, idx);
                    actions.suicides += 1;
                    self.note_index(&[server]);
                    self.spec_touched.record(server, false);
                    let op = DeferredOp {
                        ri,
                        pid,
                        kind: DeferredKind::Suicide { idx },
                    };
                    if !sequential && !conflict {
                        batcher.admit(&touched, (ri, pid));
                    }
                    if defer && !conflict {
                        batcher.defer(op);
                    } else {
                        let partition = self.rings[ri].partitions.get_mut(&pid).unwrap();
                        apply_deferred(&op.kind, partition);
                    }
                }
                Resolved::Migrate { idx, target } => {
                    let partition = self.rings[ri].partitions.get_mut(&pid).unwrap();
                    if let Some(logical) = plan_migration(&mut self.cluster, partition, idx, target)
                    {
                        actions.migrations += 1;
                        actions.migrated_bytes += logical;
                        let touched = [(server, false), (target, true)];
                        let conflict = !sequential && batcher.conflicts(&touched);
                        if conflict {
                            self.flush_decision_batch(&mut batcher, actions);
                            actions.batch_conflicts += 1;
                        }
                        self.note_index(&[server, target]);
                        self.spec_touched.record(server, false);
                        self.spec_touched.record(target, true);
                        let op = DeferredOp {
                            ri,
                            pid,
                            kind: DeferredKind::Migration { idx, target },
                        };
                        if !sequential && !conflict {
                            batcher.admit(&touched, (ri, pid));
                        }
                        if defer && !conflict {
                            batcher.defer(op);
                        } else {
                            let partition = self.rings[ri].partitions.get_mut(&pid).unwrap();
                            actions.measured_migrated_bytes += apply_deferred(&op.kind, partition);
                        }
                    }
                }
                Resolved::Replicate { target } => {
                    let epoch = self.epoch;
                    let new_vid = VnodeId(self.next_vnode);
                    let partition = self.rings[ri].partitions.get_mut(&pid).unwrap();
                    if let Some((src_idx, logical)) =
                        plan_replication(&mut self.cluster, partition, target)
                    {
                        self.next_vnode += 1;
                        actions.profit_replications += 1;
                        actions.replicated_bytes += logical;
                        let touched = [(target, true)];
                        let conflict = !sequential && batcher.conflicts(&touched);
                        if conflict {
                            self.flush_decision_batch(&mut batcher, actions);
                            actions.batch_conflicts += 1;
                        }
                        self.note_index(&[target]);
                        self.spec_touched.record(target, true);
                        let op = DeferredOp {
                            ri,
                            pid,
                            kind: DeferredKind::Replication {
                                src_idx,
                                target,
                                vid: new_vid,
                                window,
                                epoch,
                            },
                        };
                        if !sequential && !conflict {
                            batcher.admit(&touched, (ri, pid));
                        }
                        if defer && !conflict {
                            batcher.defer(op);
                        } else {
                            let partition = self.rings[ri].partitions.get_mut(&pid).unwrap();
                            actions.measured_replicated_bytes +=
                                apply_deferred(&op.kind, partition);
                        }
                    } else {
                        actions.blocked_transfers += 1;
                    }
                }
            }
        }
        if !sequential {
            self.flush_decision_batch(&mut batcher, actions);
        }
        self.batcher = batcher;
        self.work_scratch = work;
    }

    /// Flushes the open decision batch: counts it into the batch
    /// observability counters, applies its deferred partition-local
    /// placements — one worker-pool dispatch for width ≥ 2, inline for a
    /// single op — and accumulates the measured transfer bytes in op
    /// order (the sums are `u64`, so batch order cannot change them).
    /// The in-place commit modes (`threads == 1`) admit actions without
    /// deferring, so their flushes only count.
    fn flush_decision_batch(&mut self, batcher: &mut DecisionBatcher, actions: &mut ActionCounts) {
        if batcher.width() == 0 {
            return;
        }
        actions.decision_batches += 1;
        actions.max_batch_width = actions.max_batch_width.max(batcher.width() as u64);
        let ops = batcher.take_ops();
        if ops.len() == 1 {
            // A single deferred placement is cheaper applied here than
            // shipped through the pool.
            let op = &ops[0];
            let partition = self.rings[op.ri].partitions.get_mut(&op.pid).unwrap();
            let measured = apply_deferred(&op.kind, partition);
            count_measured(actions, &op.kind, measured);
        } else if !ops.is_empty() {
            let tasks: Vec<BatchTask> = ops
                .into_iter()
                .map(|op| {
                    let part = self.rings[op.ri]
                        .partitions
                        .remove(&op.pid)
                        .expect("deferred op's partition is in its ring");
                    BatchTask {
                        op,
                        part,
                        measured: 0,
                    }
                })
                .collect();
            for task in self.pipeline.commit_decision_batch(tasks) {
                count_measured(actions, &task.op.kind, task.measured);
                self.rings[task.op.ri]
                    .partitions
                    .insert(task.op.pid, task.part);
            }
        }
        batcher.reset();
    }

    /// Splits every partition above the 256 MB capacity into two fresh
    /// partitions with the same replica placement.
    fn split_overflowing(&mut self, actions: &mut ActionCounts) {
        let threshold = self.config.split_threshold_bytes;
        let window = self.config.economy.decision_window;
        for ri in 0..self.rings.len() {
            loop {
                let victim = self.rings[ri]
                    .partitions
                    .iter()
                    .find(|(_, p)| p.size_bytes() > threshold)
                    .map(|(pid, _)| *pid);
                let Some(pid) = victim else { break };
                let Some((low, high)) = self.rings[ri].ring.split_partition(pid) else {
                    break; // range too narrow to split
                };
                let parent = self.rings[ri].partitions.remove(&pid).unwrap();
                let hasher = self.rings[ri].ring.hasher();
                let mut low_state = PartitionState::new(low.id, parent.popularity / 2.0);
                let mut high_state = PartitionState::new(high.id, parent.popularity / 2.0);
                low_state.synthetic_bytes = parent.synthetic_bytes / 2;
                high_state.synthetic_bytes = parent.synthetic_bytes - low_state.synthetic_bytes;
                for replica in parent.replicas {
                    let mut low_store = replica.store;
                    let high_store = low_store.split_off(hasher, high.range);
                    let mut low_replica =
                        Replica::new(VnodeId(self.next_vnode), replica.server, window, self.epoch);
                    self.next_vnode += 1;
                    low_replica.store = low_store;
                    low_state.replicas.push(low_replica);
                    let mut high_replica =
                        Replica::new(VnodeId(self.next_vnode), replica.server, window, self.epoch);
                    self.next_vnode += 1;
                    high_replica.store = high_store;
                    high_state.replicas.push(high_replica);
                }
                self.rings[ri].partitions.insert(low.id, low_state);
                self.rings[ri].partitions.insert(high.id, high_state);
                actions.splits += 1;
            }
        }
    }

    /// Assembles the epoch report. Per-ring statistics run as a parallel
    /// plan pass per ring — availability via the membership-keyed cache,
    /// per-server loads and vnode counts through sharded accumulators
    /// merged in deterministic (partition, server) order — feeding reused
    /// sorted accumulators instead of per-epoch hash maps.
    fn report(
        &mut self,
        actions: ActionCounts,
        rent_paid: f64,
        utility_earned: f64,
    ) -> EpochReport {
        let alive_servers = self.cluster.alive_count();
        let mut rings = Vec::with_capacity(self.rings.len());
        self.pipeline.begin_report();
        for ri in 0..self.rings.len() {
            let threshold = self.rings[ri].level.threshold;
            let stats = if self.pipeline.threads() == 1 {
                // Single-thread fast path: identical accounting in place.
                let Self {
                    rings,
                    cluster,
                    pipeline,
                    ..
                } = self;
                pipeline.ring_stats_inline(cluster, rings[ri].partitions.values_mut(), threshold)
            } else {
                let parts: Vec<(PartitionId, PartitionState)> =
                    std::mem::take(&mut self.rings[ri].partitions)
                        .into_iter()
                        .collect();
                let cluster = std::mem::take(&mut self.cluster);
                let (cluster, parts, stats) = self.pipeline.ring_stats(cluster, parts, threshold);
                self.cluster = cluster;
                self.rings[ri].partitions = parts.into_iter().collect();
                stats
            };
            let ring = &self.rings[ri];
            rings.push(RingReport {
                ring: ring.id,
                target_replicas: ring.level.target_replicas,
                partitions: ring.partitions.len(),
                vnodes: stats.vnodes,
                mean_availability: stats.mean_availability,
                min_availability: stats.min_availability,
                sla_satisfied_frac: stats.sla_satisfied_frac,
                queries_offered: ring.queries_offered_epoch,
                queries_served: ring.queries_served_epoch,
                queries_dropped: ring.queries_dropped_epoch,
                load_per_server: if alive_servers == 0 {
                    0.0
                } else {
                    ring.queries_served_epoch / alive_servers as f64
                },
                load_cv: stats.load_cv,
                mean_client_distance: if ring.queries_served_epoch > 0.0 {
                    ring.distance_sum_epoch / ring.queries_served_epoch
                } else {
                    0.0
                },
            });
        }
        EpochReport {
            epoch: self.epoch,
            vnodes_per_server: self.pipeline.vnodes_map(&self.cluster),
            rings,
            actions,
            insert_failures: self.insert_failures_epoch,
            partitions_lost: self.partitions_lost_epoch,
            storage_used: self.cluster.total_storage_used(),
            storage_capacity: self.cluster.total_storage(),
            rent_paid,
            utility_earned,
            min_rent: self.board.min_price(),
            alive_servers,
        }
    }

    // ------------------------------------------------------------------
    // Internal helpers
    // ------------------------------------------------------------------

    fn ring_index(&self, app: AppId, level: u32) -> Result<usize, CoreError> {
        if app.0 as usize >= self.apps.len() {
            return Err(CoreError::UnknownApp);
        }
        let id = RingId::new(app.0, level);
        self.rings
            .iter()
            .position(|r| r.id == id)
            .ok_or(CoreError::UnknownLevel)
    }

    /// Tells the placement index exactly which servers the action just
    /// executed has touched. The invalidation is queued and applied at the
    /// next index read (the next query of the commit pass, or the refresh
    /// at the next phase barrier), where it repositions those entries
    /// instead of rebuilding the whole snapshot.
    fn note_index(&mut self, ids: &[ServerId]) {
        self.index.queue_servers_changed(ids);
    }

    fn alloc_vnode(&mut self) -> VnodeId {
        let id = VnodeId(self.next_vnode);
        self.next_vnode += 1;
        id
    }

    /// A random alive server with at least `bytes` free, preferring a
    /// handful of random probes before falling back to the emptiest server.
    fn seed_server(&mut self, bytes: u64) -> Result<ServerId, CoreError> {
        let alive = self.cluster.alive_ids();
        if alive.is_empty() {
            return Err(CoreError::EmptyCluster);
        }
        for _ in 0..16 {
            let id = alive[self.rng.gen_range(0..alive.len())];
            let fits = self
                .cluster
                .get_mut(id)
                .map(|s| {
                    let caps = s.capacities;
                    s.usage.reserve_storage(&caps, bytes)
                })
                .unwrap_or(false);
            if fits {
                return Ok(id);
            }
        }
        // Fall back to the server with the most free space.
        let best = self
            .cluster
            .alive()
            .max_by_key(|s| s.storage_free())
            .map(|s| s.id)
            .ok_or(CoreError::EmptyCluster)?;
        let ok = self
            .cluster
            .get_mut(best)
            .map(|s| {
                let caps = s.capacities;
                s.usage.reserve_storage(&caps, bytes)
            })
            .unwrap_or(false);
        if ok {
            Ok(best)
        } else {
            Err(CoreError::NoPlacement)
        }
    }
}

/// Resolves one acting vnode's eq.-(3) target at commit time: honor the
/// speculation when read-set validation proves the committed actions'
/// write set cannot have changed its answer, else re-walk the live
/// state. Returns the target and whether the speculation was honored.
/// One call site per intent arm, so the validation sequence cannot
/// drift between migrations and profit replications.
#[allow(clippy::too_many_arguments)]
fn resolve_spec_target(
    index: &mut PlacementIndex,
    brute_force: bool,
    ctx: &PlacementContext<'_>,
    existing: &[ServerId],
    partition_size: u64,
    region_queries: &[RegionQueries],
    prox: &mut ProximityCache,
    rent_below: Option<f64>,
    spec_live: bool,
    pre: &PreDecision,
    reads: &[ServerId],
    writes: &mut SpecWriteSet,
    locs: &mut Vec<Location>,
) -> (Option<(ServerId, f64)>, bool) {
    if spec_live
        && validate_speculation(
            ctx,
            existing,
            partition_size,
            region_queries,
            rent_below,
            prox,
            pre.spec,
            writes,
            reads,
            pre.spec_reads_all,
            locs,
        )
    {
        (pre.spec, true)
    } else {
        let target = select_target(
            index,
            brute_force,
            ctx,
            existing,
            partition_size,
            region_queries,
            prox,
            rent_below,
        );
        (target, false)
    }
}

/// The read set of one slot's speculative walk, sliced out of the
/// pipeline's flat arena.
fn spec_reads<'a>(pipeline: &'a EpochPipeline, pre: &PreDecision) -> &'a [ServerId] {
    let start = pre.spec_reads_start as usize;
    &pipeline.spec_reads[start..start + pre.spec_reads_len as usize]
}

/// Routes one eq.-(3) target selection through the rent-sorted index or
/// the brute-force oracle scan, per configuration. The two are bit-for-bit
/// equivalent (property-tested in `placement`); the oracle exists for the
/// equivalence tests and the `epoch_loop` benchmark's "before" side.
#[allow(clippy::too_many_arguments)]
fn select_target(
    index: &mut PlacementIndex,
    brute_force: bool,
    ctx: &PlacementContext<'_>,
    existing: &[ServerId],
    partition_size: u64,
    region_queries: &[RegionQueries],
    prox: &mut ProximityCache,
    rent_below: Option<f64>,
) -> Option<(ServerId, f64)> {
    if brute_force {
        economic_target(ctx, existing, partition_size, region_queries, rent_below)
    } else {
        index.economic_target(
            ctx,
            existing,
            partition_size,
            region_queries,
            rent_below,
            prox,
        )
    }
}

/// Outcome of an executed transfer: `logical` is the size the economy
/// prices and the capacity meters debit (identical across backends);
/// `measured` is what the storage backend physically streamed (equal to
/// `logical` for the mem oracle, real WAL + SSTable bytes for LSM).
#[derive(Debug, Clone, Copy)]
struct Transfer {
    logical: u64,
    measured: u64,
}

/// Accumulates a flushed placement's measured transfer bytes into the
/// matching per-kind counter.
fn count_measured(actions: &mut ActionCounts, kind: &DeferredKind, measured: u64) {
    match kind {
        DeferredKind::Replication { .. } => actions.measured_replicated_bytes += measured,
        DeferredKind::Migration { .. } => actions.measured_migrated_bytes += measured,
        DeferredKind::Suicide { .. } => {}
    }
}

/// Outcome of one action's sequential resolution — what the vnode decided,
/// and against which replica/target — before its meters move and its
/// placement applies.
enum Resolved {
    Stay,
    Suicide { idx: usize },
    Migrate { idx: usize, target: ServerId },
    Replicate { target: ServerId },
}

/// The meter half of a replication: feasibility checks and the bandwidth /
/// storage debits on both ends — everything `exec_replication` does
/// before forking the source's store. All-or-nothing; returns the source
/// replica index and the logical transfer size on success.
fn plan_replication(
    cluster: &mut Cluster,
    partition: &PartitionState,
    target: ServerId,
) -> Option<(usize, u64)> {
    if partition.has_replica_on(target) {
        return None;
    }
    // Pick a source replica whose server still has replication bandwidth.
    let mut chosen: Option<(usize, u64)> = None;
    for (idx, replica) in partition.replicas.iter().enumerate() {
        let size = partition.synthetic_bytes + replica.store.logical_bytes();
        let ok = cluster
            .get_alive(replica.server)
            .is_some_and(|s| s.usage.replication_used < s.capacities.replication_bw);
        if ok {
            chosen = Some((idx, size));
            break;
        }
    }
    let (src_idx, size) = chosen?;
    let dst_ok = cluster.get_alive(target).is_some_and(|s| {
        s.usage.replication_used < s.capacities.replication_bw && s.storage_free() >= size
    });
    if !dst_ok {
        return None;
    }
    // Debit both ends (pre-checked; cannot fail).
    {
        let src = cluster
            .get_mut(partition.replicas[src_idx].server)
            .expect("source exists");
        let caps = src.capacities;
        let ok = src.usage.reserve_replication_bw(&caps, size);
        debug_assert!(ok);
    }
    {
        let dst = cluster.get_mut(target).expect("target exists");
        let caps = dst.capacities;
        let ok =
            dst.usage.reserve_replication_bw(&caps, size) && dst.usage.reserve_storage(&caps, size);
        debug_assert!(ok);
    }
    Some((src_idx, size))
}

/// Adds a replica of `partition` on `target`: consumes replication
/// bandwidth on a source replica's server and on the target, reserves
/// storage at the target, and forks the source's store (a shared COW
/// handle under the mem backend, a physical file copy under LSM).
/// All-or-nothing; returns the transfer on success. Composed of the plan
/// half and the deferred-apply half the batched decision commit uses —
/// recomposed here for the callers outside that commit (the availability
/// repair pass, emergency relocations).
fn exec_replication(
    cluster: &mut Cluster,
    partition: &mut PartitionState,
    target: ServerId,
    vnode: VnodeId,
    window: usize,
    epoch: u64,
) -> Option<Transfer> {
    let (src_idx, size) = plan_replication(cluster, partition, target)?;
    let measured = apply_deferred(
        &DeferredKind::Replication {
            src_idx,
            target,
            vid: vnode,
            window,
            epoch,
        },
        partition,
    );
    Some(Transfer {
        logical: size,
        measured,
    })
}

/// The meter half of a migration: feasibility checks, the bandwidth
/// debits on both ends, and the storage-charge move — everything
/// `exec_migration` does before reassigning the replica. All-or-nothing;
/// returns the logical transfer size on success.
fn plan_migration(
    cluster: &mut Cluster,
    partition: &PartitionState,
    idx: usize,
    target: ServerId,
) -> Option<u64> {
    if partition.has_replica_on(target) {
        return None;
    }
    let source = partition.replicas[idx].server;
    let size = partition.synthetic_bytes + partition.replicas[idx].store.logical_bytes();
    let src_ok = cluster
        .get_alive(source)
        .is_some_and(|s| s.usage.migration_used < s.capacities.migration_bw);
    let dst_ok = cluster.get_alive(target).is_some_and(|s| {
        s.usage.migration_used < s.capacities.migration_bw && s.storage_free() >= size
    });
    if !src_ok || !dst_ok {
        return None;
    }
    {
        let src = cluster.get_mut(source).expect("source exists");
        let caps = src.capacities;
        let ok = src.usage.reserve_migration_bw(&caps, size);
        debug_assert!(ok);
        src.usage.release_storage(size);
    }
    {
        let dst = cluster.get_mut(target).expect("target exists");
        let caps = dst.capacities;
        let ok =
            dst.usage.reserve_migration_bw(&caps, size) && dst.usage.reserve_storage(&caps, size);
        debug_assert!(ok);
    }
    Some(size)
}

/// Moves replica `idx` of `partition` to `target`: consumes migration
/// bandwidth on both ends, moves the storage charge, resets the balance
/// window. All-or-nothing; returns the transfer on success.
fn exec_migration(
    cluster: &mut Cluster,
    partition: &mut PartitionState,
    idx: usize,
    target: ServerId,
) -> Option<Transfer> {
    let size = plan_migration(cluster, partition, idx, target)?;
    let measured = apply_deferred(&DeferredKind::Migration { idx, target }, partition);
    Some(Transfer {
        logical: size,
        measured,
    })
}

/// The meter half of a suicide: releases the replica's storage charge
/// (the replica itself is removed by the apply half).
fn plan_suicide(cluster: &mut Cluster, partition: &PartitionState, idx: usize) {
    let replica = &partition.replicas[idx];
    let size = partition.synthetic_bytes + replica.store.logical_bytes();
    if let Some(s) = cluster.get_mut(replica.server) {
        s.usage.release_storage(size);
    }
}

/// Deletes replica `idx` of `partition`, releasing its storage.
fn exec_suicide(cluster: &mut Cluster, partition: &mut PartitionState, idx: usize) {
    plan_suicide(cluster, partition, idx);
    apply_deferred(&DeferredKind::Suicide { idx }, partition);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::LevelSpec;
    use skute_cluster::Capacities;

    const GIB: u64 = 1 << 30;

    fn paper_cluster(topology: &Topology) -> Cluster {
        Cluster::from_topology(topology, |i, location| ServerSpec {
            location,
            capacities: Capacities::paper(10 * GIB, 5_000.0),
            monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
            confidence: 1.0,
        })
    }

    fn small_cloud() -> (SkuteCloud, AppId) {
        let topology = Topology::paper();
        let cluster = paper_cluster(&topology);
        let mut cloud = SkuteCloud::new(SkuteConfig::paper(), topology, cluster);
        let app = cloud
            .create_application(AppSpec::new("t").level(LevelSpec::new(3, 16)))
            .unwrap();
        (cloud, app)
    }

    #[test]
    fn create_application_seeds_one_replica_per_partition() {
        let (cloud, app) = small_cloud();
        assert_eq!(cloud.ring_vnodes(app, 0).unwrap(), 16);
        for pid in cloud.partition_ids(app, 0).unwrap() {
            assert_eq!(cloud.replica_servers(app, 0, pid).unwrap().len(), 1);
        }
    }

    #[test]
    fn repairs_grow_partitions_to_sla() {
        let (mut cloud, app) = small_cloud();
        for _ in 0..6 {
            cloud.begin_epoch();
            cloud.end_epoch();
        }
        let threshold = cloud.applications()[0].levels[0].threshold;
        for pid in cloud.partition_ids(app, 0).unwrap() {
            let servers = cloud.replica_servers(app, 0, pid).unwrap();
            assert!(
                servers.len() >= 3,
                "partition {pid} has {} replicas",
                servers.len()
            );
            let placed: Vec<_> = servers
                .iter()
                .map(|id| {
                    let s = cloud.cluster().get(*id).unwrap();
                    (s.location, s.confidence)
                })
                .collect();
            assert!(availability_of(&placed) >= threshold);
        }
    }

    #[test]
    fn put_get_roundtrip_across_epochs() {
        let (mut cloud, app) = small_cloud();
        cloud.begin_epoch();
        cloud.put(app, 0, b"user:1", b"alpha".to_vec()).unwrap();
        cloud.end_epoch();
        cloud.begin_epoch();
        assert_eq!(
            cloud.get(app, 0, b"user:1").unwrap().unwrap().as_ref(),
            b"alpha"
        );
        cloud.put(app, 0, b"user:1", b"beta".to_vec()).unwrap();
        assert_eq!(
            cloud.get(app, 0, b"user:1").unwrap().unwrap().as_ref(),
            b"beta"
        );
        cloud.delete(app, 0, b"user:1").unwrap();
        assert_eq!(cloud.get(app, 0, b"user:1").unwrap(), None);
        assert_eq!(cloud.get(app, 0, b"missing").unwrap(), None);
    }

    #[test]
    fn data_survives_replication_and_failure() {
        let (mut cloud, app) = small_cloud();
        cloud.begin_epoch();
        cloud.put(app, 0, b"k", b"v".to_vec()).unwrap();
        for _ in 0..5 {
            cloud.begin_epoch();
            cloud.end_epoch();
        }
        // Fail the first replica's server of the key's partition.
        let pid = {
            let ids = cloud.partition_ids(app, 0).unwrap();
            *ids.first().unwrap()
        };
        let victim = cloud.replica_servers(app, 0, pid).unwrap()[0];
        cloud.retire_server(victim);
        assert_eq!(cloud.get(app, 0, b"k").unwrap().unwrap().as_ref(), b"v");
    }

    #[test]
    fn retire_last_replica_counts_loss_and_reseeds() {
        let topology = Topology::paper();
        let cluster = paper_cluster(&topology);
        let mut cloud = SkuteCloud::new(SkuteConfig::paper(), topology, cluster);
        let app = cloud
            .create_application(AppSpec::new("t").level(LevelSpec::new(1, 4)))
            .unwrap();
        // No epochs run: every partition still has exactly one replica.
        let pid = cloud.partition_ids(app, 0).unwrap()[0];
        let server = cloud.replica_servers(app, 0, pid).unwrap()[0];
        cloud.retire_server(server);
        let report = {
            cloud.begin_epoch();
            cloud.end_epoch()
        };
        // Reseeded: the partition exists with one fresh replica.
        assert_eq!(cloud.replica_servers(app, 0, pid).unwrap().len(), 1);
        // Loss was counted in the epoch-0 window, before begin_epoch reset;
        // re-check by failing again inside an open epoch.
        let server2 = cloud.replica_servers(app, 0, pid).unwrap()[0];
        cloud.begin_epoch();
        cloud.retire_server(server2);
        let report2 = cloud.end_epoch();
        assert_eq!(report2.partitions_lost, 1);
        let _ = report;
    }

    #[test]
    fn synthetic_ingest_accounts_storage() {
        let (mut cloud, app) = small_cloud();
        cloud.begin_epoch();
        let used_before = cloud.cluster().total_storage_used();
        cloud.ingest_synthetic(app, 0, b"obj1", 500 * 1024).unwrap();
        let used_after = cloud.cluster().total_storage_used();
        // One replica so far (epoch 1 before any end_epoch): charged once.
        assert_eq!(used_after - used_before, 500 * 1024);
    }

    #[test]
    fn epoch_report_counts_match_state() {
        let (mut cloud, app) = small_cloud();
        cloud.begin_epoch();
        let report = cloud.end_epoch();
        assert_eq!(report.epoch, 1);
        assert_eq!(report.total_vnodes(), cloud.ring_vnodes(app, 0).unwrap());
        assert_eq!(report.alive_servers, 200);
        assert!(report.actions.availability_replications > 0);
        let ring = report.ring(RingId::new(app.0, 0)).unwrap();
        assert_eq!(ring.partitions, 16);
        assert_eq!(ring.target_replicas, 3);
    }

    #[test]
    fn queries_accrue_utility_and_load() {
        let (mut cloud, app) = small_cloud();
        // Converge first.
        for _ in 0..5 {
            cloud.begin_epoch();
            cloud.end_epoch();
        }
        cloud.begin_epoch();
        let regions = skute_geo::ClientGeo::Uniform.region_weights(cloud.topology());
        cloud.deliver_queries(app, 0, 3000.0, &regions).unwrap();
        let report = cloud.end_epoch();
        let ring = report.ring(RingId::new(app.0, 0)).unwrap();
        assert!((ring.queries_offered - 3000.0).abs() < 1e-6);
        assert!(
            ring.queries_served > 2999.0,
            "capacity is ample: all served"
        );
        assert!(report.utility_earned > 0.0);
        assert!(report.rent_paid > 0.0);
    }

    #[test]
    fn splits_trigger_above_threshold() {
        let topology = Topology::paper();
        let cluster = paper_cluster(&topology);
        let mut config = SkuteConfig::paper();
        config.split_threshold_bytes = 1024; // tiny for the test
        let mut cloud = SkuteCloud::new(config, topology, cluster);
        let app = cloud
            .create_application(AppSpec::new("t").level(LevelSpec::new(2, 2)))
            .unwrap();
        cloud.begin_epoch();
        for i in 0..64u32 {
            cloud
                .ingest_synthetic(app, 0, &i.to_le_bytes(), 256)
                .unwrap();
        }
        let report = cloud.end_epoch();
        assert!(report.actions.splits > 0);
        assert!(cloud.partition_ids(app, 0).unwrap().len() > 2);
    }

    #[test]
    fn splits_preserve_real_data() {
        let topology = Topology::paper();
        let cluster = paper_cluster(&topology);
        let mut config = SkuteConfig::paper();
        config.split_threshold_bytes = 512;
        let mut cloud = SkuteCloud::new(config, topology, cluster);
        let app = cloud
            .create_application(AppSpec::new("t").level(LevelSpec::new(2, 1)))
            .unwrap();
        cloud.begin_epoch();
        for i in 0..64u32 {
            let key = format!("key:{i}");
            cloud
                .put(app, 0, key.as_bytes(), vec![i as u8; 16])
                .unwrap();
        }
        cloud.end_epoch();
        assert!(cloud.partition_ids(app, 0).unwrap().len() > 1);
        for i in 0..64u32 {
            let key = format!("key:{i}");
            let v = cloud.get(app, 0, key.as_bytes()).unwrap().unwrap();
            assert_eq!(v.as_ref(), &vec![i as u8; 16][..]);
        }
    }

    #[test]
    fn anti_entropy_repairs_injected_divergence() {
        let (mut cloud, app) = small_cloud();
        cloud.begin_epoch();
        cloud.put(app, 0, b"base", b"v".to_vec()).unwrap();
        for _ in 0..5 {
            cloud.begin_epoch();
            cloud.end_epoch();
        }
        assert_eq!(
            cloud.anti_entropy(app, 0).unwrap(),
            AntiEntropyReport::default(),
            "replicas start in sync"
        );
        // Inject divergence: a newer version of the key that only one
        // replica holds (as if a full server had rejected the write on the
        // others).
        let pid = cloud.rings[0].ring.route(b"base");
        let replica_count = {
            let p = cloud.rings[0].partitions.get_mut(&pid).unwrap();
            let record = Record::put(&b"ghost-value"[..], Version::new(99, 0, 0));
            let old = p.replicas[0].store.get(b"base").unwrap().logical_size;
            let grow = record.logical_size - old;
            assert!(p.replicas[0].store.apply(&b"base"[..], record));
            let server = p.replicas[0].server;
            let s = cloud.cluster.get_mut(server).unwrap();
            let caps = s.capacities;
            assert!(s.usage.reserve_storage(&caps, grow));
            p.replicas.len()
        };
        let report = cloud.anti_entropy(app, 0).unwrap();
        assert_eq!(report.partitions_repaired, 1);
        // The diverged replica already held the union; the others received
        // copy-on-write handles of it.
        assert_eq!(report.replicas_in_sync, 1);
        assert_eq!(report.replicas_updated, replica_count - 1);
        assert_eq!(report.replicas_deferred, 0);
        assert_eq!(
            cloud.anti_entropy(app, 0).unwrap(),
            AntiEntropyReport::default(),
            "second pass is a no-op"
        );
        // Every replica now holds the ghost key with exact accounting, and
        // the repaired replicas share one store allocation.
        let p = &cloud.rings[0].partitions[&pid];
        for r in &p.replicas {
            assert_eq!(r.store.get_value(b"base").unwrap().as_ref(), b"ghost-value");
        }
        assert!(
            p.replicas[1..]
                .windows(2)
                .all(|w| w[0].store.shares_storage_with(&w[1].store)),
            "anti-entropy writebacks share the union allocation"
        );
        for r in &p.replicas {
            let server = cloud.cluster.get(r.server).unwrap();
            assert!(server.usage.storage_used >= r.store.logical_bytes());
        }
    }

    #[test]
    fn quorum_read_resolves_divergence_and_schedules_repair() {
        let (mut cloud, app) = small_cloud();
        cloud.begin_epoch();
        cloud.put(app, 0, b"q", b"v1".to_vec()).unwrap();
        for _ in 0..6 {
            cloud.begin_epoch();
            cloud.end_epoch();
        }
        let pid = cloud.rings[0].ring.route(b"q");
        let k = cloud.rings[0].partitions[&pid].replicas.len();
        assert!(k >= 3, "partition reached its SLA replica count");
        // Inject divergence: a newer version only replica 0 holds.
        {
            let p = cloud.rings[0].partitions.get_mut(&pid).unwrap();
            let record = Record::put(&b"v2"[..], Version::new(99, 0, 0));
            let old = p.replicas[0].store.get(b"q").unwrap().logical_size;
            let grow = record.logical_size.saturating_sub(old);
            assert!(p.replicas[0].store.apply(&b"q"[..], record));
            let server = p.replicas[0].server;
            let s = cloud.cluster.get_mut(server).unwrap();
            let caps = s.capacities;
            assert!(s.usage.reserve_storage(&caps, grow));
        }
        cloud.begin_epoch();
        let read = cloud
            .client_get_with(app, 0, b"q", None, ReadConsistency::Quorum)
            .unwrap();
        assert_eq!(read.value.as_ref().unwrap().as_ref(), b"v2", "LWW winner");
        assert!(!read.degraded);
        assert_eq!(read.replicas_read, k / 2 + 1);
        assert!(
            read.repairs_scheduled >= 1,
            "the stale majority replica is observed and queued"
        );
        // The epoch-end drain converges every replica onto the winner.
        cloud.end_epoch();
        let p = &cloud.rings[0].partitions[&pid];
        for r in &p.replicas {
            assert_eq!(r.store.get_value(b"q").unwrap().as_ref(), b"v2");
        }
        cloud.begin_epoch();
        let again = cloud
            .client_get_with(app, 0, b"q", None, ReadConsistency::Quorum)
            .unwrap();
        assert_eq!(again.repairs_scheduled, 0, "nothing left to repair");
        assert_eq!(again.value.unwrap().as_ref(), b"v2");
        cloud.end_epoch();
    }

    #[test]
    fn degraded_quorum_read_still_answers() {
        let (mut cloud, app) = small_cloud();
        cloud.begin_epoch();
        cloud.put(app, 0, b"d", b"v".to_vec()).unwrap();
        for _ in 0..6 {
            cloud.begin_epoch();
            cloud.end_epoch();
        }
        let pid = cloud.rings[0].ring.route(b"d");
        let replicas = cloud.replica_servers(app, 0, pid).unwrap();
        assert!(replicas.len() >= 3);
        // Gray-partition every replica server but the first.
        cloud
            .gray_modes
            .resize(cloud.cluster.len(), GrayMode::Healthy);
        for &s in &replicas[1..] {
            cloud.gray_modes[s.0 as usize] = GrayMode::Partitioned;
        }
        let read = cloud
            .client_get_with(app, 0, b"d", None, ReadConsistency::Quorum)
            .unwrap();
        assert!(read.degraded, "sub-quorum reachability is flagged");
        assert_eq!(read.value.as_ref().unwrap().as_ref(), b"v");
        assert_eq!(read.served_by, replicas[0]);
        // Nothing reachable at all: the read still answers from the
        // local stores rather than failing outright.
        cloud.gray_modes[replicas[0].0 as usize] = GrayMode::Partitioned;
        let read = cloud
            .client_get_with(app, 0, b"d", None, ReadConsistency::Quorum)
            .unwrap();
        assert!(read.degraded);
        assert_eq!(read.value.unwrap().as_ref(), b"v");
    }

    #[test]
    fn writes_skip_gray_blocked_replicas_without_losing_acks() {
        let (mut cloud, app) = small_cloud();
        cloud.begin_epoch();
        cloud.put(app, 0, b"g", b"v1".to_vec()).unwrap();
        for _ in 0..6 {
            cloud.begin_epoch();
            cloud.end_epoch();
        }
        cloud.begin_epoch();
        let pid = cloud.rings[0].ring.route(b"g");
        let replicas = cloud.replica_servers(app, 0, pid).unwrap();
        assert!(replicas.len() >= 3);
        // One read-only replica: the write lands on the healthy majority
        // and still acks (w = ⌊k/2⌋ + 1 reached without the gray server).
        cloud
            .gray_modes
            .resize(cloud.cluster.len(), GrayMode::Healthy);
        cloud.gray_modes[replicas[0].0 as usize] = GrayMode::ReadOnly;
        cloud.put(app, 0, b"g", b"v2".to_vec()).unwrap();
        {
            let p = &cloud.rings[0].partitions[&pid];
            assert_eq!(
                p.replicas[0].store.get_value(b"g").unwrap().as_ref(),
                b"v1",
                "the read-only replica missed the write"
            );
            assert_eq!(p.replicas[1].store.get_value(b"g").unwrap().as_ref(), b"v2");
        }
        // Once the server recovers, a quorum read observes the stale
        // replica, serves the acked value, and schedules its repair.
        cloud.gray_modes[replicas[0].0 as usize] = GrayMode::Healthy;
        let read = cloud
            .client_get_with(app, 0, b"g", None, ReadConsistency::Quorum)
            .unwrap();
        assert_eq!(read.value.unwrap().as_ref(), b"v2", "acked write survives");
        assert_eq!(read.repairs_scheduled, 1);
        cloud.end_epoch();
        let p = &cloud.rings[0].partitions[&pid];
        for r in &p.replicas {
            assert_eq!(r.store.get_value(b"g").unwrap().as_ref(), b"v2");
        }
    }

    /// Per-epoch served/dropped meter bits of every alive server.
    type MeterBits = Vec<(ServerId, u64, u64)>;

    /// Runs a query-capacity-constrained cloud for `epochs` and returns
    /// per-epoch reports plus every alive server's served/dropped meter
    /// bits — the conservation fingerprint of the traffic commit.
    fn saturated_run(
        sequential_commit: bool,
        threads: usize,
        query_capacity: f64,
        queries: f64,
        epochs: usize,
    ) -> Vec<(EpochReport, MeterBits)> {
        let topology = Topology::paper();
        let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
            location,
            capacities: Capacities::paper(10 * GIB, query_capacity),
            monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
            confidence: 1.0,
        });
        let mut config = SkuteConfig::paper().with_threads(threads);
        config.sequential_traffic_commit = sequential_commit;
        let mut cloud = SkuteCloud::new(config, topology, cluster);
        let app = cloud
            .create_application(AppSpec::new("t").level(LevelSpec::new(3, 24)))
            .unwrap();
        let regions = skute_geo::ClientGeo::Uniform.region_weights(cloud.topology());
        let mut out = Vec::new();
        for _ in 0..epochs {
            cloud.begin_epoch();
            cloud.deliver_queries(app, 0, queries, &regions).unwrap();
            let report = cloud.end_epoch();
            let meters: Vec<(ServerId, u64, u64)> = cloud
                .cluster()
                .alive()
                .map(|s| {
                    (
                        s.id,
                        s.usage.queries_served.to_bits(),
                        s.usage.queries_dropped.to_bits(),
                    )
                })
                .collect();
            out.push((report, meters));
        }
        out
    }

    #[test]
    fn pipeline_parks_workers_for_the_cloud_lifetime() {
        // An inline cloud spawns nothing; a threaded cloud parks
        // `threads - 1` workers at construction and keeps them across
        // epochs (the persistent pool's whole point — no per-phase
        // spawns).
        let (cloud, _) = small_cloud();
        assert_eq!(cloud.pipeline().threads(), 1);
        assert_eq!(cloud.pipeline().live_workers(), 0);
        let topology = Topology::paper();
        let cluster = paper_cluster(&topology);
        let mut cloud = SkuteCloud::new(SkuteConfig::paper().with_threads(4), topology, cluster);
        let app = cloud
            .create_application(AppSpec::new("t").level(LevelSpec::new(3, 16)))
            .unwrap();
        assert_eq!(cloud.pipeline().live_workers(), 3);
        for _ in 0..3 {
            cloud.begin_epoch();
            let regions = skute_geo::ClientGeo::Uniform.region_weights(cloud.topology());
            cloud.deliver_queries(app, 0, 500.0, &regions).unwrap();
            cloud.end_epoch();
            assert_eq!(
                cloud.pipeline().live_workers(),
                3,
                "dispatches must reuse the parked workers, not respawn"
            );
        }
    }

    #[test]
    fn saturated_traffic_commit_matches_sequential_oracle() {
        // 200 servers × 12 queries of capacity against 5000 offered
        // queries: meters saturate, so the reconciliation's feasibility
        // peek fails and the deferred sequential fallback engages. The
        // parallel commit must still be bitwise identical to the oracle —
        // reports and per-server served/dropped meters — at every thread
        // count.
        let parallel = saturated_run(false, 1, 12.0, 5_000.0, 6);
        assert_eq!(
            parallel,
            saturated_run(true, 1, 12.0, 5_000.0, 6),
            "sharded commit diverges from the sequential oracle under saturation"
        );
        assert_eq!(
            parallel,
            saturated_run(false, 8, 12.0, 5_000.0, 6),
            "sharded commit is not thread-count invariant under saturation"
        );
        // The scenario genuinely exercises the deferred path: queries were
        // dropped, which only the capacity-bound branch can produce.
        let dropped: f64 = parallel
            .iter()
            .flat_map(|(r, _)| r.rings.iter().map(|ring| ring.queries_dropped))
            .sum();
        assert!(dropped > 0.0, "test must exercise capacity exhaustion");
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(6))]
        /// Conservation equivalence as a property: across random capacity
        /// regimes (ample through heavily saturated) and traffic volumes,
        /// the parallel traffic commit delivers and spills exactly the
        /// same queries per server per epoch as the sequential oracle —
        /// asserted bitwise on reports and meters, at 1 and 8 threads.
        #[test]
        fn prop_traffic_commit_conservation_equivalence(
            query_capacity in 5.0f64..80.0,
            queries in 200.0f64..9_000.0,
        ) {
            let parallel = saturated_run(false, 1, query_capacity, queries, 3);
            let oracle = saturated_run(true, 1, query_capacity, queries, 3);
            proptest::prop_assert_eq!(&parallel, &oracle);
            let threaded = saturated_run(false, 8, query_capacity, queries, 3);
            proptest::prop_assert_eq!(&parallel, &threaded);
        }
    }

    #[test]
    fn deliver_queries_multi_matches_consecutive_single_calls() {
        // Batching distinct rings into one multi call (one plan dispatch)
        // must be bitwise identical to consecutive per-ring calls, and
        // same-ring batches must stack like consecutive calls.
        let build = || {
            let topology = Topology::paper();
            let cluster = paper_cluster(&topology);
            let mut cloud = SkuteCloud::new(SkuteConfig::paper(), topology, cluster);
            let app = cloud
                .create_application(
                    AppSpec::new("t")
                        .level(LevelSpec::new(2, 8))
                        .level(LevelSpec::new(3, 8)),
                )
                .unwrap();
            for _ in 0..4 {
                cloud.begin_epoch();
                cloud.end_epoch();
            }
            cloud.begin_epoch();
            (cloud, app)
        };
        let fingerprint = |cloud: &mut SkuteCloud| {
            let r = cloud.end_epoch();
            let meters: Vec<u64> = cloud
                .cluster()
                .alive()
                .map(|s| s.usage.queries_served.to_bits())
                .collect();
            (r, meters)
        };
        let (mut single, app) = build();
        let regions = skute_geo::ClientGeo::Uniform.region_weights(single.topology());
        single.deliver_queries(app, 0, 900.0, &regions).unwrap();
        single.deliver_queries(app, 1, 1_400.0, &regions).unwrap();
        single.deliver_queries(app, 0, 300.0, &regions).unwrap();
        let a = fingerprint(&mut single);
        let (mut multi, app) = build();
        multi
            .deliver_queries_multi(vec![
                TrafficBatch {
                    app,
                    level: 0,
                    queries: 900.0,
                    regions: regions.clone(),
                },
                TrafficBatch {
                    app,
                    level: 1,
                    queries: 1_400.0,
                    regions: regions.clone(),
                },
                TrafficBatch {
                    app,
                    level: 0,
                    queries: 300.0,
                    regions: regions.clone(),
                },
            ])
            .unwrap();
        let b = fingerprint(&mut multi);
        assert_eq!(a, b);
        // A bad batch fails the whole call before any traffic lands.
        let (mut bad, app) = build();
        assert!(matches!(
            bad.deliver_queries_multi(vec![
                TrafficBatch {
                    app,
                    level: 0,
                    queries: 500.0,
                    regions: regions.clone(),
                },
                TrafficBatch {
                    app,
                    level: 9,
                    queries: 500.0,
                    regions: regions.clone(),
                },
            ]),
            Err(CoreError::UnknownLevel)
        ));
        let r = bad.end_epoch();
        for ring in &r.rings {
            assert_eq!(ring.queries_offered, 0.0, "no traffic may land");
        }
    }

    #[test]
    fn determinism_same_seed_same_trajectory() {
        let run = |seed: u64| {
            let topology = Topology::paper();
            let cluster = paper_cluster(&topology);
            let mut cloud =
                SkuteCloud::new(SkuteConfig::paper().with_seed(seed), topology, cluster);
            let app = cloud
                .create_application(AppSpec::new("t").level(LevelSpec::new(3, 32)))
                .unwrap();
            let mut sums = Vec::new();
            for _ in 0..4 {
                cloud.begin_epoch();
                let regions = skute_geo::ClientGeo::Uniform.region_weights(cloud.topology());
                cloud.deliver_queries(app, 0, 1000.0, &regions).unwrap();
                let r = cloud.end_epoch();
                sums.push((r.total_vnodes(), r.actions));
            }
            sums
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds explore different paths");
    }

    #[test]
    fn unknown_app_and_level_error() {
        let (mut cloud, app) = small_cloud();
        assert!(matches!(
            cloud.get(AppId(99), 0, b"k"),
            Err(CoreError::UnknownApp)
        ));
        assert!(matches!(
            cloud.get(app, 9, b"k"),
            Err(CoreError::UnknownLevel)
        ));
    }

    #[test]
    fn multi_level_app_gets_one_ring_per_level() {
        let topology = Topology::paper();
        let cluster = paper_cluster(&topology);
        let mut cloud = SkuteCloud::new(SkuteConfig::paper(), topology, cluster);
        let app = cloud
            .create_application(
                AppSpec::new("tiered")
                    .level(LevelSpec::new(2, 8))
                    .level(LevelSpec::new(4, 4)),
            )
            .unwrap();
        assert_eq!(cloud.applications()[0].levels.len(), 2);
        assert!(cloud.ring_vnodes(app, 0).is_ok());
        assert!(cloud.ring_vnodes(app, 1).is_ok());
        cloud.begin_epoch();
        cloud.put(app, 0, b"cheap", b"1".to_vec()).unwrap();
        cloud.put(app, 1, b"precious", b"2".to_vec()).unwrap();
        for _ in 0..8 {
            cloud.begin_epoch();
            cloud.end_epoch();
        }
        // Higher level converges to more replicas per partition.
        let mean = |level: u32| {
            let pids = cloud.partition_ids(app, level).unwrap();
            let total: usize = pids
                .iter()
                .map(|p| cloud.replica_servers(app, level, *p).unwrap().len())
                .sum();
            total as f64 / pids.len() as f64
        };
        assert!(mean(1) > mean(0));
        assert_eq!(
            cloud.get(app, 1, b"precious").unwrap().unwrap().as_ref(),
            b"2"
        );
    }

    #[test]
    fn popularity_assignment_shapes_query_distribution() {
        let (mut cloud, app) = small_cloud();
        cloud
            .assign_popularity(app, 0, |i| if i == 0 { 100.0 } else { 0.0 })
            .unwrap();
        for _ in 0..4 {
            cloud.begin_epoch();
            cloud.end_epoch();
        }
        cloud.begin_epoch();
        let regions = skute_geo::ClientGeo::Uniform.region_weights(cloud.topology());
        cloud.deliver_queries(app, 0, 1000.0, &regions).unwrap();
        let report = cloud.end_epoch();
        let ring = report.ring(RingId::new(app.0, 0)).unwrap();
        assert!((ring.queries_offered - 1000.0).abs() < 1e-6);
    }
}
