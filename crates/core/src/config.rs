//! Cloud-wide configuration.

use skute_economy::EconomyConfig;
use skute_store::{BackendKind, FaultPlan};

/// Number of bytes in a mebibyte.
const MIB: u64 = 1024 * 1024;

/// Default RNG seed of the paper configuration.
pub const DEFAULT_SEED: u64 = 0x5C07E;

/// Configuration of a [`crate::SkuteCloud`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkuteConfig {
    /// Virtual-economy parameters (eq. 1, 3, 4, 5 and the decision window).
    pub economy: EconomyConfig,
    /// Partition capacity: "a maximum partition capacity of 256 MB after
    /// which the data of the partition is split into two new ones" (§III-A).
    pub split_threshold_bytes: u64,
    /// Calibration fraction of
    /// [`crate::availability::threshold_for_replicas`].
    pub availability_frac: f64,
    /// Seed of the cloud's deterministic RNG (initial placement and agent
    /// iteration order).
    pub seed: u64,
    /// Upper bound on availability-restoring replications per partition per
    /// epoch (bandwidth budgets also gate transfers).
    pub max_repairs_per_partition_per_epoch: usize,
    /// Forces every eq.-(3) target selection through the brute-force
    /// full-cluster scan instead of the rent-sorted
    /// [`crate::placement::PlacementIndex`]. The two are bit-for-bit
    /// equivalent; this switch exists as the equivalence oracle for tests
    /// and as the "before" side of the `epoch_loop` benchmark.
    pub brute_force_placement: bool,
    /// Routes the traffic-delivery **commit** through the purely
    /// sequential ring-order loop instead of the two-pass reconciled
    /// commit (parallel accrual of spill-free deliveries plus a
    /// sequential capacity reconciliation at the barrier). The two are
    /// bit-for-bit equivalent — the reconciliation defers every partition
    /// whose planned deliveries could touch a saturating capacity meter
    /// back to the sequential algorithm — so this switch exists as the
    /// equivalence oracle for tests and CI's determinism matrix. An
    /// inline pipeline (`threads = 1`) always commits sequentially: the
    /// reconciled commit's only benefit is offloading the accrual pass to
    /// workers, and there are none to offload to.
    pub sequential_traffic_commit: bool,
    /// Disables speculative eq.-(3) targets entirely: the decision plan
    /// pass computes none, so the commit pass re-walks every acting vnode
    /// against the live state — the pre-speculation sequential oracle.
    /// The default pipeline instead validates each speculation's read set
    /// against the servers mutated by the preceding committed actions and
    /// honors it whenever the touches provably cannot have changed the
    /// answer (see `crate::placement::validate_speculation`), so the two
    /// modes are **bit-for-bit identical** up to the speculation hit/miss
    /// counters. This switch exists as the equivalence oracle for tests
    /// and CI's determinism matrix (`skute-sim --no-speculation`).
    pub no_speculation: bool,
    /// Storage engine replica stores run on. [`BackendKind::Mem`] is the
    /// fast in-memory default and bit-exact oracle; [`BackendKind::Lsm`]
    /// gives every replica a durable WAL + SSTable store. Same-seed
    /// trajectories are **bitwise identical across backends** — decisions
    /// and the CSV consume only logical byte accounting, which the engines
    /// share; only durability and the measured transfer counters differ
    /// (CI's determinism matrix compares the two).
    pub backend: BackendKind,
    /// Seeded storage-fault plan replica stores run under (LSM only; the
    /// mem oracle has no IO path to fault). Injected faults are transient
    /// by construction and repaired inside the store's IO path, so
    /// same-seed same-plan trajectories stay **bitwise identical** —
    /// degradation surfaces only in fault statistics and measured
    /// transfer bytes (`skute-sim --fault-plan` / `--fault-seed`).
    pub fault_plan: FaultPlan,
    /// Routes the availability-repair pass through the purely sequential
    /// per-repair target walk instead of the plan/validate protocol (a
    /// parallel speculative prepass over the below-threshold partitions,
    /// then read-set validation at commit). The two are **bit-for-bit
    /// identical** up to the speculation hit/miss counters; this switch
    /// exists as the equivalence oracle for tests and CI's fault matrix
    /// (`skute-sim --sequential-repair`).
    pub sequential_repair: bool,
    /// Routes the economic-decision **commit** through the one-action-at-a-
    /// time sequential walk instead of the conflict-free batched commit
    /// (actions touching pairwise-disjoint servers and partitions apply
    /// their partition-local placements in one worker-pool dispatch; meter
    /// movements stay sequential either way). The two are **bit-for-bit
    /// identical** up to the batch observability counters
    /// (`ActionCounts::decision_batches` / `max_batch_width` /
    /// `batch_conflicts`, which the oracle leaves at zero); this switch
    /// exists as the equivalence oracle for tests and CI's determinism
    /// matrix (`skute-sim --sequential-decisions`).
    pub sequential_decisions: bool,
    /// Scheduled scrub cadence: every `scrub_every` epochs, `end_epoch`
    /// runs [`crate::SkuteCloud::scrub_quarantined`] over every ring and
    /// drains the read-repair queue quorum reads populated, so divergence
    /// and quarantines are amortized away without operator action. `0`
    /// (the default) disables the schedule — existing trajectories are
    /// untouched. Scrub rebuilds are observability-only, so enabling the
    /// cadence cannot perturb the decision trajectory.
    pub scrub_every: u64,
    /// Worker threads of the epoch pipeline's parallel phases (`0` = the
    /// machine's available parallelism; explicit budgets are honored
    /// exactly — beyond the host's core count that costs wall clock,
    /// never correctness). Same-seed trajectories are **bitwise identical
    /// at every thread count**: parallel phases only precompute
    /// order-independent per-partition work, and every effect on shared
    /// state is committed in a deterministic order at the phase barrier
    /// (see `crate::pipeline`).
    pub threads: usize,
}

impl SkuteConfig {
    /// The calibration used in the paper-reproduction experiments.
    pub fn paper() -> Self {
        Self {
            economy: EconomyConfig::paper(),
            split_threshold_bytes: 256 * MIB,
            availability_frac: 0.2,
            seed: DEFAULT_SEED,
            max_repairs_per_partition_per_epoch: 4,
            brute_force_placement: false,
            sequential_traffic_commit: false,
            no_speculation: false,
            backend: BackendKind::Mem,
            fault_plan: FaultPlan::none(),
            sequential_repair: false,
            sequential_decisions: false,
            scrub_every: 0,
            threads: 1,
        }
    }

    /// Returns a copy with replica stores on the given storage backend.
    /// The trajectory stays bitwise identical; only durability and the
    /// measured transfer counters change.
    #[must_use]
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Returns a copy with speculative eq.-(3) targets disabled (the
    /// re-walk-everything oracle; see the field docs). Trajectories stay
    /// bitwise identical up to the speculation hit/miss counters.
    #[must_use]
    pub fn with_no_speculation(mut self) -> Self {
        self.no_speculation = true;
        self
    }

    /// Returns a copy routed through the sequential traffic-delivery
    /// commit (the equivalence oracle; see the field docs). Trajectories
    /// stay bitwise identical in either mode.
    #[must_use]
    pub fn with_sequential_traffic_commit(mut self) -> Self {
        self.sequential_traffic_commit = true;
        self
    }

    /// Returns a copy running the epoch pipeline's parallel phases on
    /// `threads` workers (`0` = available parallelism). The trajectory
    /// stays bitwise identical; only wall-clock changes.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Returns a copy routed through the brute-force placement scan (the
    /// equivalence oracle; see the field docs).
    #[must_use]
    pub fn with_brute_force_placement(mut self) -> Self {
        self.brute_force_placement = true;
        self
    }

    /// Returns a copy with a different RNG seed (deterministic replay with
    /// a new sample path).
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with replica stores running under the given
    /// storage-fault plan (see the field docs). The trajectory stays
    /// bitwise identical; only fault statistics and measured transfer
    /// bytes change.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Returns a copy injecting **every** fault family, seeded with
    /// `seed` (`skute-sim --fault-seed`).
    #[must_use]
    pub fn with_fault_seed(self, seed: u64) -> Self {
        self.with_fault_plan(FaultPlan::all(seed))
    }

    /// Returns a copy routed through the sequential availability-repair
    /// walk (the equivalence oracle; see the field docs). Trajectories
    /// stay bitwise identical up to the speculation hit/miss counters.
    #[must_use]
    pub fn with_sequential_repair(mut self) -> Self {
        self.sequential_repair = true;
        self
    }

    /// Returns a copy routed through the sequential one-action-at-a-time
    /// decision commit (the equivalence oracle; see the field docs).
    /// Trajectories stay bitwise identical up to the batch observability
    /// counters.
    #[must_use]
    pub fn with_sequential_decisions(mut self) -> Self {
        self.sequential_decisions = true;
        self
    }

    /// Returns a copy scrubbing every `epochs` epochs inside `end_epoch`
    /// (`0` disables the schedule; see the field docs).
    #[must_use]
    pub fn with_scrub_every(mut self, epochs: u64) -> Self {
        self.scrub_every = epochs;
        self
    }

    /// Validates all parameters.
    ///
    /// # Panics
    /// Panics on out-of-range parameters.
    pub fn validate(&self) {
        self.economy.validate();
        assert!(
            self.split_threshold_bytes > 0,
            "split threshold must be positive"
        );
        assert!(
            self.availability_frac > 0.0 && self.availability_frac <= 1.0,
            "availability_frac must be in (0, 1]"
        );
        assert!(
            self.max_repairs_per_partition_per_epoch >= 1,
            "at least one repair per epoch must be allowed"
        );
    }
}

impl Default for SkuteConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        SkuteConfig::paper().validate();
    }

    #[test]
    fn with_seed_changes_only_the_seed() {
        let a = SkuteConfig::paper();
        let b = a.with_seed(42);
        assert_eq!(b.seed, 42);
        assert_eq!(a.split_threshold_bytes, b.split_threshold_bytes);
    }

    #[test]
    fn with_threads_changes_only_the_worker_budget() {
        let a = SkuteConfig::paper();
        let b = a.with_threads(8);
        assert_eq!(a.threads, 1);
        assert_eq!(b.threads, 8);
        assert_eq!(a.seed, b.seed);
        b.validate();
        a.with_threads(0).validate();
    }

    #[test]
    fn with_sequential_traffic_commit_flips_only_the_commit_mode() {
        let a = SkuteConfig::paper();
        let b = a.with_sequential_traffic_commit();
        assert!(!a.sequential_traffic_commit);
        assert!(b.sequential_traffic_commit);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.threads, b.threads);
        b.validate();
    }

    #[test]
    fn with_no_speculation_flips_only_the_oracle_flag() {
        let a = SkuteConfig::paper();
        let b = a.with_no_speculation();
        assert!(!a.no_speculation);
        assert!(b.no_speculation);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.threads, b.threads);
        b.validate();
    }

    #[test]
    fn with_backend_flips_only_the_engine() {
        let a = SkuteConfig::paper();
        let b = a.with_backend(BackendKind::Lsm);
        assert_eq!(a.backend, BackendKind::Mem);
        assert_eq!(b.backend, BackendKind::Lsm);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.threads, b.threads);
        b.validate();
    }

    #[test]
    fn with_fault_plan_flips_only_the_plan() {
        let a = SkuteConfig::paper();
        let b = a.with_fault_seed(7);
        assert!(!a.fault_plan.is_active());
        assert!(b.fault_plan.is_active());
        assert_eq!(b.fault_plan.seed, 7);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.backend, b.backend);
        b.validate();
    }

    #[test]
    fn with_sequential_repair_flips_only_the_oracle_flag() {
        let a = SkuteConfig::paper();
        let b = a.with_sequential_repair();
        assert!(!a.sequential_repair);
        assert!(b.sequential_repair);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.threads, b.threads);
        b.validate();
    }

    #[test]
    fn with_sequential_decisions_flips_only_the_oracle_flag() {
        let a = SkuteConfig::paper();
        let b = a.with_sequential_decisions();
        assert!(!a.sequential_decisions);
        assert!(b.sequential_decisions);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.threads, b.threads);
        b.validate();
    }

    #[test]
    fn with_scrub_every_flips_only_the_cadence() {
        let a = SkuteConfig::paper();
        let b = a.with_scrub_every(16);
        assert_eq!(a.scrub_every, 0, "disabled by default");
        assert_eq!(b.scrub_every, 16);
        assert_eq!(a.seed, b.seed);
        assert_eq!(a.threads, b.threads);
        b.validate();
    }

    #[test]
    #[should_panic(expected = "split threshold")]
    fn zero_split_threshold_rejected() {
        let mut c = SkuteConfig::paper();
        c.split_threshold_bytes = 0;
        c.validate();
    }
}
