//! Cloud-level observability: the [`CloudMetrics`] bundle a
//! [`SkuteCloud`](crate::SkuteCloud) records into when one is attached.
//!
//! Everything here is **observability-only**: metric handles are written
//! by the epoch pipeline but never read back by any decision path, and
//! recording is wait-free atomic adds. A cloud therefore produces
//! bitwise-identical same-seed trajectories with metrics attached or
//! absent — CI's determinism matrix byte-compares exactly that (the
//! metrics-invariance axis), and `tests/observability.rs` pins it at the
//! API level.
//!
//! The catalogue (all families prefixed `skute_`):
//!
//! | family | kind | labels | meaning |
//! |---|---|---|---|
//! | `skute_epoch_phase_seconds` | histogram | `phase` | wall-clock cost per epoch phase (`traffic_plan`, `traffic_commit`, `repair`, `decisions`, `report`) |
//! | `skute_epochs_total` | counter | | epochs closed |
//! | `skute_queries_total` | counter | `outcome` | offered / served / dropped queries (rounded) |
//! | `skute_actions_total` | counter | `action` | replications, migrations, suicides, splits, blocked transfers |
//! | `skute_speculation_total` | counter | `result` | decision-prepass speculation hits / misses |
//! | `skute_decision_batches_total` | counter | | conflict-free decision batches dispatched |
//! | `skute_decision_batch_conflicts_total` | counter | | batches flushed early by a write-set conflict |
//! | `skute_decision_batch_width` | histogram | | widest batch per epoch |
//! | `skute_transfer_bytes_total` | counter | `kind` | logical replication / migration bytes moved |
//! | `skute_insert_failures_total` | counter | | synthetic ingests rejected for capacity |
//! | `skute_partitions_lost_total` | counter | | partitions that lost their last replica |
//! | `skute_scrub_rebuilds_total` | counter | | quarantined replicas re-seeded from peers |
//! | `skute_storage_engine_ops` | gauge | `op` | fleet-wide LSM totals (WAL appends, flushes, compactions), refreshed on scrape |
//! | `skute_storage_fault_recoveries` | gauge | `kind` | fleet-wide injected-fault recoveries, refreshed on scrape |
//! | `skute_read_quorum_reads_total` | counter | | serving-path reads answered at quorum consistency |
//! | `skute_read_quorum_divergent_total` | counter | | quorum reads that observed at least one stale replica |
//! | `skute_degraded_reads_total` | counter | | reads served below their requested consistency (quorum unreachable / no reachable replica) |
//! | `skute_read_repairs_total` | counter | `stage` | stale replicas scheduled by quorum reads / repaired at epoch close |
//! | `skute_server_confidence_bp` | gauge | `stat` | fleet confidence in basis points (min / mean), refreshed each gray epoch |
//! | `skute_gray_degraded_servers` | gauge | | alive servers currently in a degraded gray mode or behind the cut |
//! | `skute_partition_cut_continent` | gauge | | continent currently severed by the fault plan (-1 = none) |

use std::sync::Arc;

use skute_obs::{exponential_buckets, linear_buckets, Counter, Gauge, Histogram, Registry};
use skute_store::{FaultStats, StorageActivity};

use crate::metrics::EpochReport;

/// The metric handles a [`SkuteCloud`](crate::SkuteCloud) records into.
///
/// Build one with [`CloudMetrics::register`] against the registry that
/// will serve `/metrics`, then attach it with
/// [`SkuteCloud::set_metrics`](crate::SkuteCloud::set_metrics). All
/// handles are shared atomics; cloning the `Arc` is the intended way to
/// hold onto one for scraping.
#[derive(Debug)]
pub struct CloudMetrics {
    /// Per-phase wall-clock timings (`phase` label).
    pub phase_traffic_plan: Histogram,
    /// Traffic commit (reconciliation + accrual) timing.
    pub phase_traffic_commit: Histogram,
    /// Availability-repair pass timing.
    pub phase_repair: Histogram,
    /// Economic-decision pass timing (plan prepass + commit).
    pub phase_decisions: Histogram,
    /// Split + report assembly timing.
    pub phase_report: Histogram,
    /// Epochs closed.
    pub epochs: Counter,
    /// Queries offered (rounded to whole queries per epoch).
    pub queries_offered: Counter,
    /// Queries served.
    pub queries_served: Counter,
    /// Queries dropped.
    pub queries_dropped: Counter,
    /// SLA-driven replications.
    pub availability_replications: Counter,
    /// Profit-driven replications.
    pub profit_replications: Counter,
    /// eq.-(3) migrations.
    pub migrations: Counter,
    /// Vnode suicides.
    pub suicides: Counter,
    /// Partition splits.
    pub splits: Counter,
    /// Transfers blocked by bandwidth or storage.
    pub blocked_transfers: Counter,
    /// Speculative decision prepass hits.
    pub spec_hits: Counter,
    /// Speculative decision prepass misses (re-walked live).
    pub spec_misses: Counter,
    /// Conflict-free decision batches dispatched.
    pub decision_batches: Counter,
    /// Batches flushed early by a write-set conflict.
    pub batch_conflicts: Counter,
    /// Widest decision batch per epoch.
    pub batch_width: Histogram,
    /// Logical bytes moved by replications.
    pub replicated_bytes: Counter,
    /// Logical bytes moved by migrations.
    pub migrated_bytes: Counter,
    /// Synthetic ingests rejected for capacity.
    pub insert_failures: Counter,
    /// Partitions that lost their last replica.
    pub partitions_lost: Counter,
    /// Quarantined replicas re-seeded from healthy peers.
    pub scrub_rebuilds: Counter,
    /// Fleet-wide LSM WAL appends (refreshed gauge).
    pub lsm_wal_appends: Gauge,
    /// Fleet-wide LSM memtable flushes (refreshed gauge).
    pub lsm_flushes: Gauge,
    /// Fleet-wide LSM compactions (refreshed gauge).
    pub lsm_compactions: Gauge,
    /// Fleet-wide WAL-append retries recovered (refreshed gauge).
    pub fault_wal_retries: Gauge,
    /// Fleet-wide flush retries recovered (refreshed gauge).
    pub fault_flush_retries: Gauge,
    /// Fleet-wide read retries recovered (refreshed gauge).
    pub fault_read_retries: Gauge,
    /// Fleet-wide fork retries recovered (refreshed gauge).
    pub fault_fork_retries: Gauge,
    /// Fleet-wide torn WAL tails repaired (refreshed gauge).
    pub fault_torn_tails: Gauge,
    /// Fleet-wide partial runs discarded at open (refreshed gauge).
    pub fault_partial_runs: Gauge,
    /// Serving-path reads answered at quorum consistency.
    pub quorum_reads: Counter,
    /// Quorum reads that observed at least one stale replica.
    pub quorum_divergent: Counter,
    /// Reads served below their requested consistency.
    pub degraded_reads: Counter,
    /// Stale replicas enqueued for read-repair by quorum reads.
    pub read_repairs_scheduled: Counter,
    /// Stale replicas actually repaired at epoch close.
    pub read_repairs_applied: Counter,
    /// Minimum alive-server confidence, in basis points (refreshed each
    /// gray epoch).
    pub confidence_min_bp: Gauge,
    /// Mean alive-server confidence, in basis points (refreshed each gray
    /// epoch).
    pub confidence_mean_bp: Gauge,
    /// Alive servers currently gray-degraded or behind the cut.
    pub gray_degraded_servers: Gauge,
    /// Continent currently severed by the fault plan (-1 = none).
    pub partition_cut_continent: Gauge,
}

impl CloudMetrics {
    /// Registers the full cloud catalogue on `registry` and returns the
    /// handle bundle. Registering twice on the same registry returns
    /// handles over the same underlying series (registration is
    /// idempotent per family + label set).
    pub fn register(registry: &Registry) -> Arc<CloudMetrics> {
        let phase = |name: &str| {
            registry.histogram_with(
                "skute_epoch_phase_seconds",
                "Wall-clock seconds spent per epoch phase.",
                &[("phase", name)],
                &exponential_buckets(1e-5, 4.0, 10),
            )
        };
        let queries = |outcome: &str| {
            registry.counter_with(
                "skute_queries_total",
                "Queries per epoch by outcome (rounded to whole queries).",
                &[("outcome", outcome)],
            )
        };
        let action = |name: &str| {
            registry.counter_with(
                "skute_actions_total",
                "Decision-process actions executed, by kind.",
                &[("action", name)],
            )
        };
        let spec = |result: &str| {
            registry.counter_with(
                "skute_speculation_total",
                "Speculative prepass placements validated against the commit.",
                &[("result", result)],
            )
        };
        let bytes = |kind: &str| {
            registry.counter_with(
                "skute_transfer_bytes_total",
                "Logical bytes moved by replica transfers, by kind.",
                &[("kind", kind)],
            )
        };
        let engine_op = |op: &str| {
            registry.gauge_with(
                "skute_storage_engine_ops",
                "Fleet-wide LSM engine operations (refreshed at scrape).",
                &[("op", op)],
            )
        };
        let fault = |kind: &str| {
            registry.gauge_with(
                "skute_storage_fault_recoveries",
                "Fleet-wide injected-fault recoveries (refreshed at scrape).",
                &[("kind", kind)],
            )
        };
        Arc::new(CloudMetrics {
            phase_traffic_plan: phase("traffic_plan"),
            phase_traffic_commit: phase("traffic_commit"),
            phase_repair: phase("repair"),
            phase_decisions: phase("decisions"),
            phase_report: phase("report"),
            epochs: registry.counter("skute_epochs_total", "Epochs closed by end_epoch."),
            queries_offered: queries("offered"),
            queries_served: queries("served"),
            queries_dropped: queries("dropped"),
            availability_replications: action("availability_replication"),
            profit_replications: action("profit_replication"),
            migrations: action("migration"),
            suicides: action("suicide"),
            splits: action("split"),
            blocked_transfers: action("blocked_transfer"),
            spec_hits: spec("hit"),
            spec_misses: spec("miss"),
            decision_batches: registry.counter(
                "skute_decision_batches_total",
                "Conflict-free decision batches dispatched to the pool.",
            ),
            batch_conflicts: registry.counter(
                "skute_decision_batch_conflicts_total",
                "Decision batches flushed early by a write-set conflict.",
            ),
            batch_width: registry.histogram(
                "skute_decision_batch_width",
                "Widest conflict-free decision batch per epoch.",
                &linear_buckets(1.0, 4.0, 12),
            ),
            replicated_bytes: bytes("replication"),
            migrated_bytes: bytes("migration"),
            insert_failures: registry.counter(
                "skute_insert_failures_total",
                "Synthetic ingests rejected after the capacity rebalance.",
            ),
            partitions_lost: registry.counter(
                "skute_partitions_lost_total",
                "Partitions that lost their last replica to failures.",
            ),
            scrub_rebuilds: registry.counter(
                "skute_scrub_rebuilds_total",
                "Quarantined replicas re-seeded from healthy peers.",
            ),
            lsm_wal_appends: engine_op("wal_append"),
            lsm_flushes: engine_op("memtable_flush"),
            lsm_compactions: engine_op("compaction"),
            fault_wal_retries: fault("wal_retry"),
            fault_flush_retries: fault("flush_retry"),
            fault_read_retries: fault("read_retry"),
            fault_fork_retries: fault("fork_retry"),
            fault_torn_tails: fault("torn_wal_tail"),
            fault_partial_runs: fault("partial_run_discarded"),
            quorum_reads: registry.counter(
                "skute_read_quorum_reads_total",
                "Serving-path reads answered at quorum consistency.",
            ),
            quorum_divergent: registry.counter(
                "skute_read_quorum_divergent_total",
                "Quorum reads that observed at least one stale replica.",
            ),
            degraded_reads: registry.counter(
                "skute_degraded_reads_total",
                "Reads served below their requested consistency.",
            ),
            read_repairs_scheduled: registry.counter_with(
                "skute_read_repairs_total",
                "Read-repair volume by stage.",
                &[("stage", "scheduled")],
            ),
            read_repairs_applied: registry.counter_with(
                "skute_read_repairs_total",
                "Read-repair volume by stage.",
                &[("stage", "applied")],
            ),
            confidence_min_bp: registry.gauge_with(
                "skute_server_confidence_bp",
                "Fleet confidence in basis points (refreshed each gray epoch).",
                &[("stat", "min")],
            ),
            confidence_mean_bp: registry.gauge_with(
                "skute_server_confidence_bp",
                "Fleet confidence in basis points (refreshed each gray epoch).",
                &[("stat", "mean")],
            ),
            gray_degraded_servers: registry.gauge(
                "skute_gray_degraded_servers",
                "Alive servers currently gray-degraded or behind the cut.",
            ),
            partition_cut_continent: registry.gauge(
                "skute_partition_cut_continent",
                "Continent currently severed by the fault plan (-1 = none).",
            ),
        })
    }

    /// Folds one closed epoch's report into the counters. Queries are f64
    /// loads; they round to whole queries so the counters stay integral.
    pub fn observe_report(&self, report: &EpochReport) {
        self.epochs.inc();
        let (mut offered, mut served, mut dropped) = (0.0f64, 0.0f64, 0.0f64);
        for ring in &report.rings {
            offered += ring.queries_offered;
            served += ring.queries_served;
            dropped += ring.queries_dropped;
        }
        self.queries_offered.add(offered.round() as u64);
        self.queries_served.add(served.round() as u64);
        self.queries_dropped.add(dropped.round() as u64);
        let a = &report.actions;
        self.availability_replications
            .add(a.availability_replications);
        self.profit_replications.add(a.profit_replications);
        self.migrations.add(a.migrations);
        self.suicides.add(a.suicides);
        self.splits.add(a.splits);
        self.blocked_transfers.add(a.blocked_transfers);
        self.spec_hits.add(a.spec_hits);
        self.spec_misses.add(a.spec_misses);
        self.decision_batches.add(a.decision_batches);
        self.batch_conflicts.add(a.batch_conflicts);
        if a.decision_batches > 0 {
            self.batch_width.observe(a.max_batch_width as f64);
        }
        self.replicated_bytes.add(a.replicated_bytes);
        self.migrated_bytes.add(a.migrated_bytes);
        self.scrub_rebuilds.add(a.scrub_rebuilds);
        self.insert_failures.add(report.insert_failures);
        self.partitions_lost.add(report.partitions_lost);
    }

    /// Overwrites the refreshed storage gauges from fleet-wide totals
    /// (called at scrape/snapshot time by
    /// [`SkuteCloud::refresh_storage_metrics`](crate::SkuteCloud::refresh_storage_metrics)).
    pub fn set_storage_totals(&self, activity: &StorageActivity, faults: &FaultStats) {
        self.lsm_wal_appends.set(activity.wal_appends as i64);
        self.lsm_flushes.set(activity.memtable_flushes as i64);
        self.lsm_compactions.set(activity.compactions as i64);
        self.fault_wal_retries.set(faults.wal_retries as i64);
        self.fault_flush_retries.set(faults.flush_retries as i64);
        self.fault_read_retries.set(faults.read_retries as i64);
        self.fault_fork_retries.set(faults.fork_retries as i64);
        self.fault_torn_tails
            .set(faults.torn_wal_tails_repaired as i64);
        self.fault_partial_runs
            .set(faults.partial_runs_discarded as i64);
    }
}
