//! Applications and their differentiated availability levels.

use std::fmt;

use skute_store::QuorumConfig;

/// Identifier of a registered application.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AppId(pub u32);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app{}", self.0)
    }
}

/// One availability level of an application, calibrated against a topology.
///
/// `target_replicas` is the paper's "availability level … satisfied by k
/// replicas" (§III-A); `threshold` is the eq.-(2) availability the
/// partition's replica set must reach (see
/// [`crate::availability::threshold_for_replicas`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AvailabilityLevel {
    /// Replica count the SLA is designed around.
    pub target_replicas: usize,
    /// Minimum eq.-(2) availability `th`.
    pub threshold: f64,
    /// Quorum parameters for client reads/writes at this level.
    pub quorum: QuorumConfig,
}

/// Declarative description of one availability level at registration time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LevelSpec {
    /// Replica count the SLA is designed around (k ≥ 1).
    pub replicas: usize,
    /// Initial number of partitions (the paper starts each application at
    /// M = 200).
    pub partitions: usize,
    /// Initial logical bytes preloaded into each partition.
    pub initial_partition_bytes: u64,
    /// Quorum override; defaults to the availability-leaning
    /// `QuorumConfig::availability(replicas)`.
    pub quorum: Option<QuorumConfig>,
}

impl LevelSpec {
    /// A level satisfied by `replicas` replicas over `partitions` initial
    /// partitions, with no preloaded data and default quorum.
    pub fn new(replicas: usize, partitions: usize) -> Self {
        Self {
            replicas,
            partitions,
            initial_partition_bytes: 0,
            quorum: None,
        }
    }

    /// Sets the preloaded logical bytes per partition.
    #[must_use]
    pub fn with_initial_bytes(mut self, bytes: u64) -> Self {
        self.initial_partition_bytes = bytes;
        self
    }

    /// Overrides the quorum configuration.
    #[must_use]
    pub fn with_quorum(mut self, quorum: QuorumConfig) -> Self {
        self.quorum = Some(quorum);
        self
    }
}

/// Declarative description of an application to register.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Human-readable name.
    pub name: String,
    /// One entry per availability level (at least one required).
    pub levels: Vec<LevelSpec>,
}

impl AppSpec {
    /// An application with no levels yet; add at least one with
    /// [`AppSpec::level`].
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            levels: Vec::new(),
        }
    }

    /// Adds an availability level.
    #[must_use]
    pub fn level(mut self, level: LevelSpec) -> Self {
        self.levels.push(level);
        self
    }
}

/// A registered application.
#[derive(Debug, Clone)]
pub struct Application {
    /// Identifier assigned at registration.
    pub id: AppId,
    /// Human-readable name.
    pub name: String,
    /// Calibrated availability levels, one virtual ring each.
    pub levels: Vec<AvailabilityLevel>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_spec_builder() {
        let l = LevelSpec::new(3, 200)
            .with_initial_bytes(64)
            .with_quorum(QuorumConfig::majority(3));
        assert_eq!(l.replicas, 3);
        assert_eq!(l.partitions, 200);
        assert_eq!(l.initial_partition_bytes, 64);
        assert_eq!(l.quorum.unwrap().r, 2);
    }

    #[test]
    fn app_spec_accumulates_levels() {
        let spec = AppSpec::new("photos")
            .level(LevelSpec::new(2, 100))
            .level(LevelSpec::new(4, 50));
        assert_eq!(spec.name, "photos");
        assert_eq!(spec.levels.len(), 2);
        assert_eq!(spec.levels[1].replicas, 4);
    }

    #[test]
    fn display_app_id() {
        assert_eq!(AppId(2).to_string(), "app2");
    }
}
