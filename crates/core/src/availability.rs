//! Eq. (2): the availability of a partition, and SLA threshold calibration.
//!
//! "We approximate the potential availability of a partition by means of the
//! geographical diversity of the servers that host its replicas:
//! `avail_i = Σ_i Σ_{j>i} conf_i · conf_j · diversity(s_i, s_j)`" (§II-B).
//!
//! The paper never publishes numeric thresholds; it only says the three
//! example applications offer levels "satisfied by 2, 3, 4 replicas"
//! (§III-A). [`threshold_for_replicas`] calibrates a threshold against a
//! topology so that `k` reasonably spread replicas meet the SLA while `k−1`
//! replicas — however well placed — cannot (see DESIGN.md §3.3).

use skute_geo::{diversity, Location, Topology};

/// Eq. (2): pairwise confidence-weighted diversity over a replica set given
/// as `(location, confidence)` pairs. Empty and singleton sets have zero
/// availability.
pub fn availability_of(replicas: &[(Location, f64)]) -> f64 {
    let mut total = 0.0;
    for i in 0..replicas.len() {
        for j in (i + 1)..replicas.len() {
            let (ref li, ci) = replicas[i];
            let (ref lj, cj) = replicas[j];
            total += ci * cj * f64::from(diversity(li, lj));
        }
    }
    total
}

/// The maximum availability achievable with `k` replicas on `topology`
/// (confidence 1), computed by greedy farthest-point placement over the
/// topology's servers.
///
/// Greedy is exact for the ladder-valued ultrametric diversity: spreading
/// replicas over distinct continents first, then distinct countries, etc.,
/// maximizes every pairwise term independently.
pub fn greedy_max_availability(topology: &Topology, k: usize) -> f64 {
    if k < 2 {
        return 0.0;
    }
    let servers: Vec<Location> = topology.iter_servers().collect();
    if servers.is_empty() {
        return 0.0;
    }
    let mut chosen: Vec<Location> = vec![servers[0]];
    while chosen.len() < k {
        let best = servers
            .iter()
            .filter(|s| !chosen.contains(s))
            .map(|s| {
                let gain: f64 = chosen.iter().map(|c| f64::from(diversity(c, s))).sum();
                (s, gain)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1));
        match best {
            Some((s, _)) => chosen.push(*s),
            None => break, // fewer servers than k: settle for what exists
        }
    }
    let with_conf: Vec<(Location, f64)> = chosen.into_iter().map(|l| (l, 1.0)).collect();
    availability_of(&with_conf)
}

/// Calibrates the availability threshold `th` for an SLA "satisfied by `k`
/// replicas": a value `frac` of the way from the best availability `k−1`
/// replicas can reach to the best `k` replicas can reach.
///
/// `frac` trades placement freedom against replica count: small values let
/// moderately spread `k`-replica sets pass, values near 1 force near-optimal
/// spreading. The reproduction uses 0.2 ([`crate::SkuteConfig::paper`]),
/// under which e.g. `k = 2` accepts a cross-datacenter pair but rejects a
/// same-room pair on the paper topology.
///
/// # Panics
/// Panics unless `k ≥ 1` and `frac ∈ (0, 1]`.
pub fn threshold_for_replicas(topology: &Topology, k: usize, frac: f64) -> f64 {
    assert!(k >= 1, "an SLA needs at least one replica");
    assert!(frac > 0.0 && frac <= 1.0, "frac must be in (0, 1]");
    let below = greedy_max_availability(topology, k.saturating_sub(1));
    let at = greedy_max_availability(topology, k);
    below + frac * (at - below)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use skute_geo::Location;

    fn loc(ct: u16, co: u16, dc: u16) -> (Location, f64) {
        (Location::new(ct, co, dc, 0, 0, 0), 1.0)
    }

    #[test]
    fn empty_and_singleton_have_zero_availability() {
        assert_eq!(availability_of(&[]), 0.0);
        assert_eq!(availability_of(&[loc(0, 0, 0)]), 0.0);
    }

    #[test]
    fn pair_availability_is_diversity() {
        // Two servers on different continents: diversity 63.
        let a = availability_of(&[loc(0, 0, 0), loc(1, 0, 0)]);
        assert_eq!(a, 63.0);
        // Different countries, same continent: 31.
        let b = availability_of(&[loc(0, 0, 0), loc(0, 1, 0)]);
        assert_eq!(b, 31.0);
    }

    #[test]
    fn confidence_scales_pairs() {
        let set = [
            (Location::new(0, 0, 0, 0, 0, 0), 0.5),
            (Location::new(1, 0, 0, 0, 0, 0), 0.8),
        ];
        assert!((availability_of(&set) - 0.5 * 0.8 * 63.0).abs() < 1e-12);
    }

    #[test]
    fn three_continents_sum_three_pairs() {
        let a = availability_of(&[loc(0, 0, 0), loc(1, 0, 0), loc(2, 0, 0)]);
        assert_eq!(a, 3.0 * 63.0);
    }

    #[test]
    fn greedy_max_on_paper_topology() {
        let t = Topology::paper(); // 5 continents available
        assert_eq!(greedy_max_availability(&t, 0), 0.0);
        assert_eq!(greedy_max_availability(&t, 1), 0.0);
        assert_eq!(greedy_max_availability(&t, 2), 63.0);
        assert_eq!(greedy_max_availability(&t, 3), 3.0 * 63.0);
        assert_eq!(greedy_max_availability(&t, 4), 6.0 * 63.0);
        assert_eq!(greedy_max_availability(&t, 5), 10.0 * 63.0);
        // A 6th replica must reuse a continent: 5 continent-pairs at 63
        // become 10, plus 5 pairs... compute: 6 replicas on 5 continents:
        // one continent has 2 (different countries → 31), cross pairs 14×63.
        assert_eq!(greedy_max_availability(&t, 6), 14.0 * 63.0 + 31.0);
    }

    #[test]
    fn thresholds_separate_k_from_k_minus_1() {
        let t = Topology::paper();
        for k in 2..=4 {
            let th = threshold_for_replicas(&t, k, 0.2);
            assert!(
                th > greedy_max_availability(&t, k - 1),
                "k−1 replicas can never satisfy the SLA"
            );
            assert!(
                th <= greedy_max_availability(&t, k),
                "k well-placed replicas must satisfy the SLA"
            );
        }
    }

    #[test]
    fn paper_thresholds_accept_reasonable_spreads() {
        let t = Topology::paper();
        // k = 2 at frac 0.2: th = 12.6; a cross-datacenter pair (15) passes,
        // a same-room pair (≤7) fails.
        let th2 = threshold_for_replicas(&t, 2, 0.2);
        assert!(availability_of(&[loc(0, 0, 0), loc(0, 0, 1)]) >= th2);
        assert!(availability_of(&[loc(0, 0, 0), loc(0, 0, 0)]) < th2);
        // k = 3: three countries on one continent (3×31) passes, any two
        // replicas fail.
        let th3 = threshold_for_replicas(&t, 3, 0.2);
        assert!(availability_of(&[loc(0, 0, 0), loc(0, 1, 0), loc(1, 0, 0)]) >= th3);
        assert!(availability_of(&[loc(0, 0, 0), loc(4, 1, 1)]) < th3);
    }

    #[test]
    #[should_panic(expected = "frac")]
    fn bad_frac_rejected() {
        let t = Topology::paper();
        let _ = threshold_for_replicas(&t, 2, 0.0);
    }

    #[test]
    fn greedy_handles_k_beyond_cluster() {
        let t = Topology::builder().continents(2).build(); // 2 servers
        let a2 = greedy_max_availability(&t, 2);
        let a5 = greedy_max_availability(&t, 5);
        assert_eq!(a2, 63.0);
        assert_eq!(a5, a2, "cannot place more replicas than servers");
    }

    proptest! {
        #[test]
        fn prop_availability_monotone_in_added_replicas(
            n in 2usize..6,
            extra_ct in 0u16..5,
        ) {
            let t = Topology::paper();
            let mut set: Vec<(Location, f64)> = (0..n as u64)
                .map(|i| (t.server_at(i * 37 % 200), 1.0))
                .collect();
            let before = availability_of(&set);
            set.push((Location::new(extra_ct, 0, 0, 0, 0, 0), 1.0));
            let after = availability_of(&set);
            prop_assert!(after >= before);
        }

        #[test]
        fn prop_availability_permutation_invariant(perm_seed in 0usize..24) {
            let t = Topology::paper();
            let mut set: Vec<(Location, f64)> =
                vec![(t.server_at(0), 1.0), (t.server_at(57), 0.9), (t.server_at(123), 0.8), (t.server_at(199), 1.0)];
            let base = availability_of(&set);
            let rot = perm_seed % set.len();
            set.rotate_left(rot);
            if perm_seed % 2 == 0 {
                set.swap(0, 1);
            }
            prop_assert!((availability_of(&set) - base).abs() < 1e-9);
        }

        #[test]
        fn prop_greedy_monotone_in_k(k in 2usize..8) {
            let t = Topology::paper();
            prop_assert!(
                greedy_max_availability(&t, k) >= greedy_max_availability(&t, k - 1)
            );
        }
    }
}
