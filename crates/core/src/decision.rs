//! The §II-C virtual-node decision process, as a pure, testable classifier.
//!
//! "A virtual node agent may decide to replicate, migrate, suicide or do
//! nothing with its data at the end of an epoch":
//!
//! 1. availability below the threshold ⇒ replicate (handled at partition
//!    level by [`crate::SkuteCloud`], driven by eq. 3 target selection);
//! 2. negative balance for the last f epochs ⇒ suicide if the partition
//!    stays available without this replica, otherwise migrate to a cheaper
//!    server closer to the clients;
//! 3. positive balance for the last f epochs ⇒ replicate, provided the
//!    popularity "compensates for the increased network cost for data
//!    consistency … and for the potentially increased virtual rent of the
//!    candidate server".

use skute_cluster::ServerId;

/// What a virtual node resolved to do this epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Action {
    /// Keep the replica where it is.
    Stay,
    /// Delete this replica (availability holds without it).
    Suicide,
    /// Move this replica to the given server.
    Migrate {
        /// Destination server.
        to: ServerId,
    },
    /// Add a new replica on the given server.
    Replicate {
        /// Target server for the new replica.
        target: ServerId,
        /// Why the replica is being added.
        reason: ReplicationReason,
    },
}

/// Why a replication happened.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplicationReason {
    /// The partition's availability fell below its SLA threshold.
    Availability,
    /// A sustained positive balance justified load-spreading replication.
    Profit,
}

/// Counters of the actions executed in one epoch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ActionCounts {
    /// Replications restoring sub-threshold availability.
    pub availability_replications: u64,
    /// Profit-driven (load-spreading) replications.
    pub profit_replications: u64,
    /// Replica migrations.
    pub migrations: u64,
    /// Replica suicides.
    pub suicides: u64,
    /// Partition splits (256 MB overflow).
    pub splits: u64,
    /// Transfers blocked by bandwidth or storage limits this epoch.
    pub blocked_transfers: u64,
    /// Bytes moved by replications this epoch (communication overhead),
    /// priced at the replicas' *logical* size — the quantity the economic
    /// model and the CSV consume, identical across storage backends.
    pub replicated_bytes: u64,
    /// Bytes moved by migrations this epoch (communication overhead),
    /// priced at the replicas' *logical* size.
    pub migrated_bytes: u64,
    /// Bytes replications *physically* streamed this epoch, as measured by
    /// the storage backend (WAL + SSTable file bytes under the LSM engine;
    /// equal to `replicated_bytes` under the in-memory oracle).
    /// Observability only — decisions and the CSV never read it, which is
    /// what keeps trajectories bitwise identical across backends.
    pub measured_replicated_bytes: u64,
    /// Bytes migrations *physically* streamed this epoch (see
    /// [`ActionCounts::measured_replicated_bytes`]).
    pub measured_migrated_bytes: u64,
    /// Speculative eq.-(3) targets honored by the decision commit pass
    /// (read-set validation passed, or no preceding action had touched
    /// the cluster). Observability only: the commit executes the same
    /// action a fresh walk would have picked.
    pub spec_hits: u64,
    /// Speculations discarded by the commit pass — a preceding committed
    /// action genuinely overlapped the walk's reads (or changed the
    /// partition's membership) — and re-walked on the live state.
    pub spec_misses: u64,
    /// Conflict-free batches the decision commit closed this epoch (each
    /// applies its actions' partition-local placements in one worker-pool
    /// dispatch; width-1 batches apply inline). Observability only — the
    /// `SkuteConfig::sequential_decisions` oracle leaves all three batch
    /// counters at zero, and they stay out of the CSV, which is what keeps
    /// the byte-comparison against the oracle exact.
    pub decision_batches: u64,
    /// Widest batch the decision commit closed this epoch (merged across
    /// epochs by maximum, not sum).
    pub max_batch_width: u64,
    /// Actions that conflicted with their open batch (shared a touched
    /// server) and fell back to in-place sequential application after the
    /// batch flushed.
    pub batch_conflicts: u64,
    /// Quarantined replicas re-seeded from a healthy peer by the scrub
    /// pass. Observability only — the rebuild restores the replica's
    /// converged contents, so the trajectory never moves.
    pub scrub_rebuilds: u64,
    /// Bytes scrub rebuilds *physically* streamed from healthy peers (see
    /// [`ActionCounts::measured_replicated_bytes`] for why measured
    /// counters stay out of decisions and the CSV).
    pub measured_scrub_bytes: u64,
}

impl ActionCounts {
    /// Total replications of both kinds.
    pub fn replications(&self) -> u64 {
        self.availability_replications + self.profit_replications
    }

    /// Total bytes moved between servers this epoch, at logical size.
    pub fn transferred_bytes(&self) -> u64 {
        self.replicated_bytes + self.migrated_bytes
    }

    /// Total bytes *physically* streamed between servers this epoch, as
    /// measured by the storage backend.
    pub fn measured_transferred_bytes(&self) -> u64 {
        self.measured_replicated_bytes + self.measured_migrated_bytes
    }

    /// The epoch's data-transfer cost, priced from the **measured** bytes
    /// the backend actually streamed (`per_mib` is
    /// `EconomyConfig::transfer_cost_per_mib`). Under the in-memory oracle
    /// measured equals logical, so this reproduces the logical-size
    /// pricing exactly; under the LSM engine it prices real WAL + SSTable
    /// bytes.
    pub fn transfer_cost(&self, per_mib: f64) -> f64 {
        const MIB: f64 = (1024 * 1024) as f64;
        per_mib * self.measured_transferred_bytes() as f64 / MIB
    }

    /// Fraction of speculations honored at commit time, or `None` when
    /// no speculation was evaluated (e.g. the `no_speculation` oracle).
    pub fn spec_hit_rate(&self) -> Option<f64> {
        let total = self.spec_hits + self.spec_misses;
        (total > 0).then(|| self.spec_hits as f64 / total as f64)
    }

    /// Accumulates another epoch's counts into `self`.
    pub fn merge(&mut self, other: &ActionCounts) {
        self.availability_replications += other.availability_replications;
        self.profit_replications += other.profit_replications;
        self.migrations += other.migrations;
        self.suicides += other.suicides;
        self.splits += other.splits;
        self.blocked_transfers += other.blocked_transfers;
        self.replicated_bytes += other.replicated_bytes;
        self.migrated_bytes += other.migrated_bytes;
        self.measured_replicated_bytes += other.measured_replicated_bytes;
        self.measured_migrated_bytes += other.measured_migrated_bytes;
        self.spec_hits += other.spec_hits;
        self.spec_misses += other.spec_misses;
        self.decision_batches += other.decision_batches;
        self.max_batch_width = self.max_batch_width.max(other.max_batch_width);
        self.batch_conflicts += other.batch_conflicts;
        self.scrub_rebuilds += other.scrub_rebuilds;
        self.measured_scrub_bytes += other.measured_scrub_bytes;
    }
}

/// Inputs of the pure per-vnode classification (economic branch of §II-C;
/// the availability branch runs first and at partition level).
#[derive(Debug, Clone, Copy)]
pub struct VnodeSituation {
    /// Last f epochs all strictly negative.
    pub negative_streak: bool,
    /// Last f epochs all strictly positive.
    pub positive_streak: bool,
    /// Mean balance over the window, if any history exists.
    pub window_mean: Option<f64>,
    /// Partition availability with this replica removed.
    pub availability_without_self: f64,
    /// SLA threshold of the ring.
    pub threshold: f64,
    /// Current replica count of the partition.
    pub replica_count: usize,
    /// Configured replica ceiling.
    pub max_replicas: usize,
    /// Virtual rent this replica currently pays per epoch (used to recover
    /// its income from the balance when projecting a new replica's share).
    pub current_rent: f64,
    /// Projected extra per-epoch cost of one more replica: candidate rent
    /// plus the data-consistency network cost.
    pub projected_replica_cost: f64,
    /// The replication hurdle multiplier from the economy config.
    pub hurdle: f64,
}

/// Projects the per-epoch balance a *new* replica would earn, from the
/// deciding replica's mean balance over the window.
///
/// Query income is shared between a partition's replicas in proportion to
/// their proximity weights, so adding a replica dilutes every share from
/// `1/k` to roughly `1/(k + 1)`. A rational §II-C optimizer therefore
/// projects the candidate's income as the current per-replica income scaled
/// by `k/(k + 1)`, minus the candidate's rent and the extra consistency
/// traffic. Skipping the dilution (as a naive reading of eq. 5 would)
/// overstates the candidate's income by `(k + 1)/k` and replicates on
/// partitions that can never pay for the extra replica — the population
/// then converges above the SLA target and stays there, because a
/// profitable surplus replica never builds the negative streak it needs to
/// suicide.
pub fn projected_new_replica_balance(situation: &VnodeSituation) -> Option<f64> {
    let mean = situation.window_mean?;
    let k = situation.replica_count as f64;
    let income = (mean + situation.current_rent) * k / (k + 1.0);
    Some(income - situation.projected_replica_cost)
}

/// The §II-C profit test: does the projected post-dilution balance of a new
/// replica clear the hurdle over its projected cost? Shared by
/// [`classify`] and the executor's re-verification against the actual
/// candidate rent, so the rule cannot drift between the two sites.
pub fn clears_profit_hurdle(situation: &VnodeSituation) -> bool {
    match projected_new_replica_balance(situation) {
        Some(projected) => projected > situation.hurdle * situation.projected_replica_cost,
        None => false,
    }
}

/// The economic intent of a virtual node, before feasibility (candidate
/// availability, bandwidth, storage) is checked by the executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Intent {
    /// Do nothing.
    Stay,
    /// Remove this replica.
    Suicide,
    /// Look for a cheaper, closer server.
    Migrate,
    /// Add a replica for load/profit.
    ReplicateForProfit,
}

/// Classifies a vnode's situation into an intent, following §II-C exactly:
/// losses dominate (suicide preferred over migration when availability
/// allows), profits replicate only when the projected post-dilution balance
/// of the *new* replica (see [`projected_new_replica_balance`]) clears the
/// hurdle over the projected cost of the extra replica.
pub fn classify(situation: &VnodeSituation) -> Intent {
    if situation.negative_streak {
        if situation.replica_count > 1 && situation.availability_without_self >= situation.threshold
        {
            return Intent::Suicide;
        }
        return Intent::Migrate;
    }
    if situation.positive_streak
        && situation.replica_count < situation.max_replicas
        && clears_profit_hurdle(situation)
    {
        return Intent::ReplicateForProfit;
    }
    Intent::Stay
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> VnodeSituation {
        VnodeSituation {
            negative_streak: false,
            positive_streak: false,
            window_mean: None,
            availability_without_self: 0.0,
            threshold: 12.6,
            replica_count: 2,
            max_replicas: 12,
            current_rent: 0.3,
            projected_replica_cost: 0.3,
            hurdle: 1.5,
        }
    }

    #[test]
    fn default_is_stay() {
        assert_eq!(classify(&base()), Intent::Stay);
    }

    #[test]
    fn loss_with_redundancy_suicides() {
        let s = VnodeSituation {
            negative_streak: true,
            availability_without_self: 63.0, // still over threshold
            replica_count: 3,
            ..base()
        };
        assert_eq!(classify(&s), Intent::Suicide);
    }

    #[test]
    fn loss_without_redundancy_migrates() {
        let s = VnodeSituation {
            negative_streak: true,
            availability_without_self: 5.0, // below threshold
            replica_count: 3,
            ..base()
        };
        assert_eq!(classify(&s), Intent::Migrate);
    }

    #[test]
    fn last_replica_never_suicides() {
        let s = VnodeSituation {
            negative_streak: true,
            availability_without_self: 100.0,
            replica_count: 1,
            ..base()
        };
        assert_eq!(classify(&s), Intent::Migrate);
    }

    #[test]
    fn profit_replicates_only_over_hurdle() {
        let mut s = VnodeSituation {
            positive_streak: true,
            window_mean: Some(1.0),
            ..base()
        };
        // Projected new-replica balance: (1.0 + 0.3) · 2/3 − 0.3 ≈ 0.567,
        // over the hurdle 1.5 · 0.3 = 0.45 → replicate.
        assert_eq!(classify(&s), Intent::ReplicateForProfit);
        let p = projected_new_replica_balance(&s).unwrap();
        assert!((p - (1.3 * 2.0 / 3.0 - 0.3)).abs() < 1e-12);
        // (0.8 + 0.3) · 2/3 − 0.3 ≈ 0.433 under the 0.45 hurdle → stay.
        s.window_mean = Some(0.8);
        assert_eq!(
            classify(&s),
            Intent::Stay,
            "projected 0.433 under the 0.45 hurdle"
        );
    }

    #[test]
    fn dilution_blocks_marginal_replication() {
        // Without the k/(k+1) dilution this mean would clear the hurdle
        // (0.5 > 0.45) and create a surplus replica that never suicides.
        let s = VnodeSituation {
            positive_streak: true,
            window_mean: Some(0.5),
            ..base()
        };
        assert_eq!(
            classify(&s),
            Intent::Stay,
            "(0.5 + 0.3)·2/3 − 0.3 ≈ 0.233 < 0.45"
        );
        // More existing replicas soften the dilution: the same mean clears
        // the hurdle once enough replicas already share the income.
        let s = VnodeSituation {
            window_mean: Some(0.55),
            replica_count: 9,
            ..s
        };
        assert_eq!(
            classify(&s),
            Intent::ReplicateForProfit,
            "(0.85)·9/10 − 0.3 = 0.465 > 0.45"
        );
    }

    #[test]
    fn replica_cap_blocks_profit_replication() {
        let s = VnodeSituation {
            positive_streak: true,
            window_mean: Some(100.0),
            replica_count: 12,
            max_replicas: 12,
            ..base()
        };
        assert_eq!(classify(&s), Intent::Stay);
    }

    #[test]
    fn negative_streak_takes_priority_over_positive_history() {
        // Cannot be both, but if flags disagree the loss branch wins.
        let s = VnodeSituation {
            negative_streak: true,
            positive_streak: true,
            window_mean: Some(10.0),
            availability_without_self: 100.0,
            replica_count: 3,
            ..base()
        };
        assert_eq!(classify(&s), Intent::Suicide);
    }

    #[test]
    fn action_counts_merge_and_sum() {
        let mut a = ActionCounts {
            availability_replications: 1,
            profit_replications: 2,
            migrations: 3,
            suicides: 4,
            splits: 5,
            blocked_transfers: 6,
            replicated_bytes: 100,
            migrated_bytes: 50,
            measured_replicated_bytes: 130,
            measured_migrated_bytes: 70,
            spec_hits: 9,
            spec_misses: 1,
            decision_batches: 3,
            max_batch_width: 5,
            batch_conflicts: 2,
            scrub_rebuilds: 2,
            measured_scrub_bytes: 40,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.availability_replications, 2);
        assert_eq!(a.replications(), 6);
        assert_eq!(a.blocked_transfers, 12);
        assert_eq!(a.transferred_bytes(), 300);
        assert_eq!(a.measured_transferred_bytes(), 400);
        assert_eq!(a.spec_hits, 18);
        assert_eq!(a.spec_misses, 2);
        assert_eq!(a.decision_batches, 6);
        assert_eq!(a.max_batch_width, 5, "widths merge by max, not sum");
        assert_eq!(a.batch_conflicts, 4);
        assert_eq!(a.scrub_rebuilds, 4);
        assert_eq!(a.measured_scrub_bytes, 80);
        assert_eq!(a.spec_hit_rate(), Some(0.9));
        assert_eq!(ActionCounts::default().spec_hit_rate(), None);
    }

    #[test]
    fn transfer_cost_prices_measured_bytes() {
        let counts = ActionCounts {
            measured_replicated_bytes: 3 * 1024 * 1024,
            measured_migrated_bytes: 1024 * 1024,
            ..ActionCounts::default()
        };
        assert_eq!(counts.transfer_cost(0.001), 0.004);
        assert_eq!(ActionCounts::default().transfer_cost(0.001), 0.0);
    }
}
