//! E-OVH — communication overhead analysis (the paper's stated future
//! work: "we will … analyze its performance regarding latency and
//! communication overhead", §IV).
//!
//! Runs the Fig. 3 elasticity scenario and accounts every byte the economy
//! moves between servers (replication + migration), split into the phases
//! of the run: startup convergence, steady state, the 20-server upgrade and
//! the 20-server failure burst. The steady-state overhead must be ≈ 0 (the
//! economy converges rather than thrashes) and the failure-recovery burst
//! must be on the order of the data the dead servers hosted.

use skute_sim::paper;

const GIB: f64 = (1u64 << 30) as f64;

fn main() {
    println!("=== E-OVH — communication overhead across the Fig. 3 run ===\n");
    let scenario = paper::fig3_scenario();
    let recorder = skute_bench::run_and_record(scenario, 0, |_| {});
    let obs = recorder.observations();

    let phase = |name: &str, lo: usize, hi: usize| {
        let repl: u64 = obs[lo..hi]
            .iter()
            .map(|o| o.report.actions.replicated_bytes)
            .sum();
        let migr: u64 = obs[lo..hi]
            .iter()
            .map(|o| o.report.actions.migrated_bytes)
            .sum();
        println!(
            "{:<26} {:>10.2} GiB replicated {:>10.2} GiB migrated ({:>5} epochs)",
            name,
            repl as f64 / GIB,
            migr as f64 / GIB,
            hi - lo,
        );
        (repl, migr)
    };

    let (startup_r, startup_m) = phase("startup (1-40)", 0, 40);
    let (steady_r, steady_m) = phase("steady state (41-99)", 40, 99);
    let (upgrade_r, upgrade_m) = phase("upgrade +20 (100-140)", 99, 140);
    let (failure_r, failure_m) = phase("failure −20 (200-240)", 199, 240);

    // Reference volumes.
    let stored_after = obs[198].report.storage_used as f64 / GIB;
    let lost = stored_after * 20.0 / 220.0; // data share of the 20 dead servers
    println!(
        "\nstored before failure: {:.1} GiB; expected loss on 20/220 servers ≈ {:.1} GiB",
        stored_after, lost
    );
    let failure_total = (failure_r + failure_m) as f64 / GIB;
    let steady_total = (steady_r + steady_m) as f64 / GIB;
    let steady_per_epoch = steady_total / 59.0;
    println!(
        "failure recovery moved {:.1} GiB (ratio {:.2}× the lost data); steady state moves {:.3} GiB/epoch",
        failure_total,
        failure_total / lost.max(1e-9),
        steady_per_epoch,
    );

    let startup_total = (startup_r + startup_m) as f64 / GIB;
    let upgrade_total = (upgrade_r + upgrade_m) as f64 / GIB;
    println!(
        "startup bootstrap moved {:.1} GiB; the +20-server upgrade moved {:.1} GiB",
        startup_total, upgrade_total
    );

    let quiet_steady = steady_per_epoch < 0.05 * startup_total.max(1e-9);
    let proportionate = failure_total < 4.0 * lost && failure_total > 0.5 * lost;
    println!(
        "\nconclusion: steady-state churn ≈ {:.1} MiB/epoch, repair traffic ∝ lost data → {}",
        steady_per_epoch * 1024.0,
        if quiet_steady && proportionate {
            "overhead is event-driven, not continuous (future-work analysis, reproduced in simulation)"
        } else {
            "unexpected overhead profile — inspect the CSV"
        }
    );
    skute_bench::footer("table_overhead", &recorder);
}
