//! E-GEO — geographical data placement per application (§I, advantage 2).
//!
//! The paper's second headline claim for virtual rings: "data that is
//! mostly accessed from a certain geographical region should be moved close
//! to that region". This harness runs the same cloud twice — once with
//! uniform clients, once with all clients in one country — and tracks the
//! mean client→serving-replica distance (diversity units, 0..=63, the
//! latency proxy): with regional traffic the economy must pull serving
//! replicas towards the hot country, far below the uniform baseline.

use skute_geo::ClientGeo;
use skute_sim::paper;

fn run(geo: ClientGeo, name: &str) -> (f64, f64, Vec<(u64, f64)>) {
    let mut scenario = paper::scaled_scenario(name, 32, 6_000, 60);
    scenario.client_geo = geo;
    let recorder = skute_bench::run_and_record(scenario, 0, |_| {});
    let series: Vec<(u64, f64)> = recorder
        .observations()
        .iter()
        .map(|o| {
            let r = &o.report;
            let served: f64 = r.rings.iter().map(|x| x.queries_served).sum();
            let dist: f64 = r
                .rings
                .iter()
                .map(|x| x.mean_client_distance * x.queries_served)
                .sum::<f64>()
                / served.max(1.0);
            (r.epoch, dist)
        })
        .collect();
    let early = series[0].1;
    let late = series[series.len() - 10..].iter().map(|x| x.1).sum::<f64>() / 10.0;
    (early, late, series)
}

fn main() {
    println!(
        "=== E-GEO — data moves close to its clients (paper §I, virtual-ring advantage 2) ===\n"
    );
    let (u_early, u_late, _) = run(ClientGeo::Uniform, "geo-uniform");
    let (s_early, s_late, series) = run(
        ClientGeo::SingleCountry {
            continent: 0,
            country: 0,
        },
        "geo-regional",
    );

    println!("mean client→replica distance (diversity units; 1=rack … 15=same country, 31=same continent, 63=other continent)\n");
    println!(
        "{:<22} {:>12} {:>12}",
        "client geography", "epoch 1", "steady state"
    );
    println!(
        "{:<22} {:>12.2} {:>12.2}",
        "uniform (all countries)", u_early, u_late
    );
    println!(
        "{:<22} {:>12.2} {:>12.2}",
        "single country", s_early, s_late
    );

    println!("\nregional-traffic distance over time:");
    for (epoch, dist) in series.iter().step_by(10) {
        println!("  epoch {epoch:>3}: {dist:>6.2}");
    }

    let pulled_closer = s_late < s_early * 0.8;
    let beats_uniform = s_late < 0.6 * u_late;
    println!(
        "\npaper claim: with virtual rings, data of a regionally accessed application moves close to that region"
    );
    println!(
        "measured   : regional clients served at distance {s_late:.1} (was {s_early:.1} at startup; \
         uniform control {u_late:.1}) → {}",
        if pulled_closer && beats_uniform { "REPRODUCED" } else { "NOT reproduced" }
    );
}
