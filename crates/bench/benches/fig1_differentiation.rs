//! Fig. 1 (concept) — differentiated availability guarantees on one cloud.
//!
//! The paper's Fig. 1 is a diagram: three applications with different
//! availability levels, each on its own virtual ring over the same
//! infrastructure. This harness measures the realized differentiation on
//! the §III-A setup and prints it as a table: each ring must converge to
//! its own replica count and availability, independently of its neighbours.

use skute_sim::paper;

fn main() {
    println!("=== Fig. 1 / §I — differentiated availability per application ===\n");
    let mut scenario = paper::base_scenario();
    scenario.epochs = 60;
    let recorder = skute_bench::run_and_record(scenario, 0, |_| {});
    let last = recorder.observations().last().expect("epochs ran");
    let report = &last.report;

    println!(
        "{:<8} {:>8} {:>12} {:>14} {:>12} {:>10}",
        "ring", "target", "vnodes", "replicas/part", "mean avail", "SLA ok"
    );
    for ring in &report.rings {
        println!(
            "{:<8} {:>8} {:>12} {:>14.2} {:>12.1} {:>10}",
            format!("{}", ring.ring),
            ring.target_replicas,
            ring.vnodes,
            ring.vnodes as f64 / ring.partitions as f64,
            ring.mean_availability,
            skute_bench::pct(ring.sla_satisfied_frac),
        );
    }

    println!(
        "\npaper claim: one ring per availability level; levels satisfied by 2, 3, 4 replicas"
    );
    let ok = report
        .rings
        .iter()
        .all(|r| r.vnodes as f64 / r.partitions as f64 >= r.target_replicas as f64 * 0.95);
    let ordered = report.rings[0].vnodes < report.rings[1].vnodes
        && report.rings[1].vnodes < report.rings[2].vnodes;
    println!(
        "measured   : rings at {:.2}/{:.2}/{:.2} replicas per partition → {}",
        report.rings[0].vnodes as f64 / report.rings[0].partitions as f64,
        report.rings[1].vnodes as f64 / report.rings[1].partitions as f64,
        report.rings[2].vnodes as f64 / report.rings[2].partitions as f64,
        if ok && ordered {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    skute_bench::footer("fig1_differentiation", &recorder);
}
