//! Ablation A1 — the α (storage) and β (load) terms of the rent (eq. 1).
//!
//! DESIGN.md calls out eq. (1)'s normalizing factors as the knobs that make
//! rent a congestion signal. This sweep disables each term in turn on a
//! scaled scenario with a storage-heavy insert stream and reports how
//! balanced storage and query load end up: without α storage balance should
//! degrade, without β load balance should degrade.

use skute_core::metrics::EpochReport;
use skute_sim::{paper, Simulation};
use skute_workload::{InsertGenerator, Pareto};

struct Outcome {
    alpha: f64,
    beta: f64,
    storage_cv: f64,
    load_cv: f64,
    insert_failures: u64,
    migrations: u64,
}

fn storage_cv(sim: &Simulation) -> f64 {
    let fracs: Vec<f64> = sim
        .cloud()
        .cluster()
        .alive()
        .map(|s| s.storage_frac())
        .collect();
    let n = fracs.len() as f64;
    let mean = fracs.iter().sum::<f64>() / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = fracs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean
}

fn run(alpha: f64, beta: f64) -> Outcome {
    let mut scenario = paper::scaled_scenario("ablation-rent", 24, 6_000, 40);
    scenario.config.economy.alpha = alpha;
    scenario.config.economy.beta = beta;
    scenario.server_storage_bytes = 512 << 20;
    scenario.config.split_threshold_bytes = 16 << 20;
    scenario.inserts = Some(InsertGenerator {
        rate_per_epoch: 300.0,
        object_bytes: 500 * 1000,
        key_dist: Pareto::paper(),
        unique_key_factor: 1000,
    });
    let mut sim = Simulation::new(scenario);
    let mut insert_failures = 0;
    let mut migrations = 0;
    let mut last: Option<EpochReport> = None;
    for _ in 0..40 {
        let obs = sim.step();
        insert_failures += obs.report.insert_failures;
        migrations += obs.report.actions.migrations;
        last = Some(obs.report);
    }
    let report = last.unwrap();
    Outcome {
        alpha,
        beta,
        storage_cv: storage_cv(&sim),
        load_cv: report.rings.iter().map(|r| r.load_cv).sum::<f64>() / 3.0,
        insert_failures,
        migrations,
    }
}

fn main() {
    println!("=== Ablation A1 — rent terms α (storage) and β (query load), eq. (1) ===\n");
    println!(
        "{:>7} {:>7} {:>12} {:>10} {:>14} {:>12}",
        "alpha", "beta", "storage CV", "load CV", "insert fails", "migrations"
    );
    let mut rows = Vec::new();
    for (alpha, beta) in [(0.0, 0.0), (0.0, 1.0), (1.0, 0.0), (1.0, 1.0), (2.0, 2.0)] {
        let o = run(alpha, beta);
        println!(
            "{:>7.1} {:>7.1} {:>12.3} {:>10.3} {:>14} {:>12}",
            o.alpha, o.beta, o.storage_cv, o.load_cv, o.insert_failures, o.migrations
        );
        rows.push(o);
    }
    let baseline = &rows[3]; // α=1, β=1
    let no_alpha = &rows[1];
    println!(
        "\nwith α=0 the storage imbalance is {:.2}× the full economy's \
         (α makes rent track storage pressure)",
        no_alpha.storage_cv / baseline.storage_cv.max(1e-9)
    );
    println!(
        "conclusion: {}",
        if no_alpha.storage_cv >= baseline.storage_cv {
            "storage term α is load-bearing — matches the design rationale"
        } else {
            "unexpected: α had no effect in this configuration"
        }
    );
}
