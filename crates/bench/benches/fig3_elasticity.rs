//! Fig. 3 — "Total (per ring) number of virtual nodes upon upgrades and
//! failures."
//!
//! Paper claim (§III-C): 20 servers added at epoch 100, 20 removed at epoch
//! 200; "our approach is very robust to resource upgrading or failures: the
//! total number of virtual nodes remains constant after adding resources to
//! the data cloud and increases upon failure to maintain high availability."

use skute_sim::paper;

fn main() {
    println!("=== Fig. 3 — per-ring vnode totals under server arrival and failure ===\n");
    println!(
        "{:>6} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9}",
        "epoch", "alive", "ring0", "ring1", "ring2", "repairs", "lost"
    );
    let scenario = paper::fig3_scenario();
    let recorder = skute_bench::run_and_record(scenario, 20, |obs| {
        let r = &obs.report;
        println!(
            "{:>6} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9}",
            r.epoch,
            r.alive_servers,
            r.rings[0].vnodes,
            r.rings[1].vnodes,
            r.rings[2].vnodes,
            r.actions.availability_replications,
            r.partitions_lost,
        );
    });

    let obs = recorder.observations();
    let at = |epoch: usize, ring: usize| obs[epoch - 1].report.rings[ring].vnodes as f64;
    let window_mean = |lo: usize, hi: usize, ring: usize| {
        let s: f64 = (lo..hi).map(|e| at(e, ring)).sum();
        s / (hi - lo) as f64
    };

    println!("\npaper claim: totals constant across the epoch-100 upgrade; rise after the epoch-200 failure");
    let mut reproduced = true;
    for ring in 0..3 {
        let before_add = window_mean(80, 100, ring);
        let after_add = window_mean(120, 140, ring);
        let before_fail = window_mean(180, 200, ring);
        let after_fail = window_mean(260, 300, ring);
        let add_stable = (after_add - before_add).abs() / before_add < 0.05;
        let fail_recovered = after_fail >= before_fail * 0.98;
        reproduced &= add_stable && fail_recovered;
        println!(
            "ring{ring}: {before_add:.0} → {after_add:.0} across upgrade ({}), \
             {before_fail:.0} → {after_fail:.0} across failure ({})",
            if add_stable { "stable" } else { "MOVED" },
            if fail_recovered {
                "recovered"
            } else {
                "NOT recovered"
            },
        );
    }
    // SLA must hold at the end despite losing 20 servers.
    let sla_end: f64 = obs
        .last()
        .unwrap()
        .report
        .rings
        .iter()
        .map(|r| r.sla_satisfied_frac)
        .sum::<f64>()
        / 3.0;
    println!(
        "final SLA satisfaction (mean over rings): {} → {}",
        skute_bench::pct(sla_end),
        if reproduced && sla_end > 0.95 {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    skute_bench::footer("fig3_elasticity", &recorder);
}
