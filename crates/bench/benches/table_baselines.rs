//! A3 — baseline comparison table.
//!
//! The paper positions Skute against economic placement without geography
//! (refs. [3, 4]) and Dynamo's successor-list placement (ref. [5]). This
//! harness places 200 partitions at k = 2, 3, 4 replicas with each policy
//! on the §III-A cluster and reports availability, rent and survival of
//! 20-server failure bursts (the §III-C event).

use skute_baseline::{
    evaluate, CheapestPlacement, CtxFixture, EvaluationConfig, MaxSpreadPlacement, RandomPlacement,
    StrategyOutcome, SuccessorPlacement,
};
use skute_core::placement::EconomicPlacement;
use skute_core::{threshold_for_replicas, PlacementStrategy};

fn row(o: &StrategyOutcome) {
    println!(
        "{:<16} {:>12.1} {:>10} {:>12.4} {:>12} {:>10}",
        o.name,
        o.mean_availability,
        skute_bench::pct(o.sla_satisfied_frac),
        o.mean_rent,
        skute_bench::pct(o.surviving_sla_frac),
        skute_bench::pct(o.lost_partition_frac),
    );
}

fn main() {
    println!("=== A3 — replica placement baselines (200 partitions, 20-server failure bursts) ===");
    let fixture = CtxFixture::paper();
    for k in [2usize, 3, 4] {
        let cfg = EvaluationConfig {
            partitions: 200,
            replicas: k,
            threshold: threshold_for_replicas(&fixture.topology, k, 0.2),
            failures: 20,
            trials: 20,
            seed: 0xBA5E,
        };
        println!(
            "\n--- k = {k} replicas (threshold {:.1}) ---",
            cfg.threshold
        );
        println!(
            "{:<16} {:>12} {:>10} {:>12} {:>12} {:>10}",
            "strategy", "mean avail", "SLA ok", "mean rent", "survive SLA", "lost all"
        );
        let mut strategies: Vec<Box<dyn PlacementStrategy>> = vec![
            Box::new(EconomicPlacement),
            Box::new(MaxSpreadPlacement::default()),
            Box::new(CheapestPlacement::default()),
            Box::new(SuccessorPlacement),
            Box::new(RandomPlacement::new(7)),
        ];
        let mut outcomes = Vec::new();
        for s in &mut strategies {
            let o = evaluate(s.as_mut(), &fixture, &cfg);
            row(&o);
            outcomes.push(o);
        }
        let economic = &outcomes[0];
        let spread = &outcomes[1];
        let successor = &outcomes[3];
        assert!(economic.sla_satisfied_frac >= 0.99);
        println!(
            "→ economic matches max-spread availability ({}/{} SLA) at {} of its rent; \
             successor-list survives bursts at only {}",
            skute_bench::pct(economic.sla_satisfied_frac),
            skute_bench::pct(spread.sla_satisfied_frac),
            skute_bench::pct(economic.mean_rent / spread.mean_rent.max(1e-12)),
            skute_bench::pct(successor.surviving_sla_frac),
        );
    }
    println!(
        "\npaper claim: geography-aware economic placement gives availability at minimum cost;"
    );
    println!("key-value stores without geographic awareness lose whole replica sets to correlated failures.");
}
