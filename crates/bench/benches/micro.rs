//! Criterion micro-benchmarks of Skute's hot paths: the diversity metric,
//! ring routing, availability evaluation (eq. 2), candidate scoring
//! (eq. 3), workload sampling and a full end-to-end epoch tick.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use skute_baseline::CtxFixture;
use skute_core::placement::economic_target;
use skute_core::{availability_of, greedy_max_availability};
use skute_geo::{diversity, Location, Topology};
use skute_ring::{RingId, VirtualRing};
use skute_sim::{paper, Simulation};
use skute_workload::{Pareto, Poisson};

fn bench_diversity(c: &mut Criterion) {
    let t = Topology::paper();
    let servers: Vec<Location> = t.iter_servers().collect();
    c.bench_function("geo/diversity_pair", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for i in 0..servers.len() {
                acc += u32::from(diversity(
                    black_box(&servers[i]),
                    black_box(&servers[(i * 7 + 13) % servers.len()]),
                ));
            }
            acc
        })
    });
}

fn bench_routing(c: &mut Criterion) {
    let ring = VirtualRing::new(RingId::new(0, 0), 200);
    let keys: Vec<[u8; 8]> = (0..1024u64).map(|i| i.to_le_bytes()).collect();
    c.bench_function("ring/route_1024_keys", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for k in &keys {
                acc ^= ring.route(black_box(k)).0;
            }
            acc
        })
    });
}

fn bench_availability(c: &mut Criterion) {
    let t = Topology::paper();
    let mut group = c.benchmark_group("core/availability_eq2");
    for k in [2usize, 4, 8] {
        let replicas: Vec<(Location, f64)> = (0..k)
            .map(|i| (t.server_at((i * 37 % 200) as u64), 1.0))
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(k), &replicas, |b, r| {
            b.iter(|| availability_of(black_box(r)))
        });
    }
    group.finish();
    c.bench_function("core/greedy_max_availability_k4", |b| {
        b.iter(|| greedy_max_availability(black_box(&t), 4))
    });
}

fn bench_candidate_selection(c: &mut Criterion) {
    let fixture = CtxFixture::paper();
    let ctx = fixture.ctx();
    let existing = vec![skute_cluster::ServerId(0), skute_cluster::ServerId(57)];
    c.bench_function("core/economic_target_200_servers", |b| {
        b.iter(|| economic_target(black_box(&ctx), black_box(&existing), 1 << 20, &[], None))
    });
}

fn bench_workload(c: &mut Criterion) {
    c.bench_function("workload/pareto_1000", |b| {
        let d = Pareto::paper();
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| d.sample_n(&mut rng, 1000))
    });
    c.bench_function("workload/poisson_lambda_3000", |b| {
        let d = Poisson::new(3000.0);
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| d.sample(&mut rng))
    });
}

fn bench_epoch_tick(c: &mut Criterion) {
    c.bench_function("sim/epoch_tick_48_partitions", |b| {
        let mut sim = Simulation::new(paper::scaled_scenario("bench-tick", 16, 3000, 1));
        // Converge before measuring the steady-state tick.
        for _ in 0..10 {
            sim.step();
        }
        b.iter(|| sim.step().report.epoch)
    });
}

criterion_group!(
    benches,
    bench_diversity,
    bench_routing,
    bench_availability,
    bench_candidate_selection,
    bench_workload,
    bench_epoch_tick,
);
criterion_main!(benches);
