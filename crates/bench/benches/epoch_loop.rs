//! The epoch-loop throughput benchmark: the rent-indexed decision pipeline
//! against the brute-force full-scan oracle at M ∈ {16, 50, 200} partitions
//! per application, from a cold start (covering the decision-heavy
//! convergence phase), plus the M = 200 thread-scaling rows at pipeline
//! threads ∈ {1, 2, 4, 8}, a pool-overhead row (M = 16 at 8 threads:
//! dispatch handoff dominates, charting the persistent pool's fixed cost),
//! the commit-mode rows (sequential traffic-commit oracle vs the default
//! reconciled commit), a convergence/churn row (M = 200 under a
//! failure burst plus a capacity upgrade — many actions per epoch) that
//! also charts the decision commit pass's speculation hit rate, and an
//! outage-burst row (M = 200 under a whole-country failure) gating the
//! repair pass's throughput under correlated failures, and the M = 2000
//! memory-scale rows (steady + churn) anchoring the gate's scaling-slope
//! guard and the `bytes_per_partition` RSS figure. Rows
//! sharing a workload replay the same bitwise trajectory; only wall clock
//! differs. Prints the comparison table and writes the machine-readable
//! perf trajectory to `BENCH_epoch.json` at the workspace root; CI's
//! bench-smoke job diffs that file against the committed one with the
//! `bench_gate` binary (rows matched by `(partitions, threads, commit,
//! workload)` key; unmatched rows skip with a warning, and the hit rate,
//! batch stats and memory figure are informational).
//!
//! Run with `cargo bench -p skute-bench --bench epoch_loop`.

use skute_bench::{perf, workspace_root};

fn main() {
    println!("epoch_loop: indexed vs brute-force decision pipeline\n");
    // Measured before the sweep: the sweep's own M = 2000 rows would
    // otherwise leave the allocator holding enough freed pages that the
    // RSS delta reads zero.
    let bytes_per_partition = perf::measure_bytes_per_partition();
    let results = perf::standard_sweep();
    perf::print_table(&results);
    if let Some(bpp) = bytes_per_partition {
        println!("\nbytes/partition (RSS delta at M = 2000): {bpp}");
    }
    let path = workspace_root().join("BENCH_epoch.json");
    match perf::write_json_full(&path, &results, bytes_per_partition) {
        Ok(()) => println!("\nwrote {}", path.display()),
        Err(e) => println!("\n(could not write {}: {e})", path.display()),
    }
    if let Some(r) = results.iter().find(|r| {
        r.partitions == 200
            && r.threads == 1
            && !r.sequential_commit
            && r.workload == perf::Workload::Steady
    }) {
        println!(
            "M = 200 speedup: {:.2}x ({:.2} → {:.2} epochs/sec)",
            r.speedup(),
            r.brute_force.epochs_per_sec,
            r.indexed.epochs_per_sec
        );
    }
    for workload in [perf::Workload::Churn, perf::Workload::Outage] {
        if let Some(r) = results.iter().find(|r| r.workload == workload) {
            println!(
                "M = {} {} speculation hit rate: {} ({} hits / {} misses)",
                r.partitions,
                workload.label(),
                match r.spec_hit_rate() {
                    Some(hr) => format!("{:.0}%", hr * 100.0),
                    None => "n/a".to_string(),
                },
                r.indexed.spec_hits,
                r.indexed.spec_misses
            );
        }
    }
}
