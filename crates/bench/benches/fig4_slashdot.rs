//! Fig. 4 — "Average query load per virtual ring per server over time."
//!
//! Paper claim (§III-D): under a Slashdot-style spike (3000 → 183 000
//! queries/epoch in 25 epochs, decaying back over 250) with application
//! load fractions 4/7, 2/7, 1/7, "the query load per server remains quite
//! balanced despite the variations in the total query load."

use skute_sim::paper;

fn main() {
    println!("=== Fig. 4 — average query load per ring per server under a Slashdot spike ===\n");
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>8} {:>8} {:>8}",
        "epoch", "rate", "ring0/srv", "ring1/srv", "ring2/srv", "cv0", "cv1", "cv2"
    );
    let scenario = paper::fig4_scenario();
    let recorder = skute_bench::run_and_record(scenario, 25, |obs| {
        let r = &obs.report;
        println!(
            "{:>6} {:>10.0} {:>10.2} {:>10.2} {:>10.2} {:>8.3} {:>8.3} {:>8.3}",
            r.epoch,
            obs.offered_rate,
            r.rings[0].load_per_server,
            r.rings[1].load_per_server,
            r.rings[2].load_per_server,
            r.rings[0].load_cv,
            r.rings[1].load_cv,
            r.rings[2].load_cv,
        );
    });

    let obs = recorder.observations();
    // Ring shares at the peak must follow 4/7, 2/7, 1/7.
    let peak = obs
        .iter()
        .max_by(|a, b| a.offered_rate.total_cmp(&b.offered_rate))
        .unwrap();
    let served: Vec<f64> = peak.report.rings.iter().map(|r| r.queries_served).collect();
    let total_served: f64 = served.iter().sum();
    let shares: Vec<f64> = served.iter().map(|s| s / total_served).collect();
    println!("\npaper claim: load fractions 4/7 ≈ 0.571, 2/7 ≈ 0.286, 1/7 ≈ 0.143; per-server load stays balanced");
    println!(
        "measured   : peak-epoch ring shares {:.3}/{:.3}/{:.3} at rate {:.0}",
        shares[0], shares[1], shares[2], peak.offered_rate
    );
    // Load balance: coefficient of variation across servers during the
    // spike plateau stays bounded.
    let spike_cv: f64 = obs[110..150]
        .iter()
        .map(|o| o.report.rings[0].load_cv)
        .sum::<f64>()
        / 40.0;
    let dropped: f64 = obs
        .iter()
        .map(|o| {
            o.report
                .rings
                .iter()
                .map(|r| r.queries_dropped)
                .sum::<f64>()
        })
        .sum();
    let offered: f64 = obs.iter().map(|o| o.offered_rate).sum();
    let shares_ok = (shares[0] - 4.0 / 7.0).abs() < 0.05
        && (shares[1] - 2.0 / 7.0).abs() < 0.05
        && (shares[2] - 1.0 / 7.0).abs() < 0.05;
    println!(
        "measured   : ring0 load CV over the spike plateau {:.3}; dropped {:.4}% of all queries → {}",
        spike_cv,
        100.0 * dropped / offered,
        if shares_ok && dropped / offered < 0.01 { "REPRODUCED" } else { "NOT reproduced" }
    );
    skute_bench::footer("fig4_slashdot", &recorder);
}
