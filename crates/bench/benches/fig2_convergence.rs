//! Fig. 2 — "Replication process at startup: the number of virtual nodes
//! per server."
//!
//! Paper claim (§III-B): "the virtual nodes start replicating and migrating
//! to other servers and the system soon reaches equilibrium, where fewer
//! virtual nodes reside at expensive servers."
//!
//! Reproduced series: mean vnodes per cheap ($100) server vs mean vnodes per
//! expensive ($125) server over the startup epochs.

use skute_sim::paper;

fn main() {
    println!("=== Fig. 2 — replication process at startup ===\n");
    println!(
        "{:>6} {:>14} {:>14} {:>14} {:>10} {:>10}",
        "epoch", "total vnodes", "cheap mean", "expensive mean", "repairs", "migrations"
    );
    let scenario = paper::fig2_scenario();
    let recorder = skute_bench::run_and_record(scenario, 10, |obs| {
        println!(
            "{:>6} {:>14} {:>14.2} {:>14.2} {:>10} {:>10}",
            obs.report.epoch,
            obs.report.total_vnodes(),
            obs.cheap_mean_vnodes,
            obs.expensive_mean_vnodes,
            obs.report.actions.availability_replications,
            obs.report.actions.migrations,
        );
    });

    // Convergence check: totals stable over the final 20 epochs.
    let final_total = recorder.tail_mean(20, |o| o.report.total_vnodes() as f64);
    let early_total = recorder.observations()[0].report.total_vnodes() as f64;
    let cheap = recorder.tail_mean(20, |o| o.cheap_mean_vnodes);
    let expensive = recorder.tail_mean(20, |o| o.expensive_mean_vnodes);
    let repairs_late =
        recorder.tail_mean(20, |o| o.report.actions.availability_replications as f64);

    println!("\npaper claim: system soon reaches equilibrium; fewer vnodes at expensive servers");
    println!(
        "measured   : vnodes {} → {:.0} (stable: {:.2} repairs/epoch at the end)",
        early_total, final_total, repairs_late
    );
    println!(
        "measured   : cheap servers host {cheap:.2} vnodes on average, expensive {expensive:.2} \
         → {}",
        if cheap > expensive {
            "REPRODUCED"
        } else {
            "NOT reproduced"
        }
    );
    skute_bench::footer("fig2_convergence", &recorder);
}
