//! Ablation A2 — the decision window f of §II-C.
//!
//! A virtual node acts only after f consecutive epochs of same-sign
//! balance, so f gates how fast the economy reacts to a load spike: small f
//! replicates popular partitions quickly (and churns more as the wave
//! recedes), large f smooths the reaction but scales out later. The sweep
//! drives a Slashdot spike through a scaled cloud and reports time-to-
//! scale-out, peak vnodes, churn and dropped queries, plus SLA stability
//! under a concurrent 20-server failure burst.

use skute_sim::{paper, CloudEvent, Schedule, Simulation, TraceKind};
use skute_workload::SlashdotTrace;

struct Outcome {
    window: usize,
    first_scale_out: Option<u64>,
    peak_vnodes: usize,
    churn_per_epoch: f64,
    dropped_frac: f64,
    final_sla: f64,
}

fn run(window: usize) -> Outcome {
    let mut scenario = paper::scaled_scenario("ablation-window", 24, 3_000, 90);
    scenario.config.economy.decision_window = window;
    scenario.trace = TraceKind::Slashdot(SlashdotTrace {
        base: 3_000.0,
        peak: 90_000.0,
        spike_start: 15,
        ramp_epochs: 5,
        decay_epochs: 40,
    });
    scenario.load_fractions = vec![4.0, 2.0, 1.0];
    scenario.schedule = Schedule::new().at(30, CloudEvent::RemoveServers { count: 20 });
    let mut sim = Simulation::new(scenario);
    let mut first_scale_out = None;
    let mut peak_vnodes = 0;
    let mut churn = 0u64;
    let mut offered = 0.0;
    let mut dropped = 0.0;
    let mut final_sla = 0.0;
    for epoch in 0..90u64 {
        let obs = sim.step();
        let r = &obs.report;
        if r.actions.profit_replications > 0 && first_scale_out.is_none() && epoch >= 15 {
            first_scale_out = Some(epoch - 15);
        }
        peak_vnodes = peak_vnodes.max(r.total_vnodes());
        churn += r.actions.profit_replications + r.actions.suicides + r.actions.migrations;
        offered += obs.offered_rate;
        dropped += r.rings.iter().map(|x| x.queries_dropped).sum::<f64>();
        final_sla =
            r.rings.iter().map(|x| x.sla_satisfied_frac).sum::<f64>() / r.rings.len() as f64;
    }
    Outcome {
        window,
        first_scale_out,
        peak_vnodes,
        churn_per_epoch: churn as f64 / 90.0,
        dropped_frac: dropped / offered.max(1.0),
        final_sla,
    }
}

fn main() {
    println!(
        "=== Ablation A2 — decision window f (§II-C) under a load spike + failure burst ===\n"
    );
    println!(
        "{:>4} {:>16} {:>12} {:>14} {:>10} {:>11}",
        "f", "scale-out lag", "peak vnodes", "churn/epoch", "dropped", "final SLA"
    );
    let mut outcomes = Vec::new();
    for window in [1usize, 2, 4, 8] {
        let o = run(window);
        println!(
            "{:>4} {:>16} {:>12} {:>14.2} {:>10} {:>11}",
            o.window,
            o.first_scale_out
                .map(|e| format!("{e} epochs"))
                .unwrap_or_else(|| "never".into()),
            o.peak_vnodes,
            o.churn_per_epoch,
            skute_bench::pct(o.dropped_frac),
            skute_bench::pct(o.final_sla),
        );
        outcomes.push(o);
    }
    let lag = |o: &Outcome| o.first_scale_out.unwrap_or(u64::MAX);
    let ordered = lag(&outcomes[0]) <= lag(&outcomes[3]);
    println!(
        "\nsmaller windows scale out {} (f=1 lag {:?} vs f=8 lag {:?}); all windows keep the SLA",
        if ordered {
            "sooner"
        } else {
            "UNEXPECTEDLY later"
        },
        outcomes[0].first_scale_out,
        outcomes[3].first_scale_out,
    );
    println!(
        "conclusion: {}",
        if ordered && outcomes.iter().all(|o| o.final_sla > 0.95) {
            "f trades reaction speed for churn without endangering the SLA"
        } else {
            "unexpected ordering — inspect the sweep"
        }
    );
}
