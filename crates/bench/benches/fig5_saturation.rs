//! Fig. 5 — "Storage saturation: insert failures."
//!
//! Paper claim (§III-E): inserting 2000 × 500 KB objects per epoch
//! (Pareto(1, 50)-distributed keys), "our approach manages to balance the
//! used storage efficiently and fast enough so that there are no data
//! losses for used capacity up to 96% of the total storage."
//!
//! Reproduced series: insert failures per epoch against used capacity.

use skute_sim::paper;

fn main() {
    println!("=== Fig. 5 — storage saturation: insert failures vs used capacity ===\n");
    println!(
        "{:>6} {:>10} {:>12} {:>9} {:>9} {:>10}",
        "epoch", "used", "failures", "splits", "migr", "vnodes"
    );
    let scenario = paper::fig5_scenario();
    let recorder = skute_bench::run_and_record(scenario, 10, |obs| {
        let r = &obs.report;
        println!(
            "{:>6} {:>10} {:>12} {:>9} {:>9} {:>10}",
            r.epoch,
            skute_bench::pct(r.storage_frac()),
            r.insert_failures,
            r.actions.splits,
            r.actions.migrations,
            r.total_vnodes(),
        );
    });

    let obs = recorder.observations();
    // First epoch with a sustained failure rate (> 1% of the stream).
    let sustained = obs.iter().find(|o| o.report.insert_failures > 20);
    let first_any = obs.iter().find(|o| o.report.insert_failures > 0);
    println!("\npaper claim: no data losses for used capacity up to 96% of total storage");
    match (first_any, sustained) {
        (Some(first), Some(sus)) => {
            let frac = sus.report.storage_frac();
            println!(
                "measured   : first stray failure at {} used; sustained failures from {} used → {}",
                skute_bench::pct(first.report.storage_frac()),
                skute_bench::pct(frac),
                if frac > 0.85 { "REPRODUCED (shape)" } else { "NOT reproduced" }
            );
        }
        (Some(first), None) => println!(
            "measured   : only stray failures (first at {} used), none sustained → REPRODUCED (shape)",
            skute_bench::pct(first.report.storage_frac())
        ),
        (None, _) => println!(
            "measured   : no insert failures at all up to {} used → REPRODUCED (shape)",
            skute_bench::pct(obs.last().unwrap().report.storage_frac())
        ),
    }
    skute_bench::footer("fig5_saturation", &recorder);
}
