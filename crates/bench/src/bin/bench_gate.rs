//! `bench_gate` — fails CI when the epoch-loop perf trajectory regresses.
//!
//! ```text
//! bench_gate --baseline BENCH_epoch.committed.json --current BENCH_epoch.json \
//!            [--ratio-tolerance 0.3] [--abs-tolerance 0.6]
//! ```
//!
//! Parses both `BENCH_epoch.json` documents, matches rows **by key** —
//! `(partitions, threads, commit mode, workload)` — skipping unmatched
//! rows on either side with a warning (so adding or retiring bench rows
//! never fails the gate). The speculation hit rate of matched rows is
//! **informational**: a collapse warns, never fails. The gate exits
//! non-zero when a matched row fell below either floor:
//!
//! * the **speedup ratio** (indexed over brute-force epochs/sec, both
//!   measured in the same run) — hardware-neutral, so a faster or slower
//!   CI runner than the machine that produced the committed baseline
//!   neither masks a code regression nor fails spuriously; this is the
//!   primary gate;
//! * the **absolute indexed epochs/sec** — a backstop for changes that
//!   slow both pipelines equally; hardware-sensitive, so its default
//!   tolerance is generous.
//!
//! Rows whose thread budget exceeds the committed baseline's `host_cpus`
//! are advisory-only (their floors demote to warnings — oversubscribed
//! wall clock charts scheduler contention, not the code), a scaling-slope
//! guard fails when the M = 200 → M = 2000 throughput decay steepens past
//! the ratio tolerance, and the `bytes_per_partition` memory figure is
//! printed informationally.

use std::io::Write as _;
use std::process::ExitCode;

use skute_bench::perf::{
    gate_trajectory, parse_bytes_per_partition, parse_host_cpus, parse_trajectory,
};

struct Args {
    baseline: String,
    current: String,
    ratio_tolerance: f64,
    abs_tolerance: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut baseline = None;
    let mut current = None;
    let mut ratio_tolerance = 0.3f64;
    let mut abs_tolerance = 0.6f64;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} expects a value"));
        match flag.as_str() {
            "--baseline" => baseline = Some(value("--baseline")?),
            "--current" => current = Some(value("--current")?),
            "--ratio-tolerance" => {
                ratio_tolerance = value("--ratio-tolerance")?
                    .parse()
                    .map_err(|e| format!("--ratio-tolerance: {e}"))?
            }
            "--abs-tolerance" => {
                abs_tolerance = value("--abs-tolerance")?
                    .parse()
                    .map_err(|e| format!("--abs-tolerance: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "bench_gate: diff BENCH_epoch.json against the committed trajectory\n\n\
                     USAGE: bench_gate --baseline PATH --current PATH\n\
                            [--ratio-tolerance FRAC] [--abs-tolerance FRAC]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    if !(0.0..1.0).contains(&ratio_tolerance) || !(0.0..1.0).contains(&abs_tolerance) {
        return Err("tolerances must lie in [0, 1)".into());
    }
    Ok(Args {
        baseline: baseline.ok_or("--baseline is required")?,
        current: current.ok_or("--current is required")?,
        ratio_tolerance,
        abs_tolerance,
    })
}

/// Emits a GitHub Actions workflow annotation (`::error::` /
/// `::warning::`) when running under Actions; a plain line otherwise.
/// Annotations surface on the PR's checks tab without digging into logs.
fn gh_annotate(level: &str, msg: &str) {
    if std::env::var_os("GITHUB_ACTIONS").is_some() {
        // Annotation payloads are single-line; fold any newlines.
        println!("::{level}::{}", msg.replace('\n', " "));
    } else {
        println!("bench_gate: {level}: {msg}");
    }
}

/// Appends markdown lines to the CI job summary, if one is available.
fn append_step_summary(markdown: &str) {
    let Ok(summary) = std::env::var("GITHUB_STEP_SUMMARY") else {
        return;
    };
    if let Ok(mut f) = std::fs::OpenOptions::new().append(true).open(&summary) {
        let _ = writeln!(f, "{markdown}");
    }
}

/// Warns — on stdout and, when `$GITHUB_STEP_SUMMARY` is set, as a line
/// in the CI job summary — when the committed baseline was produced on a
/// machine with a different core count than this runner. The ratio floor
/// is hardware-neutral, but the absolute epochs/sec backstop and the
/// scaling rows' shape are only comparable on similar hardware.
fn warn_on_host_mismatch(baseline_path: &str, baseline_body: &str) {
    let Some(baseline_cpus) = parse_host_cpus(baseline_body) else {
        return; // Pre-host_cpus document: nothing to compare.
    };
    let runner_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if baseline_cpus == runner_cpus {
        return;
    }
    let msg = format!(
        "committed baseline {baseline_path} was produced on a {baseline_cpus}-cpu host but \
         this runner has {runner_cpus} cpus — the absolute epochs/sec floor and the \
         thread-scaling rows are not hardware-comparable; trust the speedup-ratio floor \
         and consider recommitting the baseline from this runner class"
    );
    gh_annotate("warning", &msg);
    append_step_summary(&format!(":warning: **bench_gate**: {msg}"));
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            return ExitCode::FAILURE;
        }
    };
    let read = |path: &str| match std::fs::read_to_string(path) {
        Ok(body) => Some(body),
        Err(e) => {
            eprintln!("error: could not read {path}: {e}");
            None
        }
    };
    let (Some(baseline), Some(current)) = (read(&args.baseline), read(&args.current)) else {
        return ExitCode::FAILURE;
    };
    warn_on_host_mismatch(&args.baseline, &baseline);
    // The memory figure is informational: printed, never gated.
    match (
        parse_bytes_per_partition(&baseline),
        parse_bytes_per_partition(&current),
    ) {
        (Some(b), Some(c)) => {
            println!("bench_gate: bytes/partition (RSS at M = 2000): {b} → {c} (informational)");
        }
        (_, Some(c)) => {
            println!("bench_gate: bytes/partition (RSS at M = 2000): {c} (informational)")
        }
        _ => {}
    }
    let baseline_host_cpus = parse_host_cpus(&baseline);
    let baseline = parse_trajectory(&baseline);
    let current = parse_trajectory(&current);
    if baseline.is_empty() {
        eprintln!("error: no result rows in {}", args.baseline);
        return ExitCode::FAILURE;
    }
    if current.is_empty() {
        eprintln!("error: no result rows in {}", args.current);
        return ExitCode::FAILURE;
    }
    println!(
        "bench_gate: {} baseline rows vs {} fresh rows, ratio tolerance {:.0}%, \
         absolute tolerance {:.0}%",
        baseline.len(),
        current.len(),
        args.ratio_tolerance * 100.0,
        args.abs_tolerance * 100.0
    );
    let ratio = |eps: f64, brute: f64| if brute > 0.0 { eps / brute } else { 0.0 };
    let mut summary_table = String::from(
        "### bench_gate\n\n| row | indexed epochs/sec | Δ | speedup |\n|---|---|---|---|\n",
    );
    for b in &baseline {
        let fresh = current.iter().find(|c| c.key() == b.key());
        match fresh {
            Some(c) => {
                let delta = if b.indexed_eps > 0.0 {
                    format!(
                        "{:+.1}%",
                        100.0 * (c.indexed_eps - b.indexed_eps) / b.indexed_eps
                    )
                } else {
                    "n/a".to_string()
                };
                let hit_rate = match (b.spec_hit_rate, c.spec_hit_rate) {
                    (Some(bh), Some(ch)) => {
                        format!(", spec hit {:.0}% → {:.0}%", bh * 100.0, ch * 100.0)
                    }
                    _ => String::new(),
                };
                println!(
                    "  {}: indexed {:>10.2} → {:>10.2} epochs/sec ({delta}), \
                     speedup {:.2}x → {:.2}x{hit_rate}",
                    b.describe_key(),
                    b.indexed_eps,
                    c.indexed_eps,
                    ratio(b.indexed_eps, b.brute_eps),
                    ratio(c.indexed_eps, c.brute_eps),
                );
                summary_table.push_str(&format!(
                    "| {} | {:.1} → {:.1} | {delta} | {:.2}x → {:.2}x |\n",
                    b.describe_key(),
                    b.indexed_eps,
                    c.indexed_eps,
                    ratio(b.indexed_eps, b.brute_eps),
                    ratio(c.indexed_eps, c.brute_eps),
                ));
            }
            None => {
                println!("  {}: row missing (skipped)", b.describe_key());
                summary_table.push_str(&format!("| {} | _row missing_ | | |\n", b.describe_key()));
            }
        }
    }
    let report = gate_trajectory(
        &baseline,
        &current,
        args.ratio_tolerance,
        args.abs_tolerance,
        baseline_host_cpus,
    );
    for w in &report.warnings {
        gh_annotate("warning", w);
    }
    if report.passed() {
        let verdict = format!(
            "trajectory holds ({} row{} gated)",
            report.matched,
            if report.matched == 1 { "" } else { "s" }
        );
        println!("bench_gate: {verdict}");
        summary_table.push_str(&format!("\n:white_check_mark: {verdict}\n"));
        append_step_summary(&summary_table);
        ExitCode::SUCCESS
    } else {
        if report.matched == 0 {
            gh_annotate(
                "error",
                "bench_gate: no baseline row matched any fresh row — the sweep or the \
                 JSON row format changed out from under the gate",
            );
        }
        for v in &report.violations {
            gh_annotate("error", &format!("bench_gate regression: {v}"));
            eprintln!("bench_gate: REGRESSION: {v}");
        }
        summary_table.push_str(&format!(
            "\n:x: **{} regression{}** — see error annotations\n",
            report.violations.len(),
            if report.violations.len() == 1 {
                ""
            } else {
                "s"
            }
        ));
        append_step_summary(&summary_table);
        ExitCode::FAILURE
    }
}
