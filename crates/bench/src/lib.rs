//! # skute-bench
//!
//! Benchmark support: shared helpers for the figure-regeneration harnesses
//! (`benches/fig*.rs`), the ablation sweeps (`benches/ablation_*.rs`), the
//! baseline comparison table (`benches/table_baselines.rs`) and the
//! criterion micro-benchmarks (`benches/micro.rs`).
//!
//! Every figure bench is a `harness = false` bench target: `cargo bench -p
//! skute-bench --bench fig2_convergence` runs the deterministic simulation,
//! prints the paper-vs-measured series to stdout and writes the full
//! time-series CSV under `target/figures/`.

#![warn(missing_docs)]

use std::path::PathBuf;

use skute_sim::{Observation, Recorder, Scenario, Simulation};

pub mod perf;

/// The workspace root (where `BENCH_*.json` trajectory files live).
pub fn workspace_root() -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // workspace root
    p
}

/// Directory the figure benches write their CSVs to.
pub fn figures_dir() -> PathBuf {
    // target/ relative to the workspace root, independent of cwd quirks.
    let target = std::env::var_os("CARGO_TARGET_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            let mut p = workspace_root();
            p.push("target");
            p
        });
    target.join("figures")
}

/// Runs a scenario to completion, printing a progress line every
/// `print_every` epochs via `row`, and returns the recorder.
pub fn run_and_record(
    scenario: Scenario,
    print_every: u64,
    mut row: impl FnMut(&Observation),
) -> Recorder {
    let epochs = scenario.epochs;
    let mut sim = Simulation::new(scenario);
    let mut recorder = Recorder::new();
    for epoch in 0..epochs {
        let obs = sim.step();
        if print_every > 0 && (epoch % print_every == 0 || epoch + 1 == epochs) {
            row(&obs);
        }
        recorder.push(obs);
    }
    recorder
}

/// Formats a ratio as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Prints the standard bench footer with the CSV location.
pub fn footer(name: &str, recorder: &Recorder) {
    let path = figures_dir().join(format!("{name}.csv"));
    match recorder.write_csv(&path) {
        Ok(()) => println!("\nfull time series: {}", path.display()),
        Err(e) => println!("\n(could not write CSV: {e})"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skute_sim::paper;

    #[test]
    fn run_and_record_counts_epochs() {
        let mut printed = 0;
        let rec = run_and_record(paper::scaled_scenario("bench-t", 4, 50, 6), 2, |_| {
            printed += 1;
        });
        assert_eq!(rec.len(), 6);
        assert_eq!(printed, 4, "epochs 0, 2, 4 and the final epoch 5");
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.5), "50.0%");
        assert_eq!(pct(1.0), "100.0%");
    }

    #[test]
    fn figures_dir_is_under_target() {
        let d = figures_dir();
        assert!(d.ends_with("figures"));
    }
}
