//! The epoch-loop performance harness behind `benches/epoch_loop.rs` and
//! `skute-sim --bench-json`: drives identical scaled scenarios through the
//! rent-indexed and brute-force decision pipelines, measures epochs/sec and
//! ns/decision, and serializes the result as `BENCH_epoch.json` so every PR
//! leaves a machine-readable perf trajectory behind.

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use skute_sim::{paper, Simulation};

/// Timing of one pipeline over one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineTiming {
    /// Wall-clock seconds for the whole run.
    pub seconds: f64,
    /// Epochs per wall-clock second.
    pub epochs_per_sec: f64,
    /// Nanoseconds per virtual-node decision (total wall clock over the
    /// summed per-epoch vnode counts — every vnode decides every epoch).
    pub ns_per_decision: f64,
    /// Total vnode decisions over the run.
    pub decisions: u64,
}

/// Head-to-head result for one partition count.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochLoopResult {
    /// Partitions per application (the paper's M).
    pub partitions: usize,
    /// Epochs driven (from a cold start, so the run covers the
    /// decision-heavy convergence phase, not just the converged steady
    /// state).
    pub epochs: u64,
    /// The rent-indexed pipeline (the default).
    pub indexed: PipelineTiming,
    /// The brute-force full-scan pipeline (the pre-optimization oracle).
    pub brute_force: PipelineTiming,
}

impl EpochLoopResult {
    /// Indexed-over-brute-force throughput ratio.
    pub fn speedup(&self) -> f64 {
        if self.brute_force.epochs_per_sec <= 0.0 {
            return 0.0;
        }
        self.indexed.epochs_per_sec / self.brute_force.epochs_per_sec
    }
}

/// Times one pipeline over the scaled scenario with `partitions` per app.
pub fn time_pipeline(partitions: usize, epochs: u64, brute_force: bool) -> PipelineTiming {
    let mut scenario = paper::scaled_scenario(
        &format!("epoch-loop-m{partitions}"),
        partitions,
        3_000,
        epochs,
    );
    scenario.seed = 0xBE_7C;
    scenario.config.brute_force_placement = brute_force;
    let mut sim = Simulation::new(scenario);
    let mut decisions = 0u64;
    let start = Instant::now();
    for _ in 0..epochs {
        let obs = sim.step();
        decisions += obs.report.total_vnodes() as u64;
    }
    let seconds = start.elapsed().as_secs_f64();
    PipelineTiming {
        seconds,
        epochs_per_sec: epochs as f64 / seconds.max(1e-12),
        ns_per_decision: seconds * 1e9 / decisions.max(1) as f64,
        decisions,
    }
}

/// Runs both pipelines at one partition count.
pub fn run_epoch_loop(partitions: usize, epochs: u64) -> EpochLoopResult {
    EpochLoopResult {
        partitions,
        epochs,
        indexed: time_pipeline(partitions, epochs, false),
        brute_force: time_pipeline(partitions, epochs, true),
    }
}

/// The standard sweep: the paper's M = 200 plus two reduced scales. Epoch
/// counts shrink as M grows so the whole sweep stays a smoke-test-sized
/// run while still covering the decision-heavy convergence phase.
pub fn standard_sweep() -> Vec<EpochLoopResult> {
    [(16usize, 40u64), (50, 25), (200, 12)]
        .into_iter()
        .map(|(m, epochs)| run_epoch_loop(m, epochs))
        .collect()
}

fn timing_json(t: &PipelineTiming) -> String {
    format!(
        "{{\"seconds\": {:.6}, \"epochs_per_sec\": {:.3}, \"ns_per_decision\": {:.1}, \"decisions\": {}}}",
        t.seconds, t.epochs_per_sec, t.ns_per_decision, t.decisions
    )
}

/// Serializes a sweep as the `BENCH_epoch.json` document.
pub fn to_json(results: &[EpochLoopResult]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"epoch_loop\",\n");
    out.push_str("  \"scenario\": \"scaled paper workload, cold start, 3000 queries/epoch\",\n");
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"partitions\": {}, \"epochs\": {}, \"indexed\": {}, \"brute_force\": {}, \"speedup\": {:.2}}}{}\n",
            r.partitions,
            r.epochs,
            timing_json(&r.indexed),
            timing_json(&r.brute_force),
            r.speedup(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Writes the sweep to `path` as JSON.
pub fn write_json(path: &Path, results: &[EpochLoopResult]) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json(results).as_bytes())
}

/// Prints the human-readable comparison table for a sweep.
pub fn print_table(results: &[EpochLoopResult]) {
    println!(
        "{:>6} {:>7} {:>14} {:>14} {:>12} {:>12} {:>8}",
        "M", "epochs", "indexed ep/s", "brute ep/s", "idx ns/dec", "brute ns/dec", "speedup"
    );
    for r in results {
        println!(
            "{:>6} {:>7} {:>14.2} {:>14.2} {:>12.0} {:>12.0} {:>7.2}x",
            r.partitions,
            r.epochs,
            r.indexed.epochs_per_sec,
            r.brute_force.epochs_per_sec,
            r.indexed.ns_per_decision,
            r.brute_force.ns_per_decision,
            r.speedup()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_are_positive_and_json_is_well_formed() {
        let r = run_epoch_loop(4, 3);
        assert!(r.indexed.seconds > 0.0);
        assert!(r.brute_force.seconds > 0.0);
        assert!(r.indexed.decisions > 0);
        assert_eq!(
            r.indexed.decisions, r.brute_force.decisions,
            "same trajectory"
        );
        let json = to_json(&[r]);
        assert!(json.contains("\"bench\": \"epoch_loop\""));
        assert!(json.contains("\"partitions\": 4"));
        assert!(json.contains("\"speedup\""));
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in the offline dependency set).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn write_json_roundtrips_to_disk() {
        let path = figures_tmp().join("bench_epoch_test.json");
        let r = run_epoch_loop(4, 2);
        write_json(&path, &[r]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("epoch_loop"));
        let _ = std::fs::remove_file(&path);
    }

    fn figures_tmp() -> std::path::PathBuf {
        let d = crate::figures_dir();
        std::fs::create_dir_all(&d).unwrap();
        d
    }
}
