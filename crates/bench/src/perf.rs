//! The epoch-loop performance harness behind `benches/epoch_loop.rs` and
//! `skute-sim --bench-json`: drives identical scaled scenarios through the
//! rent-indexed and brute-force decision pipelines, measures epochs/sec and
//! ns/decision, and serializes the result as `BENCH_epoch.json` so every PR
//! leaves a machine-readable perf trajectory behind.

use std::io::Write as _;
use std::path::Path;
use std::time::Instant;

use skute_sim::{paper, CloudEvent, Schedule, Simulation};

/// Workload shape layered on the cold start: every row replays the scaled
/// paper scenario, optionally with a mid-run stress schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Workload {
    /// Pure cold start: the decision-heavy convergence ramp, then steady
    /// state.
    Steady,
    /// Server churn: a scattered failure burst plus a capacity upgrade
    /// keep many actions executing per epoch — the workload whose commit
    /// pass the read-set speculation turns from re-walks into validations.
    Churn,
    /// Correlated outage: every server of one country fails in the same
    /// epoch, so the availability-repair pass absorbs a concentrated
    /// backlog under its per-epoch cap — the workload the speculative
    /// repair prepass is measured on.
    Outage,
}

impl Workload {
    /// The JSON/table label (`"steady"` / `"churn"` / `"outage"`).
    pub fn label(self) -> &'static str {
        match self {
            Workload::Steady => "steady",
            Workload::Churn => "churn",
            Workload::Outage => "outage",
        }
    }
}

/// Timing of one pipeline over one scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineTiming {
    /// Wall-clock seconds for the whole run.
    pub seconds: f64,
    /// Epochs per wall-clock second.
    pub epochs_per_sec: f64,
    /// Nanoseconds per virtual-node decision (total wall clock over the
    /// summed per-epoch vnode counts — every vnode decides every epoch).
    pub ns_per_decision: f64,
    /// Total vnode decisions over the run.
    pub decisions: u64,
    /// Speculative eq.-(3) targets honored by the decision commit passes
    /// over the run (identical across pipelines and thread counts — the
    /// trajectory is deterministic).
    pub spec_hits: u64,
    /// Speculations discarded and re-walked over the run.
    pub spec_misses: u64,
    /// Conflict-free batches the decision commit flushed over the run
    /// (thread-invariant; zero under `--sequential-decisions`).
    pub decision_batches: u64,
    /// Widest batch any epoch flushed.
    pub max_batch_width: u64,
    /// Actions that fell back to in-place application on a server
    /// conflict with their open batch.
    pub batch_conflicts: u64,
}

/// Head-to-head result for one partition count at one worker-thread count,
/// one traffic-commit mode and one workload shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochLoopResult {
    /// Partitions per application (the paper's M).
    pub partitions: usize,
    /// Epochs driven (from a cold start, so the run covers the
    /// decision-heavy convergence phase, not just the converged steady
    /// state).
    pub epochs: u64,
    /// Worker threads of the epoch pipeline's parallel phases. The
    /// trajectory is bitwise identical at every value; only wall clock
    /// moves, so rows at different thread counts chart the scaling curve.
    pub threads: usize,
    /// True when the run routed the traffic commit through the sequential
    /// oracle loop instead of the default reconciled parallel commit. The
    /// trajectory is bitwise identical either way; the row pair charts
    /// the commit-mode cost.
    pub sequential_commit: bool,
    /// The workload shape layered on the cold start.
    pub workload: Workload,
    /// The rent-indexed pipeline (the default).
    pub indexed: PipelineTiming,
    /// The brute-force full-scan pipeline (the pre-optimization oracle).
    pub brute_force: PipelineTiming,
}

impl EpochLoopResult {
    /// Indexed-over-brute-force throughput ratio.
    pub fn speedup(&self) -> f64 {
        if self.brute_force.epochs_per_sec <= 0.0 {
            return 0.0;
        }
        self.indexed.epochs_per_sec / self.brute_force.epochs_per_sec
    }

    /// Fraction of speculations honored over the run (from the indexed
    /// pipeline; the brute-force pipeline replays the same trajectory),
    /// or `None` when no speculation was evaluated.
    pub fn spec_hit_rate(&self) -> Option<f64> {
        let total = self.indexed.spec_hits + self.indexed.spec_misses;
        (total > 0).then(|| self.indexed.spec_hits as f64 / total as f64)
    }
}

/// Times one pipeline over the scaled scenario with `partitions` per app,
/// running the epoch pipeline's parallel phases on `threads` workers.
///
/// Best-of-two: the run is measured twice (identical trajectories — the
/// scenario is seeded) and the faster wall clock kept, so a single
/// scheduler preemption landing inside one millisecond-scale measurement
/// window cannot masquerade as a regression in the gated trajectory.
pub fn time_pipeline(
    partitions: usize,
    epochs: u64,
    brute_force: bool,
    threads: usize,
    sequential_commit: bool,
    workload: Workload,
) -> PipelineTiming {
    let mut best: Option<PipelineTiming> = None;
    for _ in 0..2 {
        let mut scenario = paper::scaled_scenario(
            &format!("epoch-loop-m{partitions}"),
            partitions,
            3_000,
            epochs,
        );
        scenario.seed = 0xBE_7C;
        scenario.config.brute_force_placement = brute_force;
        scenario.config.threads = threads;
        scenario.config.sequential_traffic_commit = sequential_commit;
        match workload {
            Workload::Steady => {}
            Workload::Churn => {
                // Keep the decision phase busy past the cold-start ramp: a
                // failure burst forces repairs/migrations mid-run, then a
                // capacity upgrade re-opens cheap placements.
                scenario.schedule = Schedule::new()
                    .at(epochs / 3 + 1, CloudEvent::RemoveServers { count: 20 })
                    .at(2 * epochs / 3 + 1, CloudEvent::AddServers { count: 20 });
            }
            Workload::Outage => {
                // A whole country fails at once: the repair pass drains
                // the concentrated backlog over the following epochs.
                let (continent, country) = scenario
                    .topology
                    .iter_countries()
                    .next()
                    .expect("the paper topology has countries");
                scenario.schedule = Schedule::new().at(
                    epochs / 3 + 1,
                    CloudEvent::CountryOutage { continent, country },
                );
            }
        }
        let mut sim = Simulation::new(scenario);
        let mut decisions = 0u64;
        let mut spec_hits = 0u64;
        let mut spec_misses = 0u64;
        let mut decision_batches = 0u64;
        let mut max_batch_width = 0u64;
        let mut batch_conflicts = 0u64;
        let start = Instant::now();
        for _ in 0..epochs {
            let obs = sim.step();
            decisions += obs.report.total_vnodes() as u64;
            spec_hits += obs.report.actions.spec_hits;
            spec_misses += obs.report.actions.spec_misses;
            decision_batches += obs.report.actions.decision_batches;
            max_batch_width = max_batch_width.max(obs.report.actions.max_batch_width);
            batch_conflicts += obs.report.actions.batch_conflicts;
        }
        let seconds = start.elapsed().as_secs_f64();
        let timing = PipelineTiming {
            seconds,
            epochs_per_sec: epochs as f64 / seconds.max(1e-12),
            ns_per_decision: seconds * 1e9 / decisions.max(1) as f64,
            decisions,
            spec_hits,
            spec_misses,
            decision_batches,
            max_batch_width,
            batch_conflicts,
        };
        if best.is_none_or(|b| timing.seconds < b.seconds) {
            best = Some(timing);
        }
    }
    best.expect("two passes ran")
}

/// Runs both pipelines at one partition count and thread count, in the
/// default (parallel) traffic-commit mode on the steady cold start.
pub fn run_epoch_loop(partitions: usize, epochs: u64, threads: usize) -> EpochLoopResult {
    run_epoch_loop_mode(partitions, epochs, threads, false, Workload::Steady)
}

/// Runs both pipelines at one partition count, thread count,
/// traffic-commit mode and workload shape.
pub fn run_epoch_loop_mode(
    partitions: usize,
    epochs: u64,
    threads: usize,
    sequential_commit: bool,
    workload: Workload,
) -> EpochLoopResult {
    EpochLoopResult {
        partitions,
        epochs,
        threads,
        sequential_commit,
        workload,
        indexed: time_pipeline(
            partitions,
            epochs,
            false,
            threads,
            sequential_commit,
            workload,
        ),
        brute_force: time_pipeline(
            partitions,
            epochs,
            true,
            threads,
            sequential_commit,
            workload,
        ),
    }
}

/// The standard sweep: the paper's M = 200 plus two reduced scales at one
/// worker, the M = 200 scaling curve at threads ∈ {2, 4, 8}, a
/// **pool-overhead** row (M = 16 at 8 threads: per-chunk work so small
/// the row is dominated by the persistent pool's dispatch handoff — on a
/// single-core host it is pure overhead by construction), two
/// **commit-mode** rows timing the sequential traffic-commit oracle
/// against the default reconciled commit at M = 200, and a
/// **convergence/churn** row (M = 200 with a failure burst and a
/// capacity upgrade) where dozens of actions execute per epoch — the
/// workload whose commit pass the read-set speculation turns from
/// re-walks into validations (its hit rate lands in the JSON) — and an
/// **outage-burst** row (M = 200 with a whole-country failure) where the
/// availability-repair pass drains a concentrated backlog, so the gate
/// guards repair throughput under correlated failures. Two **memory
/// scale** rows push M to 2000 (steady and churn, few epochs — the cold
/// start at that scale is the expensive part) so the gate's scaling-slope
/// guard can compare M = 200 → M = 2000 throughput decay against the
/// baseline, and `BENCH_epoch.json` charts a `bytes_per_partition`
/// figure at the same scale. Epoch counts shrink as M grows so the
/// whole sweep stays a smoke-test-sized run while still covering the
/// decision-heavy convergence phase. Rows sharing a workload replay the
/// same bitwise trajectory; only wall clock differs.
pub fn standard_sweep() -> Vec<EpochLoopResult> {
    use Workload::{Churn, Outage, Steady};
    [
        (16usize, 40u64, 1usize, false, Steady),
        (50, 25, 1, false, Steady),
        (200, 12, 1, false, Steady),
        (200, 12, 2, false, Steady),
        (200, 12, 4, false, Steady),
        (200, 12, 8, false, Steady),
        // Pool-overhead row.
        (16, 40, 8, false, Steady),
        // Commit-mode rows (sequential oracle).
        (200, 12, 1, true, Steady),
        (200, 12, 8, true, Steady),
        // Convergence/churn row: a failure burst and a capacity upgrade
        // keep many actions executing per epoch, charting the
        // speculation hit rate of the decision commit pass.
        (200, 18, 1, false, Churn),
        // Outage-burst row: repair throughput under a correlated
        // whole-country failure.
        (200, 18, 1, false, Outage),
        // Memory-scale rows: M = 2000 partitions per app (the server
        // count stays the paper's 200), anchoring the scaling-slope
        // guard and the bytes-per-partition figure.
        (2_000, 4, 1, false, Steady),
        (2_000, 6, 1, false, Churn),
    ]
    .into_iter()
    .map(|(m, epochs, threads, seq, w)| run_epoch_loop_mode(m, epochs, threads, seq, w))
    .collect()
}

fn timing_json(t: &PipelineTiming) -> String {
    format!(
        "{{\"seconds\": {:.6}, \"epochs_per_sec\": {:.3}, \"ns_per_decision\": {:.1}, \"decisions\": {}}}",
        t.seconds, t.epochs_per_sec, t.ns_per_decision, t.decisions
    )
}

/// Serializes a sweep as the `BENCH_epoch.json` document. `host_cpus`
/// records the bench machine's available parallelism so scaling rows are
/// read in context (threads beyond the host's cores cannot speed up).
pub fn to_json(results: &[EpochLoopResult]) -> String {
    to_json_full(results, None)
}

/// [`to_json`] plus the optional top-level `bytes_per_partition` memory
/// figure (see [`measure_bytes_per_partition`]); `None` omits the field.
pub fn to_json_full(results: &[EpochLoopResult], bytes_per_partition: Option<u64>) -> String {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"epoch_loop\",\n");
    out.push_str("  \"scenario\": \"scaled paper workload, cold start, 3000 queries/epoch\",\n");
    out.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    if let Some(bpp) = bytes_per_partition {
        out.push_str(&format!("  \"bytes_per_partition\": {bpp},\n"));
    }
    out.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        // Rows that evaluated no speculation at all omit the spec fields
        // entirely (the parser maps absence back to `None`), so a future
        // baseline can never mistake "not measured" for a 0% hit rate.
        let spec = match r.spec_hit_rate() {
            Some(hr) => format!(
                "\"spec_hits\": {}, \"spec_misses\": {}, \"spec_hit_rate\": {:.4}, ",
                r.indexed.spec_hits, r.indexed.spec_misses, hr
            ),
            None => String::new(),
        };
        // Batch stats of the decision commit (thread-invariant, identical
        // across the indexed/brute pipelines — both replay the same
        // trajectory). Informational: never gated, kept out of
        // stdout/CSV.
        let batches = format!(
            "\"decision_batches\": {}, \"max_batch_width\": {}, \"batch_conflicts\": {}, ",
            r.indexed.decision_batches, r.indexed.max_batch_width, r.indexed.batch_conflicts
        );
        out.push_str(&format!(
            "    {{\"partitions\": {}, \"epochs\": {}, \"threads\": {}, \"commit\": \"{}\", \"workload\": \"{}\", {}{}\"indexed\": {}, \"brute_force\": {}, \"speedup\": {:.2}}}{}\n",
            r.partitions,
            r.epochs,
            r.threads,
            if r.sequential_commit { "sequential" } else { "parallel" },
            r.workload.label(),
            spec,
            batches,
            timing_json(&r.indexed),
            timing_json(&r.brute_force),
            r.speedup(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Resident-set size of this process, from `/proc/self/status` (`None`
/// off Linux).
fn vm_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// The sweep's memory figure: resident-set growth of building the
/// M = 2000 scaled scenario and running its first epoch (stores, rings
/// and pipeline scratch all populated), divided by the total partition
/// count. Informational — a coarse RSS delta, `None` off Linux — but
/// tracked in `BENCH_epoch.json` so per-partition memory growth is
/// visible across the trajectory just like throughput.
pub fn measure_bytes_per_partition() -> Option<u64> {
    let before = vm_rss_bytes()?;
    let mut scenario = paper::scaled_scenario("mem-figure-m2000", 2_000, 3_000, 2);
    scenario.seed = 0xBE_7C;
    let mut sim = Simulation::new(scenario);
    let obs = sim.step();
    let partitions: usize = obs.report.rings.iter().map(|r| r.partitions).sum();
    let after = vm_rss_bytes()?;
    Some(after.saturating_sub(before) / partitions.max(1) as u64)
}

/// Parses the top-level `bytes_per_partition` field of a
/// `BENCH_epoch.json` document. `None` when the document predates the
/// field (or was produced off Linux).
pub fn parse_bytes_per_partition(json: &str) -> Option<u64> {
    json.lines()
        .find(|l| l.contains("\"bytes_per_partition\""))
        .and_then(|l| num_after(l, "\"bytes_per_partition\""))
        .map(|n| n as u64)
}

/// One row parsed back out of a `BENCH_epoch.json` document: the key
/// `(partitions, threads, commit mode, workload)` plus both pipelines'
/// epochs/sec and the informational speculation hit rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrajectoryRow {
    /// Partitions per application.
    pub partitions: usize,
    /// Pipeline worker threads (1 when the document predates the field).
    pub threads: usize,
    /// Sequential-oracle traffic commit (false when the document predates
    /// the field — older documents measured the only commit that existed,
    /// which the default mode reproduces bit-for-bit).
    pub sequential_commit: bool,
    /// Workload shape ([`Workload::Steady`] when the document predates
    /// the field — older documents only measured the steady cold start).
    pub workload: Workload,
    /// Indexed-pipeline epochs per second.
    pub indexed_eps: f64,
    /// Brute-force-pipeline epochs per second.
    pub brute_eps: f64,
    /// Speculation hit rate of the run, when the document records one.
    /// Informational: the gate warns on a collapse, never fails.
    pub spec_hit_rate: Option<f64>,
}

impl TrajectoryRow {
    /// The row-matching key: rows are compared across documents only when
    /// partitions, thread budget, commit mode and workload all agree.
    pub fn key(&self) -> (usize, usize, bool, Workload) {
        (
            self.partitions,
            self.threads,
            self.sequential_commit,
            self.workload,
        )
    }

    /// Human-readable rendering of [`TrajectoryRow::key`].
    pub fn describe_key(&self) -> String {
        format!(
            "M = {}, threads = {}, {} commit, {}",
            self.partitions,
            self.threads,
            if self.sequential_commit {
                "sequential"
            } else {
                "parallel"
            },
            self.workload.label()
        )
    }
}

fn num_after(s: &str, key: &str) -> Option<f64> {
    let at = s.find(key)? + key.len();
    let rest = s[at..].trim_start_matches([' ', ':']);
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parses the `host_cpus` field of a `BENCH_epoch.json` document: the
/// available parallelism of the machine that produced it. `None` when the
/// document predates the field. The bench gate compares it against the
/// runner's own parallelism and warns loudly on a mismatch — the absolute
/// epochs/sec floor (and the scaling rows' shape) are only meaningful
/// when baseline and fresh run saw comparable hardware.
pub fn parse_host_cpus(json: &str) -> Option<usize> {
    json.lines()
        .find(|l| l.contains("\"host_cpus\""))
        .and_then(|l| num_after(l, "\"host_cpus\""))
        .map(|n| n as usize)
}

/// Parses the result rows of a `BENCH_epoch.json` document (the format
/// [`to_json`] writes: one result object per line). Documents written
/// before the threads/commit fields default those rows to `threads = 1`
/// and the parallel commit.
pub fn parse_trajectory(json: &str) -> Vec<TrajectoryRow> {
    let mut rows = Vec::new();
    for line in json.lines() {
        let Some(partitions) = num_after(line, "\"partitions\"") else {
            continue;
        };
        let threads = num_after(line, "\"threads\"").unwrap_or(1.0);
        let sequential_commit = line
            .find("\"commit\"")
            .map(|i| line[i..].starts_with("\"commit\": \"sequential\""))
            .unwrap_or(false);
        let workload = match line.find("\"workload\"").map(|i| &line[i..]) {
            Some(rest) if rest.starts_with("\"workload\": \"churn\"") => Workload::Churn,
            Some(rest) if rest.starts_with("\"workload\": \"outage\"") => Workload::Outage,
            _ => Workload::Steady,
        };
        let spec_hit_rate = num_after(line, "\"spec_hit_rate\"");
        let indexed = line.find("\"indexed\"").map(|i| &line[i..]);
        let brute = line.find("\"brute_force\"").map(|i| &line[i..]);
        let (Some(indexed), Some(brute)) = (indexed, brute) else {
            continue;
        };
        let (Some(indexed_eps), Some(brute_eps)) = (
            num_after(indexed, "\"epochs_per_sec\""),
            num_after(brute, "\"epochs_per_sec\""),
        ) else {
            continue;
        };
        rows.push(TrajectoryRow {
            partitions: partitions as usize,
            threads: threads as usize,
            sequential_commit,
            workload,
            indexed_eps,
            brute_eps,
            spec_hit_rate,
        });
    }
    rows
}

/// Outcome of diffing a fresh trajectory against the committed baseline:
/// hard failures and advisory warnings, kept apart so a changed row *set*
/// (new bench rows, retired rows) never fails the gate while a regressed
/// row always does.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct GateReport {
    /// Regressions beyond tolerance; non-empty fails the gate.
    pub violations: Vec<String>,
    /// Unmatched rows on either side, skipped rather than gated.
    pub warnings: Vec<String>,
    /// Baseline rows that found a fresh partner and were actually gated.
    /// Callers must treat `0` as a failure in its own right: a sweep or
    /// JSON-format regression that empties the fresh row set would
    /// otherwise downgrade every row to a warning and wave CI through
    /// with the gate checking nothing.
    pub matched: usize,
}

impl GateReport {
    /// True when no violation was recorded **and** at least one row was
    /// actually compared (warnings do not fail; gating nothing does).
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.matched > 0
    }
}

/// Diffs a fresh trajectory against the committed baseline. Rows are
/// matched **by key** — `(partitions, threads, commit mode)` — and rows
/// without a partner on the other side (a freshly added bench row, or a
/// retired one) are *skipped with a warning* instead of failing the gate,
/// so evolving the sweep's row set never requires lock-step baseline
/// surgery. Every matched row must clear two floors:
///
/// * **speedup ratio** (primary, hardware-neutral): the row's
///   indexed-over-brute-force epochs/sec ratio — both pipelines measured
///   in the same run on the same machine — must not fall more than
///   `ratio_tolerance` below the baseline's ratio. A faster or slower CI
///   runner moves both pipelines together, so this floor tracks the code,
///   not the hardware.
/// * **absolute epochs/sec** (backstop): the indexed throughput must not
///   fall more than `abs_tolerance` below the baseline's. This catches
///   regressions that slow both pipelines equally, at the cost of
///   hardware sensitivity — keep its tolerance generous.
///
/// Rows whose thread budget **oversubscribes the baseline host**
/// (`threads` above the committed document's `host_cpus`,
/// when `baseline_host_cpus` is known) are matched but advisory-only:
/// their floors demote to warnings, because wall clock at such budgets
/// charts scheduler contention, not the code. A **scaling-slope** guard
/// additionally compares the M = 200 → M = 2000 throughput decay
/// (single worker, parallel commit, steady workload) across documents:
/// a slope steepening past `ratio_tolerance` fails, catching
/// superlinear per-partition cost creep that per-row floors — each
/// gated against its own baseline row — would wave through.
pub fn gate_trajectory(
    baseline: &[TrajectoryRow],
    current: &[TrajectoryRow],
    ratio_tolerance: f64,
    abs_tolerance: f64,
    baseline_host_cpus: Option<usize>,
) -> GateReport {
    let mut report = GateReport::default();
    for b in baseline {
        let Some(c) = current.iter().find(|c| c.key() == b.key()) else {
            report.warnings.push(format!(
                "baseline row ({}) has no match in the fresh trajectory; skipped",
                b.describe_key()
            ));
            continue;
        };
        report.matched += 1;
        let mut row_violations = Vec::new();
        let b_ratio = if b.brute_eps > 0.0 {
            b.indexed_eps / b.brute_eps
        } else {
            0.0
        };
        let c_ratio = if c.brute_eps > 0.0 {
            c.indexed_eps / c.brute_eps
        } else {
            0.0
        };
        let ratio_floor = b_ratio * (1.0 - ratio_tolerance);
        if c_ratio < ratio_floor {
            row_violations.push(format!(
                "{}: speedup {:.2}x fell below {:.2}x \
                 (baseline {:.2}x, tolerance {:.0}%)",
                b.describe_key(),
                c_ratio,
                ratio_floor,
                b_ratio,
                ratio_tolerance * 100.0
            ));
        }
        let abs_floor = b.indexed_eps * (1.0 - abs_tolerance);
        if c.indexed_eps < abs_floor {
            row_violations.push(format!(
                "{}: indexed {:.2} epochs/sec fell below {:.2} \
                 (baseline {:.2}, tolerance {:.0}%)",
                b.describe_key(),
                c.indexed_eps,
                abs_floor,
                b.indexed_eps,
                abs_tolerance * 100.0
            ));
        }
        match baseline_host_cpus {
            Some(cpus) if b.threads > cpus => {
                for v in row_violations {
                    report.warnings.push(format!(
                        "{v} — advisory only: the row's {} threads oversubscribe the \
                         baseline host's {cpus} cpus, so its wall clock charts \
                         scheduler contention, not the code",
                        b.threads
                    ));
                }
            }
            _ => report.violations.append(&mut row_violations),
        }
        // The speculation hit rate is **informational**: a collapse
        // (halved, or gone entirely) warns but never fails — wall-clock
        // regressions are what the floors above gate.
        if let (Some(b_hr), Some(c_hr)) = (b.spec_hit_rate, c.spec_hit_rate) {
            if b_hr > 0.0 && c_hr < b_hr * 0.5 {
                report.warnings.push(format!(
                    "{}: speculation hit rate fell {:.0}% → {:.0}% \
                     (informational, not gated)",
                    b.describe_key(),
                    b_hr * 100.0,
                    c_hr * 100.0
                ));
            }
        }
    }
    for c in current {
        if !baseline.iter().any(|b| b.key() == c.key()) {
            report.warnings.push(format!(
                "fresh row ({}) is not in the baseline; not gated",
                c.describe_key()
            ));
        }
    }
    // Scaling-slope guard (see the doc comment above).
    let slope = |rows: &[TrajectoryRow]| -> Option<f64> {
        let eps_at = |m: usize| {
            rows.iter()
                .find(|r| r.key() == (m, 1, false, Workload::Steady))
                .map(|r| r.indexed_eps)
        };
        let (small, large) = (eps_at(200)?, eps_at(2_000)?);
        (large > 0.0).then(|| small / large)
    };
    match (slope(baseline), slope(current)) {
        (Some(b), Some(c)) => {
            let ceiling = b * (1.0 + ratio_tolerance);
            if c > ceiling {
                report.violations.push(format!(
                    "scaling slope: the M 200 → 2000 throughput ratio {c:.2} \
                     exceeded {ceiling:.2} (baseline {b:.2}, tolerance {:.0}%) — \
                     per-partition cost grew superlinearly",
                    ratio_tolerance * 100.0
                ));
            }
        }
        (None, Some(_)) => report.warnings.push(
            "scaling slope: the baseline lacks the M = 2000 steady row, so the \
             slope is not gated (recommit the baseline to arm it)"
                .into(),
        ),
        _ => {}
    }
    report
}

/// Writes the sweep to `path` as JSON.
pub fn write_json(path: &Path, results: &[EpochLoopResult]) -> std::io::Result<()> {
    write_json_full(path, results, None)
}

/// [`write_json`] plus the optional `bytes_per_partition` memory figure.
pub fn write_json_full(
    path: &Path,
    results: &[EpochLoopResult],
    bytes_per_partition: Option<u64>,
) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(to_json_full(results, bytes_per_partition).as_bytes())
}

/// Prints the human-readable comparison table for a sweep.
pub fn print_table(results: &[EpochLoopResult]) {
    println!(
        "{:>6} {:>7} {:>8} {:>11} {:>8} {:>14} {:>14} {:>12} {:>12} {:>8} {:>8}",
        "M",
        "epochs",
        "threads",
        "commit",
        "workload",
        "indexed ep/s",
        "brute ep/s",
        "idx ns/dec",
        "brute ns/dec",
        "speedup",
        "spec hit"
    );
    for r in results {
        println!(
            "{:>6} {:>7} {:>8} {:>11} {:>8} {:>14.2} {:>14.2} {:>12.0} {:>12.0} {:>7.2}x {:>8}",
            r.partitions,
            r.epochs,
            r.threads,
            if r.sequential_commit {
                "sequential"
            } else {
                "parallel"
            },
            r.workload.label(),
            r.indexed.epochs_per_sec,
            r.brute_force.epochs_per_sec,
            r.indexed.ns_per_decision,
            r.brute_force.ns_per_decision,
            r.speedup(),
            match r.spec_hit_rate() {
                Some(hr) => format!("{:.0}%", hr * 100.0),
                None => "n/a".to_string(),
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timings_are_positive_and_json_is_well_formed() {
        let r = run_epoch_loop(4, 3, 1);
        assert!(r.indexed.seconds > 0.0);
        assert!(r.brute_force.seconds > 0.0);
        assert!(r.indexed.decisions > 0);
        assert_eq!(
            r.indexed.decisions, r.brute_force.decisions,
            "same trajectory"
        );
        let json = to_json(&[r]);
        assert!(json.contains("\"bench\": \"epoch_loop\""));
        assert!(json.contains("\"partitions\": 4"));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"commit\": \"parallel\""));
        assert!(json.contains("\"host_cpus\""));
        assert!(json.contains("\"speedup\""));
        // Balanced braces/brackets (cheap well-formedness check without a
        // JSON parser in the offline dependency set).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn write_json_roundtrips_to_disk() {
        let path = figures_tmp().join("bench_epoch_test.json");
        let r = run_epoch_loop(4, 2, 2);
        write_json(&path, &[r]).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(body.contains("epoch_loop"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn multithreaded_rows_replay_the_same_trajectory() {
        // The scaling rows must chart wall clock only: decision counts (and
        // therefore the simulated trajectory) are identical across thread
        // counts.
        let t1 = time_pipeline(4, 3, false, 1, false, Workload::Steady);
        let t8 = time_pipeline(4, 3, false, 8, false, Workload::Steady);
        assert_eq!(t1.decisions, t8.decisions);
        assert_eq!(t1.spec_hits, t8.spec_hits);
        assert_eq!(t1.spec_misses, t8.spec_misses);
        // Commit modes replay the same trajectory too.
        let seq = time_pipeline(4, 3, false, 1, true, Workload::Steady);
        assert_eq!(t1.decisions, seq.decisions);
        // And so do repair modes under the outage workload.
        let o1 = time_pipeline(4, 6, false, 1, false, Workload::Outage);
        let o8 = time_pipeline(4, 6, false, 8, false, Workload::Outage);
        assert_eq!(o1.decisions, o8.decisions);
        assert_eq!(o1.spec_hits, o8.spec_hits);
        assert_eq!(o1.spec_misses, o8.spec_misses);
    }

    #[test]
    fn trajectory_roundtrips_through_parser() {
        let rows = [
            EpochLoopResult {
                partitions: 200,
                epochs: 12,
                threads: 1,
                sequential_commit: false,
                workload: Workload::Steady,
                indexed: PipelineTiming {
                    seconds: 0.5,
                    epochs_per_sec: 24.0,
                    ns_per_decision: 700.0,
                    decisions: 100,
                    spec_hits: 30,
                    spec_misses: 10,
                    decision_batches: 12,
                    max_batch_width: 5,
                    batch_conflicts: 2,
                },
                brute_force: PipelineTiming {
                    seconds: 1.0,
                    epochs_per_sec: 12.0,
                    ns_per_decision: 5000.0,
                    decisions: 100,
                    spec_hits: 30,
                    spec_misses: 10,
                    decision_batches: 12,
                    max_batch_width: 5,
                    batch_conflicts: 2,
                },
            },
            EpochLoopResult {
                partitions: 200,
                epochs: 12,
                threads: 4,
                sequential_commit: true,
                workload: Workload::Outage,
                indexed: PipelineTiming {
                    seconds: 0.25,
                    epochs_per_sec: 48.0,
                    ns_per_decision: 350.0,
                    decisions: 100,
                    spec_hits: 0,
                    spec_misses: 0,
                    decision_batches: 0,
                    max_batch_width: 0,
                    batch_conflicts: 0,
                },
                brute_force: PipelineTiming {
                    seconds: 0.8,
                    epochs_per_sec: 15.0,
                    ns_per_decision: 4000.0,
                    decisions: 100,
                    spec_hits: 0,
                    spec_misses: 0,
                    decision_batches: 0,
                    max_batch_width: 0,
                    batch_conflicts: 0,
                },
            },
        ];
        let parsed = parse_trajectory(&to_json(&rows));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].partitions, 200);
        assert_eq!(parsed[0].threads, 1);
        assert!(!parsed[0].sequential_commit);
        assert_eq!(parsed[0].indexed_eps, 24.0);
        assert_eq!(parsed[0].workload, Workload::Steady);
        assert_eq!(parsed[0].spec_hit_rate, Some(0.75));
        assert_eq!(parsed[1].threads, 4);
        assert!(parsed[1].sequential_commit);
        assert_eq!(parsed[1].workload, Workload::Outage);
        assert_eq!(
            parsed[1].spec_hit_rate, None,
            "a row with no evaluated speculation omits the spec fields"
        );
        assert_eq!(parsed[1].brute_eps, 15.0);
        assert_ne!(parsed[0].key(), parsed[1].key());
    }

    #[test]
    fn host_cpus_roundtrips_and_legacy_documents_yield_none() {
        let r = run_epoch_loop(4, 2, 1);
        let json = to_json(&[r]);
        let own = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        assert_eq!(parse_host_cpus(&json), Some(own));
        assert_eq!(parse_host_cpus("{\n  \"results\": []\n}\n"), None);
    }

    #[test]
    fn parser_defaults_legacy_rows_to_one_thread() {
        let legacy = r#"{
  "results": [
    {"partitions": 16, "epochs": 40, "indexed": {"seconds": 0.003, "epochs_per_sec": 10995.817, "ns_per_decision": 631.6, "decisions": 5760}, "brute_force": {"seconds": 0.026, "epochs_per_sec": 1484.060, "ns_per_decision": 4679.4, "decisions": 5760}, "speedup": 7.41}
  ]
}"#;
        let rows = parse_trajectory(legacy);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].threads, 1);
        assert_eq!(rows[0].partitions, 16);
        assert!(
            !rows[0].sequential_commit,
            "legacy rows measured the only commit that existed; the default \
             mode reproduces it bit-for-bit, so they match the parallel key"
        );
        assert_eq!(
            rows[0].workload,
            Workload::Steady,
            "legacy rows measured the steady cold start"
        );
        assert_eq!(rows[0].spec_hit_rate, None);
        assert!((rows[0].indexed_eps - 10995.817).abs() < 1e-9);
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        // Baseline: 100 eps indexed over 20 eps brute = 5x speedup.
        let base = [TrajectoryRow {
            partitions: 200,
            threads: 1,
            sequential_commit: false,
            workload: Workload::Steady,
            indexed_eps: 100.0,
            brute_eps: 20.0,
            spec_hit_rate: None,
        }];
        // A uniformly faster machine (both pipelines 3x): ratio unchanged,
        // absolute improved — passes even with a tight absolute tolerance.
        let fast_host = [TrajectoryRow {
            indexed_eps: 300.0,
            brute_eps: 60.0,
            ..base[0]
        }];
        assert!(gate_trajectory(&base, &fast_host, 0.3, 0.5, None).passed());
        // A uniformly slower machine (both pipelines halved): ratio holds,
        // the generous absolute backstop still clears.
        let slow_host = [TrajectoryRow {
            indexed_eps: 55.0,
            brute_eps: 11.0,
            ..base[0]
        }];
        assert!(gate_trajectory(&base, &slow_host, 0.3, 0.5, None).passed());
        // A real code regression on a 2x-faster machine: the index path
        // lost its edge (speedup 5x → 2.5x) while absolute numbers grew.
        // The absolute floor would wave it through; the ratio floor fails.
        let regressed = [TrajectoryRow {
            indexed_eps: 110.0,
            brute_eps: 44.0,
            ..base[0]
        }];
        let report = gate_trajectory(&base, &regressed, 0.3, 0.5, None);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("speedup"));
        // A same-machine across-the-board slowdown: ratio holds, the
        // absolute backstop fails.
        let uniform_slow = [TrajectoryRow {
            indexed_eps: 40.0,
            brute_eps: 8.0,
            ..base[0]
        }];
        let report = gate_trajectory(&base, &uniform_slow, 0.3, 0.5, None);
        assert_eq!(report.violations.len(), 1);
        assert!(report.violations[0].contains("epochs/sec"));
    }

    #[test]
    fn hit_rate_collapse_warns_but_never_fails() {
        let base = [TrajectoryRow {
            partitions: 200,
            threads: 1,
            sequential_commit: false,
            workload: Workload::Churn,
            indexed_eps: 100.0,
            brute_eps: 20.0,
            spec_hit_rate: Some(0.8),
        }];
        // A collapsed hit rate (here: to an eighth) warns, but the gate
        // still passes — the rate is informational.
        let collapsed = [TrajectoryRow {
            spec_hit_rate: Some(0.1),
            ..base[0]
        }];
        let report = gate_trajectory(&base, &collapsed, 0.3, 0.5, None);
        assert!(report.passed());
        assert_eq!(report.warnings.len(), 1, "{:?}", report.warnings);
        assert!(report.warnings[0].contains("hit rate"));
        assert!(report.warnings[0].contains("informational"));
        // A healthy rate and a document without one produce no warning.
        let healthy = [TrajectoryRow {
            spec_hit_rate: Some(0.7),
            ..base[0]
        }];
        assert!(gate_trajectory(&base, &healthy, 0.3, 0.5, None)
            .warnings
            .is_empty());
        let absent = [TrajectoryRow {
            spec_hit_rate: None,
            ..base[0]
        }];
        assert!(gate_trajectory(&base, &absent, 0.3, 0.5, None)
            .warnings
            .is_empty());
    }

    #[test]
    fn gate_skips_unmatched_rows_with_warnings() {
        let base_row = TrajectoryRow {
            partitions: 200,
            threads: 1,
            sequential_commit: false,
            workload: Workload::Steady,
            indexed_eps: 100.0,
            brute_eps: 20.0,
            spec_hit_rate: None,
        };
        // With *every* baseline row unmatched nothing was gated at all:
        // that is a failure in its own right (an emptied or renamed fresh
        // trajectory must not wave CI through), reported alongside the
        // skip warning.
        let report = gate_trajectory(&[base_row], &[], 0.3, 0.5, None);
        assert!(!report.passed());
        assert_eq!(report.matched, 0);
        assert_eq!(report.warnings.len(), 1);
        assert!(report.warnings[0].contains("skipped"));
        // Rows differing only in thread budget or commit mode do not
        // match: each side's stragglers warn, nothing fails, and the
        // matched row is still gated.
        let fresh = [
            base_row,
            TrajectoryRow {
                threads: 8,
                ..base_row
            },
            TrajectoryRow {
                sequential_commit: true,
                ..base_row
            },
            TrajectoryRow {
                workload: Workload::Outage,
                ..base_row
            },
        ];
        let baseline = [
            base_row,
            TrajectoryRow {
                partitions: 400,
                ..base_row
            },
        ];
        let report = gate_trajectory(&baseline, &fresh, 0.3, 0.5, None);
        assert!(report.passed());
        assert_eq!(report.matched, 1);
        assert_eq!(report.warnings.len(), 4, "{:?}", report.warnings);
        // A matched row that regressed still fails even when unmatched
        // rows are present.
        let regressed = [
            TrajectoryRow {
                indexed_eps: 10.0,
                brute_eps: 10.0,
                ..base_row
            },
            TrajectoryRow {
                threads: 8,
                ..base_row
            },
        ];
        let report = gate_trajectory(&baseline, &regressed, 0.3, 0.5, None);
        assert!(!report.passed());
    }

    #[test]
    fn oversubscribed_thread_rows_demote_to_warnings() {
        // A regression on a row whose thread budget exceeds the baseline
        // host's cores is advisory: on such a host the row's wall clock
        // charts scheduler contention, not the code.
        let base = [
            TrajectoryRow {
                partitions: 200,
                threads: 1,
                sequential_commit: false,
                workload: Workload::Steady,
                indexed_eps: 100.0,
                brute_eps: 20.0,
                spec_hit_rate: None,
            },
            TrajectoryRow {
                partitions: 200,
                threads: 8,
                sequential_commit: false,
                workload: Workload::Steady,
                indexed_eps: 100.0,
                brute_eps: 20.0,
                spec_hit_rate: None,
            },
        ];
        let fresh = [
            base[0],
            TrajectoryRow {
                indexed_eps: 10.0,
                brute_eps: 10.0,
                ..base[1]
            },
        ];
        // Baseline host had 1 cpu: the threads = 8 row's regression warns
        // instead of failing, and both rows still count as matched.
        let report = gate_trajectory(&base, &fresh, 0.3, 0.5, Some(1));
        assert!(report.passed(), "{:?}", report.violations);
        assert_eq!(report.matched, 2);
        assert!(report.warnings.iter().any(|w| w.contains("oversubscribe")));
        // The same diff on an 8-cpu baseline host is a hard failure.
        let report = gate_trajectory(&base, &fresh, 0.3, 0.5, Some(8));
        assert!(!report.passed());
        // And so is a regression on a row *within* the host's budget,
        // even when the host count is known.
        let regressed_t1 = [
            TrajectoryRow {
                indexed_eps: 10.0,
                brute_eps: 10.0,
                ..base[0]
            },
            base[1],
        ];
        assert!(!gate_trajectory(&base, &regressed_t1, 0.3, 0.5, Some(1)).passed());
    }

    #[test]
    fn scaling_slope_guard_gates_m2000_decay() {
        let row = |partitions: usize, indexed_eps: f64| TrajectoryRow {
            partitions,
            threads: 1,
            sequential_commit: false,
            workload: Workload::Steady,
            indexed_eps,
            brute_eps: indexed_eps / 5.0,
            spec_hit_rate: None,
        };
        // Baseline slope: 100 / 10 = 10x decay from M = 200 to M = 2000.
        let base = [row(200, 100.0), row(2_000, 10.0)];
        // Uniformly slower host: slope unchanged, passes.
        let slower = [row(200, 50.0), row(2_000, 5.0)];
        assert!(gate_trajectory(&base, &slower, 0.3, 0.5, None).passed());
        // Superlinear creep: M = 2000 fell to a 20x decay — the slope
        // guard fails even though the M = 200 row held and the M = 2000
        // row's own floors (vs its baseline row, tolerance 60%) do not
        // quite trip.
        let creep = [row(200, 100.0), row(2_000, 5.0)];
        let report = gate_trajectory(&base, &creep, 0.3, 0.6, None);
        assert!(!report.passed());
        assert!(report
            .violations
            .iter()
            .any(|v| v.contains("scaling slope")));
        // A baseline without the M = 2000 row skips the slope with a
        // warning instead of failing.
        let old_base = [row(200, 100.0)];
        let report = gate_trajectory(&old_base, &creep, 0.3, 0.6, None);
        assert!(report.passed());
        assert!(report.warnings.iter().any(|w| w.contains("scaling slope")));
    }

    #[test]
    fn batch_stats_and_memory_figure_land_in_json() {
        let r = run_epoch_loop(4, 3, 1);
        let json = to_json_full(&[r], Some(123_456));
        assert!(json.contains("\"decision_batches\""));
        assert!(json.contains("\"max_batch_width\""));
        assert!(json.contains("\"batch_conflicts\""));
        assert!(json.contains("\"bytes_per_partition\": 123456"));
        assert_eq!(parse_bytes_per_partition(&json), Some(123_456));
        assert!(
            r.indexed.decision_batches > 0,
            "the default commit batches its actions"
        );
        assert_eq!(
            r.indexed.decision_batches, r.brute_force.decision_batches,
            "both pipelines replay the same batched trajectory"
        );
        // Absent figure: field omitted, parser yields None.
        let bare = to_json(&[r]);
        assert!(!bare.contains("bytes_per_partition"));
        assert_eq!(parse_bytes_per_partition(&bare), None);
        // The JSON stays balanced with the new fields.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    fn figures_tmp() -> std::path::PathBuf {
        let d = crate::figures_dir();
        std::fs::create_dir_all(&d).unwrap();
        d
    }
}
