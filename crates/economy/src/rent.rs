//! Eq. (1): the virtual rent price of a server.

use skute_cluster::Server;

/// The rent model of eq. (1):
/// `c = up · (1 + α·storage_usage + β·query_load)`.
///
/// `up` is the server's marginal usage price (see
/// [`skute_cluster::MarginalPrice`]); `storage_usage` and `query_load` are
/// the *current* epoch's fractions, which the paper takes as good
/// approximations for the next epoch "as they are not expected to change
/// much at very small time scales" (§II-A).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RentModel {
    /// α — storage-usage weight.
    pub alpha: f64,
    /// β — query-load weight.
    pub beta: f64,
}

impl RentModel {
    /// A rent model with the given normalizing factors.
    pub const fn new(alpha: f64, beta: f64) -> Self {
        Self { alpha, beta }
    }

    /// Eq. (1) from raw inputs.
    #[inline]
    pub fn price(&self, up: f64, storage_usage: f64, query_load: f64) -> f64 {
        up * (1.0 + self.alpha * storage_usage + self.beta * query_load)
    }

    /// Eq. (1) evaluated for a server's current meters.
    pub fn price_server(&self, server: &Server) -> f64 {
        self.price(
            server.marginal_price.price(server.monthly_cost),
            server.storage_frac(),
            server.query_load_frac(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use skute_cluster::{Capacities, Cluster, ServerSpec};
    use skute_geo::Location;

    #[test]
    fn empty_idle_server_costs_up() {
        let m = RentModel::new(2.0, 3.0);
        assert!((m.price(0.5, 0.0, 0.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn full_server_costs_up_times_factors() {
        let m = RentModel::new(2.0, 3.0);
        // up·(1 + 2·1 + 3·1) = 6·up
        assert!((m.price(0.5, 1.0, 1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn price_server_uses_meters() {
        let mut cluster = Cluster::new();
        let id = cluster.commission(
            ServerSpec {
                location: Location::new(0, 0, 0, 0, 0, 0),
                capacities: Capacities::paper(1000, 100.0),
                monthly_cost: 720.0, // => per-epoch share 1.0 with paper month
                confidence: 1.0,
            },
            0,
        );
        let m = RentModel::new(1.0, 1.0);
        let idle_price = m.price_server(cluster.get(id).unwrap());
        {
            let s = cluster.get_mut(id).unwrap();
            let caps = s.capacities;
            assert!(s.usage.reserve_storage(&caps, 500));
            s.usage.serve_queries(&caps, 50.0);
        }
        let busy_price = m.price_server(cluster.get(id).unwrap());
        assert!(busy_price > idle_price);
        // storage 0.5 + load 0.5 → factor 2 vs factor 1.
        assert!((busy_price / idle_price - 2.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_price_monotone_in_load_and_storage(
            up in 0.01f64..10.0,
            s1 in 0.0f64..1.0, s2 in 0.0f64..1.0,
            q1 in 0.0f64..1.0, q2 in 0.0f64..1.0,
        ) {
            let m = RentModel::new(1.0, 1.0);
            let lo = m.price(up, s1.min(s2), q1.min(q2));
            let hi = m.price(up, s1.max(s2), q1.max(q2));
            prop_assert!(hi >= lo);
        }

        #[test]
        fn prop_price_scales_linearly_in_up(
            up in 0.01f64..10.0, s in 0.0f64..1.0, q in 0.0f64..1.0
        ) {
            let m = RentModel::new(0.7, 1.3);
            let one = m.price(1.0, s, q);
            let scaled = m.price(up, s, q);
            prop_assert!((scaled - up * one).abs() < 1e-9);
        }
    }
}
