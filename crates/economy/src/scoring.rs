//! Eq. (3) and (4): candidate-server scoring and client proximity.

use skute_geo::{diversity, Location, Topology};

/// Query volume observed from one client region for one partition — the
/// `q_l` of eq. (4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionQueries {
    /// The client region (country granularity).
    pub location: Location,
    /// Queries received from this region during the epoch.
    pub queries: f64,
}

/// Raw eq. (4): `g_j = Σ_l q_l / (1 + Σ_l q_l · diversity(l, s_j))`.
fn raw_g(regions: &[RegionQueries], server: &Location) -> f64 {
    let total: f64 = regions.iter().map(|r| r.queries).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = regions
        .iter()
        .map(|r| r.queries * f64::from(diversity(&r.location, server)))
        .sum();
    total / (1.0 + weighted)
}

/// The client-proximity weight `g_j` of server `server` for a partition
/// whose epoch queries came from `regions`.
///
/// Computed as eq. (4) normalized by eq. (4) evaluated with the same total
/// query volume spread uniformly over all countries of `topology`: under a
/// uniform client geography the weight is exactly 1 for every server, as the
/// paper stipulates (§III-A), and regionally skewed traffic scales servers
/// near the traffic above 1 and far servers below 1.
///
/// With no queries at all the weight is neutral (1).
pub fn proximity(regions: &[RegionQueries], server: &Location, topology: &Topology) -> f64 {
    let total: f64 = regions.iter().map(|r| r.queries).sum();
    if total <= 0.0 {
        return 1.0;
    }
    let uniform: Vec<RegionQueries> = {
        let countries: Vec<(u16, u16)> = topology.iter_countries().collect();
        let per = total / countries.len() as f64;
        countries
            .into_iter()
            .map(|(ct, co)| RegionQueries {
                location: Location::client_in_country(ct, co),
                queries: per,
            })
            .collect()
    };
    let baseline = raw_g(&uniform, server);
    if baseline <= 0.0 {
        return 1.0;
    }
    raw_g(regions, server) / baseline
}

/// Eq. (3): the net benefit of adding candidate server `candidate` to a
/// replica set currently hosted at `existing`:
///
/// `score_j = Σ_k g_j · conf_j · diversity(s_k, s_j) · v − c_j`
///
/// where `v` (`diversity_unit_value`) converts diversity units to money and
/// `c_j` is the candidate's posted virtual rent. The caller picks the
/// arg-max over candidates: availability rises as much as possible at
/// minimum cost, and the proximity factor simultaneously pulls data towards
/// its clients.
pub fn candidate_score(
    existing: &[Location],
    candidate: &Location,
    candidate_confidence: f64,
    candidate_rent: f64,
    g_candidate: f64,
    diversity_unit_value: f64,
) -> f64 {
    let diversity_sum: f64 = existing
        .iter()
        .map(|s| f64::from(diversity(s, candidate)))
        .sum();
    g_candidate * candidate_confidence * diversity_sum * diversity_unit_value - candidate_rent
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn topo() -> Topology {
        Topology::paper()
    }

    #[test]
    fn uniform_clients_give_unit_proximity_everywhere() {
        let t = topo();
        let total = 3000.0;
        let per = total / 10.0;
        let regions: Vec<RegionQueries> = t
            .iter_countries()
            .map(|(ct, co)| RegionQueries {
                location: Location::client_in_country(ct, co),
                queries: per,
            })
            .collect();
        for i in [0u64, 57, 123, 199] {
            let server = t.server_at(i);
            let g = proximity(&regions, &server, &t);
            assert!((g - 1.0).abs() < 1e-12, "server {i}: g = {g}");
        }
    }

    #[test]
    fn no_queries_is_neutral() {
        let t = topo();
        let server = t.server_at(0);
        assert_eq!(proximity(&[], &server, &t), 1.0);
    }

    #[test]
    fn local_traffic_boosts_local_servers() {
        let t = topo();
        let regions = [RegionQueries {
            location: Location::client_in_country(0, 0),
            queries: 1000.0,
        }];
        let local = t.server_at(0); // continent 0, country 0
        let remote = t.server_at(199); // continent 4, country 1
        let g_local = proximity(&regions, &local, &t);
        let g_remote = proximity(&regions, &remote, &t);
        assert!(g_local > 1.0, "g_local = {g_local}");
        assert!(g_remote < 1.0, "g_remote = {g_remote}");
        assert!(g_local > g_remote);
    }

    #[test]
    fn candidate_score_prefers_diverse_then_cheap() {
        let t = topo();
        let existing = vec![t.server_at(0)];
        let same_rack = t.server_at(1);
        let other_continent = t.server_at(199);
        let v = 0.02;
        let s_near = candidate_score(&existing, &same_rack, 1.0, 0.2, 1.0, v);
        let s_far = candidate_score(&existing, &other_continent, 1.0, 0.2, 1.0, v);
        assert!(s_far > s_near, "diversity dominates at equal rent");
        // Between two equally diverse candidates the cheaper one wins.
        let other_continent_b = t.server_at(198);
        let s_far_cheap = candidate_score(&existing, &other_continent_b, 1.0, 0.1, 1.0, v);
        assert!(s_far_cheap > s_far);
    }

    #[test]
    fn zero_confidence_candidate_scores_negative_rent() {
        let t = topo();
        let existing = vec![t.server_at(0)];
        let cand = t.server_at(199);
        let s = candidate_score(&existing, &cand, 0.0, 0.3, 1.0, 0.02);
        assert!((s - (-0.3)).abs() < 1e-12);
    }

    #[test]
    fn empty_replica_set_scores_pure_rent() {
        let t = topo();
        let cand = t.server_at(5);
        let s = candidate_score(&[], &cand, 1.0, 0.25, 1.0, 0.02);
        assert!((s - (-0.25)).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn prop_proximity_positive_and_finite(
            qs in proptest::collection::vec(0.0f64..1e5, 1..10),
            server_idx in 0u64..200,
        ) {
            let t = topo();
            let countries: Vec<(u16, u16)> = t.iter_countries().collect();
            let regions: Vec<RegionQueries> = qs
                .iter()
                .enumerate()
                .map(|(i, &q)| {
                    let (ct, co) = countries[i % countries.len()];
                    RegionQueries { location: Location::client_in_country(ct, co), queries: q }
                })
                .collect();
            let g = proximity(&regions, &t.server_at(server_idx), &t);
            prop_assert!(g.is_finite());
            prop_assert!(g > 0.0);
        }

        #[test]
        fn prop_score_decreases_with_rent(
            rent1 in 0.0f64..2.0, rent2 in 0.0f64..2.0, server_idx in 0u64..200
        ) {
            let t = topo();
            let existing = vec![t.server_at(0), t.server_at(100)];
            let cand = t.server_at(server_idx);
            let lo = candidate_score(&existing, &cand, 1.0, rent1.min(rent2), 1.0, 0.02);
            let hi = candidate_score(&existing, &cand, 1.0, rent1.max(rent2), 1.0, 0.02);
            prop_assert!(lo >= hi);
        }
    }
}
