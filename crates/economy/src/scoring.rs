//! Eq. (3) and (4): candidate-server scoring and client proximity.

use skute_geo::{diversity, Location, Topology};

/// Query volume observed from one client region for one partition — the
/// `q_l` of eq. (4).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegionQueries {
    /// The client region (country granularity).
    pub location: Location,
    /// Queries received from this region during the epoch.
    pub queries: f64,
}

/// Raw eq. (4) over an arbitrary `(queries, location)` stream:
/// `g_j = Σ_l q_l / (1 + Σ_l q_l · diversity(l, s_j))`.
///
/// Takes a cloneable iterator so callers can evaluate the uniform client
/// population without materializing a region list; summation order is the
/// iterator's order, so the same stream always yields the same bits.
fn raw_g_over<'a, I>(pairs: I, server: &Location) -> f64
where
    I: Iterator<Item = (f64, Location)> + Clone + 'a,
{
    let total: f64 = pairs.clone().map(|(q, _)| q).sum();
    if total <= 0.0 {
        return 0.0;
    }
    let weighted: f64 = pairs
        .map(|(q, l)| q * f64::from(diversity(&l, server)))
        .sum();
    total / (1.0 + weighted)
}

/// Raw eq. (4): `g_j = Σ_l q_l / (1 + Σ_l q_l · diversity(l, s_j))`.
fn raw_g(regions: &[RegionQueries], server: &Location) -> f64 {
    raw_g_over(regions.iter().map(|r| (r.queries, r.location)), server)
}

/// Client regions a [`RegionMasses`] aggregate holds inline. Region
/// mixes with more distinct regions — none of the paper scenarios come
/// close, but large-country workloads do — spill the remainder to one
/// heap word run per aggregation instead of abandoning the analytic
/// kernel for the general per-location diversity scan; the common path
/// stays allocation-free.
const INLINE_CLIENT_REGIONS: usize = 24;

/// The identity a client region aggregates under.
///
/// Country-zone clients ([`Location::client_in_country`]) collapse to
/// their `(continent, country)` prefix: their diversity to any
/// non-client-zone server is 15, 31 or 63 by country/continent relation
/// alone. Clients at arbitrary locations keep their full location — their
/// diversity to a same-country server depends on the finer levels — but
/// still flow through the same kernel instead of the general scan.
#[derive(Debug, Clone, Copy, PartialEq)]
enum MassKey {
    /// A country-zone client: only the `(continent, country)` prefix
    /// matters against non-client-zone servers.
    Country((u16, u16)),
    /// A client at an arbitrary (non-country-zone) location.
    Deep(Location),
}

impl MassKey {
    /// The aggregation key of one client location.
    fn of(location: &Location) -> Self {
        if location.is_client_zone() {
            MassKey::Country(location.country_key())
        } else {
            MassKey::Deep(*location)
        }
    }
}

/// Query mass aggregated per client region, in first-appearance order —
/// the sufficient statistic of eq. (4) against any non-client-zone server.
#[derive(Debug, Clone)]
struct RegionMasses {
    total: f64,
    len: usize,
    /// The first [`INLINE_CLIENT_REGIONS`] distinct regions.
    inline: [(MassKey, f64); INLINE_CLIENT_REGIONS],
    /// Regions beyond the inline capacity, in first-appearance order.
    spill: Vec<(MassKey, f64)>,
}

impl Default for RegionMasses {
    fn default() -> Self {
        Self {
            total: 0.0,
            len: 0,
            inline: [(MassKey::Country((0, 0)), 0.0); INLINE_CLIENT_REGIONS],
            spill: Vec::new(),
        }
    }
}

impl RegionMasses {
    /// Aggregates `regions`. Infallible: country-zone clients collapse to
    /// per-country masses, arbitrary client locations keep their full
    /// location as the key. Any number of distinct regions aggregates —
    /// the first 24 inline, the rest on the heap.
    fn aggregate(regions: &[RegionQueries]) -> Self {
        let mut masses = Self::default();
        for r in regions {
            masses.total += r.queries;
            let key = MassKey::of(&r.location);
            let inline_len = masses.len.min(INLINE_CLIENT_REGIONS);
            match masses.inline[..inline_len]
                .iter_mut()
                .chain(masses.spill.iter_mut())
                .find(|(k, _)| *k == key)
            {
                Some((_, q)) => *q += r.queries,
                None => {
                    if masses.len < INLINE_CLIENT_REGIONS {
                        masses.inline[masses.len] = (key, r.queries);
                    } else {
                        masses.spill.push((key, r.queries));
                    }
                    masses.len += 1;
                }
            }
        }
        masses
    }

    /// All aggregated `(region, mass)` pairs, in first-appearance order.
    fn regions(&self) -> impl Iterator<Item = &(MassKey, f64)> {
        self.inline[..self.len.min(INLINE_CLIENT_REGIONS)]
            .iter()
            .chain(self.spill.iter())
    }

    /// True when some [`MassKey::Deep`] client shares `country` — the one
    /// case where same-country servers can have different weights and
    /// per-country memoization would be unsound.
    fn has_deep_in(&self, country: (u16, u16)) -> bool {
        self.regions()
            .any(|(k, _)| matches!(k, MassKey::Deep(l) if l.country_key() == country))
    }
}

/// Country-zone diversity of a client country vs a server country: 15 in
/// the same country (they always diverge at the synthetic datacenter), 31
/// in the same continent, 63 across continents.
#[inline]
fn zone_diversity(client: (u16, u16), server: (u16, u16)) -> f64 {
    if client.0 != server.0 {
        63.0
    } else if client.1 != server.1 {
        31.0
    } else {
        15.0
    }
}

/// The analytic eq.-(4) proximity of a non-client-zone `server` against
/// aggregated region masses: O(client regions + topology countries) of
/// plain arithmetic. Bit-for-bit identical to the general per-location
/// scan for duplicate-free region mixes (the mixes the workload layer
/// produces): both sides accumulate the same summands in the same order.
fn analytic_g(masses: &RegionMasses, server: &Location, topology: &Topology) -> f64 {
    let server_key = server.country_key();
    let mut weighted = 0.0;
    for &(key, mass) in masses.regions() {
        let d = match key {
            MassKey::Country(client) => zone_diversity(client, server_key),
            MassKey::Deep(client) => f64::from(diversity(&client, server)),
        };
        weighted += mass * d;
    }
    let raw = masses.total / (1.0 + weighted);
    // Baseline: the same total spread uniformly over the topology's
    // countries (the paper's uniform client geography). Accumulated
    // per-summand, mirroring the general scan's summation exactly.
    let per = masses.total / topology.country_count() as f64;
    let mut total_uniform = 0.0;
    let mut weighted_uniform = 0.0;
    for client in topology.iter_countries() {
        total_uniform += per;
        weighted_uniform += per * zone_diversity(client, server_key);
    }
    let baseline = total_uniform / (1.0 + weighted_uniform);
    if baseline <= 0.0 {
        return 1.0;
    }
    raw / baseline
}

/// The client-proximity weight `g_j` of server `server` for a partition
/// whose epoch queries came from `regions`.
///
/// Computed as eq. (4) normalized by eq. (4) evaluated with the same total
/// query volume spread uniformly over all countries of `topology`: under a
/// uniform client geography the weight is exactly 1 for every server, as the
/// paper stipulates (§III-A), and regionally skewed traffic scales servers
/// near the traffic above 1 and far servers below 1.
///
/// Every non-client-zone server evaluates through the analytic region
/// kernel ([`analytic_g`]) — country-zone clients as per-country masses,
/// arbitrary client locations as full-location masses. Only a server that
/// itself sits in a client zone takes the general per-location diversity
/// scan. With no queries at all the weight is neutral (1).
pub fn proximity(regions: &[RegionQueries], server: &Location, topology: &Topology) -> f64 {
    let total: f64 = regions.iter().map(|r| r.queries).sum();
    if total <= 0.0 {
        return 1.0;
    }
    if !server.is_client_zone() {
        return analytic_g(&RegionMasses::aggregate(regions), server, topology);
    }
    let per = total / topology.country_count() as f64;
    let baseline = raw_g_over(
        topology.iter_client_locations().map(move |l| (per, l)),
        server,
    );
    if baseline <= 0.0 {
        return 1.0;
    }
    raw_g(regions, server) / baseline
}

/// Memoizes eq.-(4) proximity per server country for one fixed region mix.
///
/// Query clients are synthetic country-level locations
/// ([`Location::client_in_country`]), so the diversity between a client and
/// any *real* (non-client-zone) server — and therefore the whole proximity
/// weight — depends only on the server's `(continent, country)` prefix.
/// One partition's decision phase evaluates proximity for every feasible
/// candidate server; this cache collapses that to one evaluation per
/// country. Servers that themselves sit in a client zone (a synthetic
/// datacenter index) bypass the cache, and so does a server whose country
/// also hosts a non-country-zone client (its same-country siblings can
/// have different weights); both stay bit-exact for arbitrary locations.
///
/// The caller owns invalidation: [`ProximityCache::clear`] must run
/// whenever the region mix it was filled from changes (`SkuteCloud` clears
/// per-partition caches at epoch start and on every query delivery).
#[derive(Debug, Clone, Default)]
pub struct ProximityCache {
    /// Aggregated region masses, computed once per region mix (`None`
    /// before first use).
    masses: Option<RegionMasses>,
    entries: Vec<((u16, u16), f64)>,
    /// Memoized maximum weights over caller-identified location sets
    /// (see [`ProximityCache::g_max`]).
    g_max_memo: Vec<(u64, f64)>,
}

impl ProximityCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops all memoized weights (the region mix changed).
    pub fn clear(&mut self) {
        self.masses = None;
        self.entries.clear();
        self.g_max_memo.clear();
    }

    /// The maximum proximity weight over `locations`, memoized under
    /// `token`: callers that query the same location sets many times per
    /// region mix (e.g. a placement index bounding each per-continent
    /// candidate walk by the best weight over that continent's country
    /// representatives) pass a token per set that changes when the set
    /// changes, and pay for each scan once.
    pub fn g_max(
        &mut self,
        token: u64,
        locations: &[Location],
        regions: &[RegionQueries],
        topology: &Topology,
    ) -> f64 {
        if let Some(&(_, g)) = self.g_max_memo.iter().find(|(t, _)| *t == token) {
            return g;
        }
        let mut g_max = 0.0f64;
        for l in locations {
            g_max = g_max.max(self.g(regions, l, topology));
        }
        self.g_max_memo.push((token, g_max));
        g_max
    }

    /// True when nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.masses.is_none() && self.entries.is_empty()
    }

    /// The proximity weight of `server` for `regions`, memoized by the
    /// server's country. Bit-for-bit identical to calling [`proximity`]
    /// directly.
    pub fn g(&mut self, regions: &[RegionQueries], server: &Location, topology: &Topology) -> f64 {
        if server.is_client_zone() {
            // A pathological server inside a client zone can match a client
            // location deeper than the country level; compute it directly.
            return proximity(regions, server, topology);
        }
        let masses = self
            .masses
            .get_or_insert_with(|| RegionMasses::aggregate(regions));
        if masses.total <= 0.0 {
            return 1.0;
        }
        let key = server.country_key();
        if masses.has_deep_in(key) {
            // A non-country-zone client shares this server's country: the
            // weight depends on the finer location levels, so same-country
            // servers can differ. Evaluate through the kernel, unmemoized.
            return analytic_g(masses, server, topology);
        }
        if let Some(&(_, g)) = self.entries.iter().find(|(k, _)| *k == key) {
            return g;
        }
        let g = analytic_g(masses, server, topology);
        self.entries.push((key, g));
        g
    }
}

/// Eq. (3): the net benefit of adding candidate server `candidate` to a
/// replica set currently hosted at `existing`:
///
/// `score_j = Σ_k g_j · conf_j · diversity(s_k, s_j) · v − c_j`
///
/// where `v` (`diversity_unit_value`) converts diversity units to money and
/// `c_j` is the candidate's posted virtual rent. The caller picks the
/// arg-max over candidates: availability rises as much as possible at
/// minimum cost, and the proximity factor simultaneously pulls data towards
/// its clients.
pub fn candidate_score(
    existing: &[Location],
    candidate: &Location,
    candidate_confidence: f64,
    candidate_rent: f64,
    g_candidate: f64,
    diversity_unit_value: f64,
) -> f64 {
    let diversity_sum: f64 = existing
        .iter()
        .map(|s| f64::from(diversity(s, candidate)))
        .sum();
    g_candidate * candidate_confidence * diversity_sum * diversity_unit_value - candidate_rent
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn topo() -> Topology {
        Topology::paper()
    }

    /// The pre-kernel reference: eq. (4) by per-location diversity scan,
    /// normalized by the uniform baseline — what [`proximity`] computed
    /// before every non-client-zone server was routed through
    /// [`analytic_g`].
    fn general_scan(regions: &[RegionQueries], server: &Location, t: &Topology) -> f64 {
        let total: f64 = regions.iter().map(|r| r.queries).sum();
        if total <= 0.0 {
            return 1.0;
        }
        let per = total / t.country_count() as f64;
        let baseline = raw_g_over(t.iter_client_locations().map(move |l| (per, l)), server);
        if baseline <= 0.0 {
            return 1.0;
        }
        raw_g(regions, server) / baseline
    }

    #[test]
    fn uniform_clients_give_unit_proximity_everywhere() {
        let t = topo();
        let total = 3000.0;
        let per = total / 10.0;
        let regions: Vec<RegionQueries> = t
            .iter_countries()
            .map(|(ct, co)| RegionQueries {
                location: Location::client_in_country(ct, co),
                queries: per,
            })
            .collect();
        for i in [0u64, 57, 123, 199] {
            let server = t.server_at(i);
            let g = proximity(&regions, &server, &t);
            assert!((g - 1.0).abs() < 1e-12, "server {i}: g = {g}");
        }
    }

    #[test]
    fn no_queries_is_neutral() {
        let t = topo();
        let server = t.server_at(0);
        assert_eq!(proximity(&[], &server, &t), 1.0);
    }

    #[test]
    fn local_traffic_boosts_local_servers() {
        let t = topo();
        let regions = [RegionQueries {
            location: Location::client_in_country(0, 0),
            queries: 1000.0,
        }];
        let local = t.server_at(0); // continent 0, country 0
        let remote = t.server_at(199); // continent 4, country 1
        let g_local = proximity(&regions, &local, &t);
        let g_remote = proximity(&regions, &remote, &t);
        assert!(g_local > 1.0, "g_local = {g_local}");
        assert!(g_remote < 1.0, "g_remote = {g_remote}");
        assert!(g_local > g_remote);
    }

    #[test]
    fn candidate_score_prefers_diverse_then_cheap() {
        let t = topo();
        let existing = vec![t.server_at(0)];
        let same_rack = t.server_at(1);
        let other_continent = t.server_at(199);
        let v = 0.02;
        let s_near = candidate_score(&existing, &same_rack, 1.0, 0.2, 1.0, v);
        let s_far = candidate_score(&existing, &other_continent, 1.0, 0.2, 1.0, v);
        assert!(s_far > s_near, "diversity dominates at equal rent");
        // Between two equally diverse candidates the cheaper one wins.
        let other_continent_b = t.server_at(198);
        let s_far_cheap = candidate_score(&existing, &other_continent_b, 1.0, 0.1, 1.0, v);
        assert!(s_far_cheap > s_far);
    }

    #[test]
    fn zero_confidence_candidate_scores_negative_rent() {
        let t = topo();
        let existing = vec![t.server_at(0)];
        let cand = t.server_at(199);
        let s = candidate_score(&existing, &cand, 0.0, 0.3, 1.0, 0.02);
        assert!((s - (-0.3)).abs() < 1e-12);
    }

    #[test]
    fn empty_replica_set_scores_pure_rent() {
        let t = topo();
        let cand = t.server_at(5);
        let s = candidate_score(&[], &cand, 1.0, 0.25, 1.0, 0.02);
        assert!((s - (-0.25)).abs() < 1e-12);
    }

    #[test]
    fn cache_matches_direct_proximity_and_collapses_countries() {
        let t = topo();
        let regions = [
            RegionQueries {
                location: Location::client_in_country(0, 0),
                queries: 900.0,
            },
            RegionQueries {
                location: Location::client_in_country(2, 1),
                queries: 100.0,
            },
        ];
        let mut cache = ProximityCache::new();
        for i in 0..200u64 {
            let server = t.server_at(i);
            let direct = proximity(&regions, &server, &t);
            let cached = cache.g(&regions, &server, &t);
            assert_eq!(cached.to_bits(), direct.to_bits(), "server {i}");
        }
        // 200 servers share 10 countries: the cache holds 10 entries.
        assert!(!cache.is_empty());
        // Re-querying stays identical and clearing resets.
        let s = t.server_at(3);
        assert_eq!(cache.g(&regions, &s, &t), proximity(&regions, &s, &t));
        cache.clear();
        assert!(cache.is_empty());
    }

    #[test]
    fn many_country_mixes_keep_the_analytic_kernel() {
        // Regression: mixes with more than 24 distinct client countries
        // used to abandon the analytic per-country kernel for the general
        // per-location scan (and defeated the per-country memoization).
        // The aggregate now spills past the inline capacity instead.
        let t = topo();
        let regions: Vec<RegionQueries> = (0..30u16)
            .map(|i| RegionQueries {
                location: Location::client_in_country(i % 7, i),
                queries: 100.0 + f64::from(i),
            })
            .collect();
        let masses = RegionMasses::aggregate(&regions);
        assert_eq!(masses.regions().count(), 30);
        assert_eq!(masses.len, 30);
        // The cache stays bit-for-bit identical to the direct evaluation
        // and still collapses to one entry per server country.
        let mut cache = ProximityCache::new();
        for i in 0..200u64 {
            let server = t.server_at(i);
            let direct = proximity(&regions, &server, &t);
            let cached = cache.g(&regions, &server, &t);
            assert_eq!(cached.to_bits(), direct.to_bits(), "server {i}");
        }
        // And on a duplicate-free mix the analytic value agrees with the
        // general per-location scan bit for bit.
        let server = t.server_at(42);
        assert_eq!(
            proximity(&regions, &server, &t).to_bits(),
            general_scan(&regions, &server, &t).to_bits()
        );
        // A duplicated country merges into its spilled slot.
        let mut dup = regions.clone();
        dup.push(RegionQueries {
            location: Location::client_in_country(29 % 7, 29),
            queries: 50.0,
        });
        let merged = RegionMasses::aggregate(&dup);
        assert_eq!(merged.regions().count(), 30);
    }

    #[test]
    fn deep_clients_route_through_the_kernel() {
        // Regression: clients outside country zones used to abandon the
        // analytic kernel for the general scan (and defeated the
        // per-country memoization entirely). They now aggregate under
        // their full location and flow through the same kernel,
        // bit-identical to the scan.
        let t = topo();
        let regions = [
            RegionQueries {
                location: Location::client_in_country(0, 0),
                queries: 700.0,
            },
            // A client pinned to a rack of continent 2, country 1.
            RegionQueries {
                location: Location::new(2, 1, 0, 0, 1, 0),
                queries: 200.0,
            },
            RegionQueries {
                location: Location::client_in_country(4, 0),
                queries: 100.0,
            },
        ];
        let mut cache = ProximityCache::new();
        for i in 0..200u64 {
            let server = t.server_at(i);
            let direct = proximity(&regions, &server, &t);
            let scan = general_scan(&regions, &server, &t);
            let cached = cache.g(&regions, &server, &t);
            assert_eq!(direct.to_bits(), scan.to_bits(), "server {i}");
            assert_eq!(cached.to_bits(), direct.to_bits(), "server {i}");
        }
        // Within the deep client's country, servers differ by finer
        // levels: the colocated server outweighs its country siblings,
        // and neither weight is memoized per country.
        let colocated = Location::new(2, 1, 0, 0, 1, 0);
        let sibling = Location::new(2, 1, 1, 0, 0, 0);
        let g_colocated = cache.g(&regions, &colocated, &t);
        let g_sibling = cache.g(&regions, &sibling, &t);
        assert!(g_colocated > g_sibling, "{g_colocated} vs {g_sibling}");
        let masses = RegionMasses::aggregate(&regions);
        assert!(masses.has_deep_in((2, 1)));
        assert!(!masses.has_deep_in((0, 0)));
    }

    #[test]
    fn cache_bypasses_client_zone_servers() {
        let t = topo();
        let regions = [RegionQueries {
            location: Location::client_in_country(0, 0),
            queries: 500.0,
        }];
        // A server that *is* the client zone location matches the client at
        // every level — its proximity differs from its country siblings'.
        let weird = Location::client_in_country(0, 0);
        let sibling = t.server_at(0);
        let mut cache = ProximityCache::new();
        let g_sibling = cache.g(&regions, &sibling, &t);
        let g_weird = cache.g(&regions, &weird, &t);
        assert_eq!(g_weird, proximity(&regions, &weird, &t));
        assert!(g_weird > g_sibling, "exact-match client zone is closer");
    }

    proptest! {
        #[test]
        fn prop_proximity_positive_and_finite(
            qs in proptest::collection::vec(0.0f64..1e5, 1..10),
            server_idx in 0u64..200,
        ) {
            let t = topo();
            let countries: Vec<(u16, u16)> = t.iter_countries().collect();
            let regions: Vec<RegionQueries> = qs
                .iter()
                .enumerate()
                .map(|(i, &q)| {
                    let (ct, co) = countries[i % countries.len()];
                    RegionQueries { location: Location::client_in_country(ct, co), queries: q }
                })
                .collect();
            let g = proximity(&regions, &t.server_at(server_idx), &t);
            prop_assert!(g.is_finite());
            prop_assert!(g > 0.0);
        }

        #[test]
        fn prop_kernel_matches_general_scan_bit_for_bit(
            qs in proptest::collection::vec(0.001f64..1e5, 1..9),
            deep in proptest::collection::vec(
                (0u16..5, 0u16..2, 0u16..2, 0u16..1, 0u16..2, 0u16..4),
                0..4,
            ),
            server_idx in 0u64..200,
        ) {
            // A duplicate-free mix of country-zone and arbitrary deep
            // client locations: the analytic kernel must reproduce the
            // general per-location scan bit for bit on every
            // non-client-zone server.
            let t = topo();
            let countries: Vec<(u16, u16)> = t.iter_countries().collect();
            let mut regions: Vec<RegionQueries> = qs
                .iter()
                .enumerate()
                .map(|(i, &q)| {
                    let (ct, co) = countries[i % countries.len()];
                    RegionQueries { location: Location::client_in_country(ct, co), queries: q }
                })
                .collect();
            let mut deep_locs: Vec<Location> = deep
                .into_iter()
                .map(|(ct, co, dc, rm, rk, sv)| Location::new(ct, co, dc, rm, rk, sv))
                .collect();
            deep_locs.sort();
            deep_locs.dedup();
            regions.extend(deep_locs.into_iter().map(|l| RegionQueries {
                location: l,
                queries: 10.0,
            }));
            let server = t.server_at(server_idx);
            let kernel = proximity(&regions, &server, &t);
            let scan = general_scan(&regions, &server, &t);
            prop_assert_eq!(kernel.to_bits(), scan.to_bits());
            // And the cache agrees with the direct evaluation.
            let mut cache = ProximityCache::new();
            prop_assert_eq!(cache.g(&regions, &server, &t).to_bits(), kernel.to_bits());
            prop_assert_eq!(cache.g(&regions, &server, &t).to_bits(), kernel.to_bits());
        }

        #[test]
        fn prop_score_decreases_with_rent(
            rent1 in 0.0f64..2.0, rent2 in 0.0f64..2.0, server_idx in 0u64..200
        ) {
            let t = topo();
            let existing = vec![t.server_at(0), t.server_at(100)];
            let cand = t.server_at(server_idx);
            let lo = candidate_score(&existing, &cand, 1.0, rent1.min(rent2), 1.0, 0.02);
            let hi = candidate_score(&existing, &cand, 1.0, rent1.max(rent2), 1.0, 0.02);
            prop_assert!(lo >= hi);
        }
    }
}
