//! Eq. (5): the utility a virtual node earns from answered queries.
//!
//! "Each query creates a utility value for the virtual node, which can be
//! assumed to be proportional to the size of the query reply and inversely
//! proportional to the average distance of the client locations from the
//! server of the virtual node" (§II-C). We therefore compute
//! `u = γ · queries · g`, where `g` is the proximity weight of eq. (4)
//! (large when close): utility *grows* with proximity. Eq. (5)'s phrasing
//! "divided by the geographic proximity" contradicts the quoted prose and is
//! treated as a typo (see DESIGN.md §3.1).

/// Utility earned by a vnode that answered `queries` queries at proximity
/// `g`, with `gamma` the monetary normalization (money per query).
#[inline]
pub fn utility(queries: f64, g: f64, gamma: f64) -> f64 {
    gamma * queries * g
}

/// Applies the paper's utility floor: "at the end of an epoch, the virtual
/// node agent sets \[the\] lowest utility value u(pop, g) to the current
/// lowest virtual rent price" (§II-C), so a vnode already sitting on the
/// cheapest server never accumulates a negative streak and migrates
/// indefinitely.
#[inline]
pub fn floored_utility(raw_utility: f64, min_board_rent: Option<f64>) -> f64 {
    match min_board_rent {
        Some(floor) => raw_utility.max(floor),
        None => raw_utility,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn utility_scales_with_queries_and_proximity() {
        assert_eq!(utility(100.0, 1.0, 0.01), 1.0);
        assert_eq!(utility(100.0, 2.0, 0.01), 2.0);
        assert_eq!(utility(0.0, 5.0, 0.01), 0.0);
    }

    #[test]
    fn floor_lifts_low_utility() {
        assert_eq!(floored_utility(0.1, Some(0.5)), 0.5);
        assert_eq!(floored_utility(0.9, Some(0.5)), 0.9);
        assert_eq!(floored_utility(0.1, None), 0.1);
    }

    #[test]
    fn floored_vnode_on_cheapest_server_breaks_even() {
        // A vnode with zero queries on the cheapest server (rent = floor)
        // has balance u − c = 0, not negative: it stops migrating.
        let min_rent = 0.2;
        let u = floored_utility(utility(0.0, 1.0, 0.001), Some(min_rent));
        let balance = u - min_rent;
        assert_eq!(balance, 0.0);
    }

    proptest! {
        #[test]
        fn prop_utility_monotone_in_each_arg(
            q in 0.0f64..1e6, g in 0.0f64..10.0, gamma in 1e-6f64..1.0, dq in 0.0f64..100.0
        ) {
            prop_assert!(utility(q + dq, g, gamma) >= utility(q, g, gamma));
            prop_assert!(utility(q, g + 0.1, gamma) >= utility(q, g, gamma));
        }

        #[test]
        fn prop_floor_is_lower_bound(u in -10.0f64..10.0, floor in 0.0f64..5.0) {
            let v = floored_utility(u, Some(floor));
            prop_assert!(v >= floor);
            prop_assert!(v >= u);
            prop_assert!(v == u || v == floor);
        }
    }
}
