//! Tunables of the virtual economy.

/// Parameters of the virtual economy.
///
/// The paper introduces α and β as "normalizing factors" of eq. (1) and
/// leaves their values (as well as the money-per-query normalization of
/// eq. 5) unspecified; the defaults here are the calibration used by the
/// reproduction experiments and can be swept with the `ablation_rent`
/// bench.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EconomyConfig {
    /// α of eq. (1): weight of the storage-usage fraction in the rent.
    pub alpha: f64,
    /// β of eq. (1): weight of the query-load fraction in the rent.
    pub beta: f64,
    /// γ of eq. (5): monetary utility earned per answered query (at
    /// proximity g = 1).
    pub utility_per_query: f64,
    /// f of §II-C: number of consecutive epochs a balance must stay
    /// negative (positive) before a vnode migrates/suicides (replicates).
    pub decision_window: usize,
    /// Monetary value of one unit of diversity in eq. (3), balancing the
    /// diversity sum against rents. Larger values favour spread over cost.
    pub diversity_unit_value: f64,
    /// Per-epoch data-consistency cost charged per extra replica and per
    /// MiB of write traffic to the partition (the "increased network cost
    /// for data consistency" of §II-C).
    pub consistency_cost_per_mib: f64,
    /// Data-transfer cost per MiB a replication or migration moves between
    /// servers (the transfer term of the paper's cost model). Priced from
    /// the storage backend's **measured** bytes
    /// (`ActionCounts::transfer_cost` in `skute-core`): identical to the
    /// logical size under the in-memory oracle, real WAL + SSTable bytes
    /// under the LSM engine.
    pub transfer_cost_per_mib: f64,
    /// Safety margin: a vnode only replicates for profit when its mean
    /// balance exceeds this multiple of the projected extra cost.
    pub replication_hurdle: f64,
    /// Hard cap on replicas per partition, bounding runaway replication of
    /// extremely popular partitions.
    pub max_replicas: usize,
    /// Migration hysteresis in `[0, 1)`: a vnode only migrates to a server
    /// whose rent undercuts its current rent by at least this fraction.
    /// Damps herding oscillations where unpopular vnodes bounce between
    /// near-equally cheap servers every f epochs.
    pub migration_margin: f64,
}

impl EconomyConfig {
    /// Calibration used throughout the paper-reproduction experiments.
    pub fn paper() -> Self {
        Self {
            alpha: 1.0,
            beta: 1.0,
            utility_per_query: 0.001,
            decision_window: 3,
            diversity_unit_value: 0.02,
            consistency_cost_per_mib: 0.001,
            transfer_cost_per_mib: 0.001,
            replication_hurdle: 1.5,
            max_replicas: 12,
            migration_margin: 0.1,
        }
    }

    /// Validates parameter ranges; call after hand-building a config.
    ///
    /// # Panics
    /// Panics on non-finite or out-of-range parameters.
    pub fn validate(&self) {
        assert!(
            self.alpha >= 0.0 && self.alpha.is_finite(),
            "alpha must be ≥ 0"
        );
        assert!(
            self.beta >= 0.0 && self.beta.is_finite(),
            "beta must be ≥ 0"
        );
        assert!(
            self.utility_per_query > 0.0 && self.utility_per_query.is_finite(),
            "utility_per_query must be > 0"
        );
        assert!(self.decision_window >= 1, "decision_window must be ≥ 1");
        assert!(
            self.diversity_unit_value >= 0.0 && self.diversity_unit_value.is_finite(),
            "diversity_unit_value must be ≥ 0"
        );
        assert!(
            self.consistency_cost_per_mib >= 0.0,
            "consistency_cost_per_mib must be ≥ 0"
        );
        assert!(
            self.transfer_cost_per_mib >= 0.0 && self.transfer_cost_per_mib.is_finite(),
            "transfer_cost_per_mib must be ≥ 0"
        );
        assert!(
            self.replication_hurdle >= 0.0,
            "replication_hurdle must be ≥ 0"
        );
        assert!(self.max_replicas >= 1, "max_replicas must be ≥ 1");
        assert!(
            (0.0..1.0).contains(&self.migration_margin),
            "migration_margin must be in [0, 1)"
        );
    }
}

impl Default for EconomyConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_is_valid() {
        EconomyConfig::paper().validate();
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn negative_alpha_rejected() {
        let mut c = EconomyConfig::paper();
        c.alpha = -1.0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "decision_window")]
    fn zero_window_rejected() {
        let mut c = EconomyConfig::paper();
        c.decision_window = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "max_replicas")]
    fn zero_max_replicas_rejected() {
        let mut c = EconomyConfig::paper();
        c.max_replicas = 0;
        c.validate();
    }

    #[test]
    #[should_panic(expected = "transfer_cost_per_mib")]
    fn negative_transfer_cost_rejected() {
        let mut c = EconomyConfig::paper();
        c.transfer_cost_per_mib = -0.5;
        c.validate();
    }
}
