//! Per-vnode balance bookkeeping and f-epoch streak detection.

use std::collections::VecDeque;

/// Rolling history of a virtual node's per-epoch balances
/// (`b = u(pop, g) − c`, eq. 5), with detection of the f-epoch positive and
/// negative streaks that drive the §II-C decision process.
#[derive(Debug, Clone)]
pub struct BalanceHistory {
    window: usize,
    recent: VecDeque<f64>,
    lifetime_total: f64,
    epochs_recorded: u64,
}

impl BalanceHistory {
    /// A history that detects streaks of `window` (= f) epochs.
    ///
    /// # Panics
    /// Panics if `window == 0`.
    pub fn new(window: usize) -> Self {
        assert!(window >= 1, "decision window must be at least one epoch");
        Self {
            window,
            recent: VecDeque::with_capacity(window),
            lifetime_total: 0.0,
            epochs_recorded: 0,
        }
    }

    /// Records one epoch's balance.
    pub fn record(&mut self, balance: f64) {
        if self.recent.len() == self.window {
            self.recent.pop_front();
        }
        self.recent.push_back(balance);
        self.lifetime_total += balance;
        self.epochs_recorded += 1;
    }

    /// The configured window f.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Number of epochs recorded over the vnode's lifetime.
    pub fn epochs_recorded(&self) -> u64 {
        self.epochs_recorded
    }

    /// Sum of all balances ever recorded (the vnode's "wealth").
    pub fn lifetime_total(&self) -> f64 {
        self.lifetime_total
    }

    /// True when the last f epochs were all strictly negative — the §II-C
    /// trigger for migrate-or-suicide. Requires a full window of history.
    pub fn negative_streak(&self) -> bool {
        self.recent.len() == self.window && self.recent.iter().all(|&b| b < 0.0)
    }

    /// True when the last f epochs were all strictly positive — the §II-C
    /// precondition for profit-driven replication.
    pub fn positive_streak(&self) -> bool {
        self.recent.len() == self.window && self.recent.iter().all(|&b| b > 0.0)
    }

    /// Mean of the balances inside the current window (`None` before any
    /// epoch is recorded).
    pub fn window_mean(&self) -> Option<f64> {
        if self.recent.is_empty() {
            None
        } else {
            Some(self.recent.iter().sum::<f64>() / self.recent.len() as f64)
        }
    }

    /// Clears the streak state (used after a vnode migrates, so the clock
    /// restarts at the new server).
    pub fn reset_window(&mut self) {
        self.recent.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn no_streak_before_full_window() {
        let mut h = BalanceHistory::new(3);
        h.record(-1.0);
        h.record(-1.0);
        assert!(!h.negative_streak(), "window not yet full");
        h.record(-1.0);
        assert!(h.negative_streak());
        assert!(!h.positive_streak());
    }

    #[test]
    fn mixed_signs_break_streaks() {
        let mut h = BalanceHistory::new(3);
        for b in [-1.0, 2.0, -1.0] {
            h.record(b);
        }
        assert!(!h.negative_streak());
        assert!(!h.positive_streak());
    }

    #[test]
    fn zero_balance_breaks_both_streaks() {
        let mut h = BalanceHistory::new(2);
        h.record(0.0);
        h.record(0.0);
        assert!(!h.negative_streak(), "break-even is not a loss");
        assert!(!h.positive_streak(), "break-even is not a profit");
    }

    #[test]
    fn window_slides() {
        let mut h = BalanceHistory::new(2);
        h.record(-5.0);
        h.record(1.0);
        h.record(1.0);
        assert!(h.positive_streak(), "old loss slid out of the window");
        assert!((h.window_mean().unwrap() - 1.0).abs() < 1e-12);
        assert!((h.lifetime_total() - (-3.0)).abs() < 1e-12);
        assert_eq!(h.epochs_recorded(), 3);
    }

    #[test]
    fn reset_window_clears_streaks_not_lifetime() {
        let mut h = BalanceHistory::new(1);
        h.record(2.0);
        assert!(h.positive_streak());
        h.reset_window();
        assert!(!h.positive_streak());
        assert_eq!(h.window_mean(), None);
        assert!((h.lifetime_total() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one epoch")]
    fn zero_window_rejected() {
        let _ = BalanceHistory::new(0);
    }

    proptest! {
        #[test]
        fn prop_streaks_are_mutually_exclusive(
            window in 1usize..5,
            balances in proptest::collection::vec(-10.0f64..10.0, 0..20)
        ) {
            let mut h = BalanceHistory::new(window);
            for b in &balances {
                h.record(*b);
            }
            prop_assert!(!(h.negative_streak() && h.positive_streak()));
        }

        #[test]
        fn prop_negative_streak_matches_last_f(
            window in 1usize..5,
            balances in proptest::collection::vec(-10.0f64..10.0, 1..20)
        ) {
            let mut h = BalanceHistory::new(window);
            for b in &balances {
                h.record(*b);
            }
            let expected = balances.len() >= window
                && balances[balances.len() - window..].iter().all(|&b| b < 0.0);
            prop_assert_eq!(h.negative_streak(), expected);
        }
    }
}
