//! # skute-economy
//!
//! The virtual economy of Skute (§II): every data partition's virtual nodes
//! behave as individual optimizers that pay **virtual rent** to the servers
//! hosting them and earn **utility** from the queries they answer. This
//! crate implements the paper's four equations as small, independently
//! testable components:
//!
//! * eq. (1) — [`RentModel`]: `c = up · (1 + α·storage_usage + β·query_load)`,
//! * eq. (2) is availability and lives in `skute-core` (it needs SLA context),
//! * eq. (3) — [`scoring::candidate_score`]: replication/migration target
//!   selection maximizing diversity gain minus rent,
//! * eq. (4) — [`scoring::proximity`]: the client-proximity weight `g_j`,
//! * eq. (5) — [`utility()`]: the per-epoch balance `b = u(pop, g) − c`.
//!
//! [`BalanceHistory`] tracks the f-epoch positive/negative balance streaks
//! that gate the replicate/migrate/suicide decisions of §II-C.

#![warn(missing_docs)]

pub mod balance;
pub mod config;
pub mod rent;
pub mod scoring;
pub mod utility;

pub use balance::BalanceHistory;
pub use config::EconomyConfig;
pub use rent::RentModel;
pub use scoring::{candidate_score, proximity, ProximityCache, RegionQueries};
pub use utility::{floored_utility, utility};
