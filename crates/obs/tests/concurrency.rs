//! Metric handles must survive being hammered from `skute-exec` worker
//! pool tasks without losing increments — the exact setting the core
//! pipeline uses them in.

use skute_exec::WorkerPool;
use skute_obs::{Histogram, Registry};

#[test]
fn counter_loses_no_increments_under_worker_pool() {
    let registry = Registry::new();
    let counter = registry.counter("skute_hammer_total", "Hammered from the pool.");
    let pool = WorkerPool::new(8);
    const TASKS: usize = 64;
    const PER_TASK: u64 = 10_000;
    let tasks: Vec<usize> = (0..TASKS).collect();
    let handle = counter.clone();
    let _ = pool.run_tasks(tasks, move |_, _| {
        for _ in 0..PER_TASK {
            handle.inc();
        }
    });
    assert_eq!(counter.get(), TASKS as u64 * PER_TASK);
}

#[test]
fn histogram_loses_no_observations_under_worker_pool() {
    let hist = Histogram::new(&[0.5, 1.5, 2.5, 3.5]);
    let pool = WorkerPool::new(8);
    const TASKS: usize = 32;
    const PER_TASK: usize = 4_000;
    let tasks: Vec<usize> = (0..TASKS).collect();
    let handle = hist.clone();
    let _ = pool.run_tasks(tasks, move |_, i| {
        // Each task writes a known mix: observation value cycles 0..4.
        for k in 0..PER_TASK {
            handle.observe(((i + k) % 4) as f64);
        }
    });
    let total = (TASKS * PER_TASK) as u64;
    assert_eq!(hist.count(), total);
    // Every residue class appears equally often, so each of the four
    // buckets holds exactly a quarter of the observations.
    let buckets = hist.cumulative_buckets();
    assert_eq!(buckets[0].1, total / 4); // value 0
    assert_eq!(buckets[1].1, total / 2); // values 0,1
    assert_eq!(buckets[2].1, 3 * total / 4);
    assert_eq!(buckets[3].1, total);
    // Fixed-point sum is exact for integral observations:
    // Σ = total/4 * (0 + 1 + 2 + 3).
    let expected_sum = (total / 4) as f64 * 6.0;
    assert!((hist.sum() - expected_sum).abs() < 1e-6);
}

#[test]
fn concurrent_registration_is_idempotent() {
    let registry = std::sync::Arc::new(Registry::new());
    let pool = WorkerPool::new(4);
    let tasks: Vec<usize> = (0..16).collect();
    let reg = registry.clone();
    let _ = pool.run_tasks(tasks, move |_, _| {
        let c = reg.counter_with(
            "skute_reg_total",
            "Registered from many tasks.",
            &[("op", "x")],
        );
        c.inc();
    });
    let c = registry.counter_with(
        "skute_reg_total",
        "Registered from many tasks.",
        &[("op", "x")],
    );
    assert_eq!(c.get(), 16);
    // One family, one series in the rendered output.
    let text = registry.render();
    assert_eq!(text.matches("skute_reg_total{").count(), 1);
}
