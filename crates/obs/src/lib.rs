//! # skute-obs
//!
//! A zero-dependency metrics layer for Skute: atomic [`Counter`]s,
//! [`Gauge`]s and fixed-bucket latency [`Histogram`]s collected in a
//! [`Registry`] that renders the Prometheus text exposition format (and a
//! JSON snapshot for end-of-run artifacts).
//!
//! Design constraints, in order:
//!
//! 1. **Observability never perturbs trajectories.** Metric handles are
//!    plain atomics behind `Arc`s — recording is wait-free, allocates
//!    nothing, takes no locks, and (critically) is never *read* by any
//!    decision path. A Skute cloud produces bitwise-identical same-seed
//!    output with metrics attached or absent; CI's determinism matrix
//!    byte-compares exactly that.
//! 2. **No dependencies.** The build environment is offline; everything
//!    here is `std`. Exposition is hand-rendered text.
//! 3. **Cheap to hold, cheap to hammer.** Handles are `Clone` (`Arc`
//!    bumps) and safe to update from any thread, including
//!    `skute-exec` worker-pool tasks — a property the crate's concurrency
//!    test pins down by hammering one counter from every worker.
//!
//! ## Exposition
//!
//! [`Registry::render`] groups metrics into families (one `# HELP`/
//! `# TYPE` header per family, series distinguished by labels), sorted by
//! family name so output is stable run to run:
//!
//! ```text
//! # HELP skute_server_requests_total Requests parsed, by operation.
//! # TYPE skute_server_requests_total counter
//! skute_server_requests_total{op="get"} 1290
//! skute_server_requests_total{op="put"} 645
//! ```
//!
//! Histograms follow the Prometheus convention: cumulative `_bucket`
//! series with `le` upper bounds (the bound is **inclusive**), a `_sum`
//! and a `_count`.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter (wraps at `u64::MAX`, which at one
/// increment per nanosecond takes five centuries to reach).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// A standalone counter (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down (queue depths, refreshed
/// storage-engine totals).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// A standalone gauge (not registered anywhere).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative via [`Gauge::sub`]).
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Nanoseconds per second — the fixed-point scale of a histogram's sum.
const NANOS_PER_UNIT: f64 = 1e9;

#[derive(Debug)]
struct HistogramInner {
    /// Finite bucket upper bounds, strictly increasing. An implicit
    /// `+Inf` bucket always follows.
    bounds: Vec<f64>,
    /// Non-cumulative per-bucket observation counts;
    /// `counts.len() == bounds.len() + 1` (the last slot is `+Inf`).
    counts: Vec<AtomicU64>,
    /// Σ observed values in fixed-point nanounits (1e-9). Atomic u64
    /// fixed-point instead of a float CAS loop: addition is exact for the
    /// integral-valued histograms (batch widths) and nanosecond-precise
    /// for latencies, and `fetch_add` is wait-free.
    sum_nanos: AtomicU64,
}

/// A fixed-bucket histogram. Observations are non-negative `f64`s
/// (seconds for latency series, plain counts for width series); negative
/// or non-finite observations are clamped to zero.
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// A standalone histogram over `bounds` (finite upper bounds,
    /// strictly increasing; the `+Inf` bucket is implicit).
    ///
    /// # Panics
    /// Panics if `bounds` is unsorted, has duplicates, or holds a
    /// non-finite value.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite (+Inf is implicit)"
        );
        let counts = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts,
                sum_nanos: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation. The matching bucket is the first whose
    /// upper bound is **≥** the value (Prometheus `le` semantics: a value
    /// exactly on a boundary lands in that boundary's bucket).
    pub fn observe(&self, v: f64) {
        let v = if v.is_finite() && v > 0.0 { v } else { 0.0 };
        let idx = self
            .inner
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.inner.bounds.len());
        self.inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        // Saturate rather than wrap: a histogram that has accumulated
        // 584 years of latency keeps its ceiling instead of resetting.
        let nanos = (v * NANOS_PER_UNIT).round().min(u64::MAX as f64) as u64;
        let prev = self.inner.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        if prev.checked_add(nanos).is_none() {
            self.inner.sum_nanos.store(u64::MAX, Ordering::Relaxed);
        }
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.inner
            .counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .sum()
    }

    /// Σ observed values.
    pub fn sum(&self) -> f64 {
        self.inner.sum_nanos.load(Ordering::Relaxed) as f64 / NANOS_PER_UNIT
    }

    /// `(upper_bound, cumulative_count)` per bucket, ending with the
    /// `+Inf` bucket (`f64::INFINITY`, total count).
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut cum = 0u64;
        let mut out = Vec::with_capacity(self.inner.bounds.len() + 1);
        for (i, c) in self.inner.counts.iter().enumerate() {
            cum += c.load(Ordering::Relaxed);
            let bound = self.inner.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((bound, cum));
        }
        out
    }

    /// Estimated quantile (`q` in `[0, 1]`) by linear interpolation
    /// within the winning bucket — the standard Prometheus
    /// `histogram_quantile` estimator. Returns `None` when the histogram
    /// is empty. The `+Inf` bucket clamps to the highest finite bound.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = q.clamp(0.0, 1.0) * total as f64;
        let mut cum = 0u64;
        for (i, c) in self.inner.counts.iter().enumerate() {
            let in_bucket = c.load(Ordering::Relaxed);
            let prev_cum = cum;
            cum += in_bucket;
            if (cum as f64) >= rank {
                let Some(&hi) = self.inner.bounds.get(i) else {
                    // +Inf bucket: clamp to the largest finite bound.
                    return Some(self.inner.bounds.last().copied().unwrap_or(0.0));
                };
                let lo = if i == 0 {
                    0.0
                } else {
                    self.inner.bounds[i - 1]
                };
                if in_bucket == 0 {
                    return Some(hi);
                }
                let frac = (rank - prev_cum as f64) / in_bucket as f64;
                return Some(lo + (hi - lo) * frac.clamp(0.0, 1.0));
            }
        }
        Some(self.inner.bounds.last().copied().unwrap_or(0.0))
    }
}

/// `count` exponentially growing bucket bounds starting at `start`
/// (each `factor` times the last) — the usual latency-histogram shape.
///
/// # Panics
/// Panics unless `start > 0`, `factor > 1` and `count ≥ 1`.
pub fn exponential_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0 && count >= 1);
    let mut out = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        out.push(b);
        b *= factor;
    }
    out
}

/// `count` linearly spaced bucket bounds starting at `start`.
///
/// # Panics
/// Panics unless `width > 0` and `count ≥ 1`.
pub fn linear_buckets(start: f64, width: f64, count: usize) -> Vec<f64> {
    assert!(width > 0.0 && count >= 1);
    (0..count).map(|i| start + width * i as f64).collect()
}

/// What a family's series measure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Goes up and down.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum Handle {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Series {
    labels: Vec<(String, String)>,
    handle: Handle,
}

#[derive(Debug)]
struct Family {
    name: String,
    help: String,
    kind: MetricKind,
    series: Vec<Series>,
}

/// A collection of metric families rendered together. Registration takes
/// a short mutex (startup-path only); the handles it returns update
/// lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

/// Validates a metric or label name: `[a-zA-Z_][a-zA-Z0-9_]*`.
fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Handle,
    ) -> Handle {
        assert!(valid_name(name), "invalid metric name {name:?}");
        for (k, _) in labels {
            assert!(valid_name(k), "invalid label name {k:?}");
        }
        let labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        let mut families = self.families.lock().expect("obs registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(f) => {
                assert!(
                    f.kind == kind,
                    "metric family {name:?} re-registered as {:?} (was {:?})",
                    kind,
                    f.kind
                );
                f
            }
            None => {
                families.push(Family {
                    name: name.to_string(),
                    help: help.to_string(),
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(existing) = family.series.iter().find(|s| s.labels == labels) {
            // Idempotent: the same (family, label set) hands back the same
            // underlying metric, so two registrants share one series.
            return existing.handle.clone();
        }
        let handle = make();
        family.series.push(Series {
            labels,
            handle: handle.clone(),
        });
        handle
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or retrieves) a labeled counter series.
    ///
    /// # Panics
    /// Panics on an invalid name or if `name` is already registered as a
    /// different metric kind.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.register(name, help, MetricKind::Counter, labels, || {
            Handle::Counter(Counter::new())
        }) {
            Handle::Counter(c) => c,
            _ => unreachable!("registered as counter"),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or retrieves) a labeled gauge series.
    ///
    /// # Panics
    /// Panics on an invalid name or if `name` is already registered as a
    /// different metric kind.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.register(name, help, MetricKind::Gauge, labels, || {
            Handle::Gauge(Gauge::new())
        }) {
            Handle::Gauge(g) => g,
            _ => unreachable!("registered as gauge"),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram over `bounds`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, &[], bounds)
    }

    /// Registers (or retrieves) a labeled histogram series over `bounds`.
    ///
    /// # Panics
    /// Panics on an invalid name, invalid bounds, or if `name` is already
    /// registered as a different metric kind.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Histogram {
        match self.register(name, help, MetricKind::Histogram, labels, || {
            Handle::Histogram(Histogram::new(bounds))
        }) {
            Handle::Histogram(h) => h,
            _ => unreachable!("registered as histogram"),
        }
    }

    /// Renders every family in the Prometheus text exposition format,
    /// families sorted by name (stable output for golden tests and byte
    /// comparisons), series in registration order.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("obs registry poisoned");
        let mut order: Vec<usize> = (0..families.len()).collect();
        order.sort_by(|&a, &b| families[a].name.cmp(&families[b].name));
        let mut out = String::new();
        for idx in order {
            let f = &families[idx];
            out.push_str("# HELP ");
            out.push_str(&f.name);
            out.push(' ');
            out.push_str(&escape_help(&f.help));
            out.push('\n');
            out.push_str("# TYPE ");
            out.push_str(&f.name);
            out.push(' ');
            out.push_str(f.kind.as_str());
            out.push('\n');
            for s in &f.series {
                match &s.handle {
                    Handle::Counter(c) => {
                        sample_line(&mut out, &f.name, "", &s.labels, None, c.get() as f64);
                    }
                    Handle::Gauge(g) => {
                        sample_line(&mut out, &f.name, "", &s.labels, None, g.get() as f64);
                    }
                    Handle::Histogram(h) => {
                        for (bound, cum) in h.cumulative_buckets() {
                            sample_line(
                                &mut out,
                                &f.name,
                                "_bucket",
                                &s.labels,
                                Some(bound),
                                cum as f64,
                            );
                        }
                        sample_line(&mut out, &f.name, "_sum", &s.labels, None, h.sum());
                        sample_line(
                            &mut out,
                            &f.name,
                            "_count",
                            &s.labels,
                            None,
                            h.count() as f64,
                        );
                    }
                }
            }
        }
        out
    }

    /// Renders every family as a JSON document (stable ordering, same as
    /// [`Registry::render`]) — the end-of-run snapshot format of
    /// `skute-sim --metrics-json`.
    pub fn render_json(&self) -> String {
        let families = self.families.lock().expect("obs registry poisoned");
        let mut order: Vec<usize> = (0..families.len()).collect();
        order.sort_by(|&a, &b| families[a].name.cmp(&families[b].name));
        let mut out = String::from("[");
        for (fi, idx) in order.iter().enumerate() {
            let f = &families[*idx];
            if fi > 0 {
                out.push(',');
            }
            out.push_str("\n  {\"name\":");
            json_string(&mut out, &f.name);
            out.push_str(",\"kind\":");
            json_string(&mut out, f.kind.as_str());
            out.push_str(",\"series\":[");
            for (si, s) in f.series.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (li, (k, v)) in s.labels.iter().enumerate() {
                    if li > 0 {
                        out.push(',');
                    }
                    json_string(&mut out, k);
                    out.push(':');
                    json_string(&mut out, v);
                }
                out.push('}');
                match &s.handle {
                    Handle::Counter(c) => {
                        out.push_str(",\"value\":");
                        out.push_str(&fmt_value(c.get() as f64));
                    }
                    Handle::Gauge(g) => {
                        out.push_str(",\"value\":");
                        out.push_str(&fmt_value(g.get() as f64));
                    }
                    Handle::Histogram(h) => {
                        out.push_str(",\"buckets\":[");
                        for (bi, (bound, cum)) in h.cumulative_buckets().iter().enumerate() {
                            if bi > 0 {
                                out.push(',');
                            }
                            out.push('[');
                            if bound.is_finite() {
                                out.push_str(&fmt_value(*bound));
                            } else {
                                out.push_str("\"+Inf\"");
                            }
                            out.push(',');
                            out.push_str(&fmt_value(*cum as f64));
                            out.push(']');
                        }
                        out.push_str("],\"sum\":");
                        out.push_str(&fmt_value(h.sum()));
                        out.push_str(",\"count\":");
                        out.push_str(&fmt_value(h.count() as f64));
                    }
                }
                out.push('}');
            }
            out.push_str("]}");
        }
        out.push_str("\n]");
        out
    }
}

/// Appends one exposition sample line.
fn sample_line(
    out: &mut String,
    family: &str,
    suffix: &str,
    labels: &[(String, String)],
    le: Option<f64>,
    value: f64,
) {
    out.push_str(family);
    out.push_str(suffix);
    if !labels.is_empty() || le.is_some() {
        out.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_label(v));
            out.push('"');
        }
        if let Some(b) = le {
            if !first {
                out.push(',');
            }
            out.push_str("le=\"");
            if b.is_finite() {
                out.push_str(&fmt_value(b));
            } else {
                out.push_str("+Inf");
            }
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(&fmt_value(value));
    out.push('\n');
}

/// Formats a sample value: integral values print without a fraction
/// (counters stay greppable as integers), everything else as shortest
/// round-trip float.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        let g = Gauge::new();
        g.set(7);
        g.add(5);
        g.sub(2);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        // `le` semantics: a value exactly on an upper bound lands in that
        // bound's bucket, not the next one.
        let h = Histogram::new(&[1.0, 2.0, 5.0]);
        h.observe(1.0); // first bucket, boundary inclusive
        h.observe(1.0000001); // second bucket
        h.observe(2.0); // second bucket, boundary inclusive
        h.observe(5.0); // third bucket
        h.observe(5.0000001); // +Inf bucket
        h.observe(0.0); // first bucket (le=1.0 covers 0)
        let buckets = h.cumulative_buckets();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0], (1.0, 2)); // 1.0 and 0.0
        assert_eq!(buckets[1], (2.0, 4)); // + 1.0000001, 2.0
        assert_eq!(buckets[2], (5.0, 5)); // + 5.0
        assert_eq!(buckets[3].1, 6); // + overflow
        assert!(buckets[3].0.is_infinite());
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn histogram_clamps_junk_observations() {
        let h = Histogram::new(&[1.0]);
        h.observe(-3.0);
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        // All clamp to 0.0: first bucket, zero sum contribution.
        assert_eq!(h.cumulative_buckets()[0].1, 3);
        assert_eq!(h.sum(), 0.0);
    }

    #[test]
    fn histogram_sum_is_fixed_point_exact() {
        let h = Histogram::new(&[10.0]);
        for _ in 0..1000 {
            h.observe(0.001);
        }
        assert!((h.sum() - 1.0).abs() < 1e-9, "sum {}", h.sum());
    }

    #[test]
    fn histogram_quantiles_interpolate() {
        let h = Histogram::new(&[1.0, 2.0, 4.0]);
        for _ in 0..50 {
            h.observe(0.5);
        }
        for _ in 0..50 {
            h.observe(3.0);
        }
        // p50 sits at the edge of the first bucket.
        let p50 = h.quantile(0.5).unwrap();
        assert!((0.9..=1.1).contains(&p50), "p50 {p50}");
        // p99 interpolates inside (2, 4].
        let p99 = h.quantile(0.99).unwrap();
        assert!((2.0..=4.0).contains(&p99), "p99 {p99}");
        assert!(Histogram::new(&[1.0]).quantile(0.5).is_none());
    }

    #[test]
    fn bucket_helpers() {
        assert_eq!(linear_buckets(1.0, 2.0, 3), vec![1.0, 3.0, 5.0]);
        let exp = exponential_buckets(0.001, 10.0, 3);
        assert!((exp[0] - 0.001).abs() < 1e-12);
        assert!((exp[2] - 0.1).abs() < 1e-12);
    }

    #[test]
    fn registry_is_idempotent_per_series() {
        let r = Registry::new();
        let a = r.counter_with("skute_x_total", "x", &[("op", "get")]);
        let b = r.counter_with("skute_x_total", "x", &[("op", "get")]);
        a.inc();
        b.inc();
        // Same series: both handles hit one atomic.
        assert_eq!(a.get(), 2);
        let c = r.counter_with("skute_x_total", "x", &[("op", "put")]);
        c.inc();
        assert_eq!(c.get(), 1);
    }

    #[test]
    #[should_panic(expected = "re-registered")]
    fn registry_rejects_kind_mismatch() {
        let r = Registry::new();
        let _ = r.counter("skute_x_total", "x");
        let _ = r.gauge("skute_x_total", "x");
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn registry_rejects_bad_names() {
        let _ = Registry::new().counter("1bad", "x");
    }

    #[test]
    fn golden_exposition_format() {
        let r = Registry::new();
        let reqs = r.counter_with("skute_requests_total", "Requests served.", &[("op", "get")]);
        reqs.add(3);
        r.counter_with("skute_requests_total", "Requests served.", &[("op", "put")])
            .add(1);
        let depth = r.gauge("skute_queue_depth", "In-flight requests.");
        depth.set(2);
        let lat = r.histogram(
            "skute_request_seconds",
            "Request latency.",
            &[0.001, 0.01, 0.1],
        );
        lat.observe(0.0005);
        lat.observe(0.002);
        lat.observe(0.5);
        let expected = "\
# HELP skute_queue_depth In-flight requests.
# TYPE skute_queue_depth gauge
skute_queue_depth 2
# HELP skute_request_seconds Request latency.
# TYPE skute_request_seconds histogram
skute_request_seconds_bucket{le=\"0.001\"} 1
skute_request_seconds_bucket{le=\"0.01\"} 2
skute_request_seconds_bucket{le=\"0.1\"} 2
skute_request_seconds_bucket{le=\"+Inf\"} 3
skute_request_seconds_sum 0.5025
skute_request_seconds_count 3
# HELP skute_requests_total Requests served.
# TYPE skute_requests_total counter
skute_requests_total{op=\"get\"} 3
skute_requests_total{op=\"put\"} 1
";
        assert_eq!(r.render(), expected);
    }

    #[test]
    fn json_snapshot_round_trips_values() {
        let r = Registry::new();
        r.counter("skute_epochs_total", "Epochs.").add(60);
        let h = r.histogram("skute_w", "w \"quoted\"", &[1.0]);
        h.observe(0.5);
        let json = r.render_json();
        assert!(json.contains("\"name\":\"skute_epochs_total\""));
        assert!(json.contains("\"value\":60"));
        assert!(json.contains("\"buckets\":[[1,1],[\"+Inf\",1]]"));
        assert!(json.contains("\"sum\":0.5"));
        // Label/help escaping stays valid JSON.
        assert!(!json.contains("w \"quoted\""));
    }

    #[test]
    fn escaping() {
        let r = Registry::new();
        r.counter_with("skute_esc_total", "line\nbreak", &[("tag", "a\"b\\c\nd")])
            .inc();
        let text = r.render();
        assert!(text.contains("# HELP skute_esc_total line\\nbreak"));
        assert!(text.contains("tag=\"a\\\"b\\\\c\\nd\""));
    }
}
