//! Strategy evaluation: availability, cost and failure survival.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use skute_cluster::{Board, Capacities, Cluster, ServerId, ServerSpec};
use skute_core::{availability_of, PlacementContext, PlacementStrategy};
use skute_economy::{EconomyConfig, RentModel};
use skute_geo::Topology;

/// Owns everything a [`PlacementContext`] borrows.
#[derive(Debug, Clone)]
pub struct CtxFixture {
    /// Physical servers.
    pub cluster: Cluster,
    /// Posted rents.
    pub board: Board,
    /// Geographic layout.
    pub topology: Topology,
    /// Economy tunables.
    pub economy: EconomyConfig,
}

impl CtxFixture {
    /// The paper's cluster (200 servers, 70% at $100 / 30% at $125) with
    /// bootstrap rents posted.
    pub fn paper() -> Self {
        let topology = Topology::paper();
        let cluster = Cluster::from_topology(&topology, |i, location| ServerSpec {
            location,
            capacities: Capacities::paper(4 << 30, 3000.0),
            monthly_cost: if i % 10 < 7 { 100.0 } else { 125.0 },
            confidence: 1.0,
        });
        let economy = EconomyConfig::paper();
        let rent_model = RentModel::new(economy.alpha, economy.beta);
        let mut board = Board::new();
        board.begin_epoch(1);
        for s in cluster.alive() {
            board.post(s.id, rent_model.price_server(s));
        }
        Self {
            cluster,
            board,
            topology,
            economy,
        }
    }

    /// Borrows the fixture as a placement context.
    pub fn ctx(&self) -> PlacementContext<'_> {
        PlacementContext {
            cluster: &self.cluster,
            board: &self.board,
            topology: &self.topology,
            economy: &self.economy,
        }
    }
}

/// Parameters of one strategy evaluation.
#[derive(Debug, Clone, Copy)]
pub struct EvaluationConfig {
    /// Number of partitions to place.
    pub partitions: usize,
    /// Replicas per partition.
    pub replicas: usize,
    /// SLA availability threshold (eq. 2 units).
    pub threshold: f64,
    /// Servers failed per trial (the paper's §III-C bursts fail 20).
    pub failures: usize,
    /// Number of independent failure trials.
    pub trials: usize,
    /// Seed shared across strategies so they see identical anchors and
    /// failure bursts.
    pub seed: u64,
}

impl EvaluationConfig {
    /// A paper-like default: 200 partitions × 3 replicas, threshold
    /// calibrated for k = 3, 20-server failure bursts, 20 trials.
    pub fn paper(topology: &Topology) -> Self {
        Self {
            partitions: 200,
            replicas: 3,
            threshold: skute_core::threshold_for_replicas(topology, 3, 0.2),
            failures: 20,
            trials: 20,
            seed: 0xBA5E,
        }
    }
}

/// Aggregate outcome of evaluating one strategy.
#[derive(Debug, Clone)]
pub struct StrategyOutcome {
    /// Strategy name.
    pub name: &'static str,
    /// Mean eq.-(2) availability over partitions (before failures).
    pub mean_availability: f64,
    /// Fraction of partitions meeting the threshold (before failures).
    pub sla_satisfied_frac: f64,
    /// Mean posted rent of the chosen replica servers (cost proxy).
    pub mean_rent: f64,
    /// Mean fraction of partitions still meeting the threshold after a
    /// failure burst (over trials).
    pub surviving_sla_frac: f64,
    /// Mean fraction of partitions losing *all* replicas in a burst.
    pub lost_partition_frac: f64,
}

/// Places `cfg.partitions` partitions with `strategy` and measures
/// availability, rent and failure survival. The first replica of each
/// partition is anchored on a seeded-random server (identical across
/// strategies); the strategy chooses every subsequent replica.
pub fn evaluate(
    strategy: &mut dyn PlacementStrategy,
    fixture: &CtxFixture,
    cfg: &EvaluationConfig,
) -> StrategyOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let alive = fixture.cluster.alive_ids();
    assert!(!alive.is_empty(), "fixture cluster is empty");
    let ctx = fixture.ctx();
    // Place.
    let mut placements: Vec<Vec<ServerId>> = Vec::with_capacity(cfg.partitions);
    for _ in 0..cfg.partitions {
        let mut replicas = vec![alive[rng.gen_range(0..alive.len())]];
        while replicas.len() < cfg.replicas {
            match strategy.place_replica(&ctx, &replicas, 0, &[]) {
                Some(id) => replicas.push(id),
                None => break,
            }
        }
        placements.push(replicas);
    }
    // Availability and rent before failures.
    let mut avail_sum = 0.0;
    let mut satisfied = 0usize;
    let mut rent_sum = 0.0;
    let mut rent_count = 0usize;
    for replicas in &placements {
        let placed: Vec<_> = replicas
            .iter()
            .filter_map(|id| fixture.cluster.get(*id).map(|s| (s.location, s.confidence)))
            .collect();
        let a = availability_of(&placed);
        avail_sum += a;
        if a >= cfg.threshold {
            satisfied += 1;
        }
        for id in replicas {
            if let Some(p) = fixture.board.price_of(*id) {
                rent_sum += p;
                rent_count += 1;
            }
        }
    }
    // Failure trials.
    let mut surviving_sum = 0.0;
    let mut lost_sum = 0.0;
    for trial in 0..cfg.trials {
        let mut trial_rng = StdRng::seed_from_u64(cfg.seed ^ ((trial as u64 + 1) * 0x9E37_79B9));
        let mut pool = alive.clone();
        pool.shuffle(&mut trial_rng);
        let dead: Vec<ServerId> = pool.into_iter().take(cfg.failures).collect();
        let mut surviving = 0usize;
        let mut lost = 0usize;
        for replicas in &placements {
            let alive_replicas: Vec<_> = replicas
                .iter()
                .filter(|id| !dead.contains(id))
                .filter_map(|id| fixture.cluster.get(*id).map(|s| (s.location, s.confidence)))
                .collect();
            if alive_replicas.is_empty() {
                lost += 1;
            } else if availability_of(&alive_replicas) >= cfg.threshold {
                surviving += 1;
            }
        }
        surviving_sum += surviving as f64 / cfg.partitions as f64;
        lost_sum += lost as f64 / cfg.partitions as f64;
    }
    StrategyOutcome {
        name: strategy.name(),
        mean_availability: avail_sum / cfg.partitions as f64,
        sla_satisfied_frac: satisfied as f64 / cfg.partitions as f64,
        mean_rent: if rent_count == 0 {
            0.0
        } else {
            rent_sum / rent_count as f64
        },
        surviving_sla_frac: surviving_sum / cfg.trials as f64,
        lost_partition_frac: lost_sum / cfg.trials as f64,
    }
}

/// Shared fixtures for the strategy unit tests.
pub mod test_support {
    use super::CtxFixture;

    /// The paper cluster fixture used across strategy tests.
    pub fn small_ctx_fixture() -> CtxFixture {
        CtxFixture::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CheapestPlacement, MaxSpreadPlacement, RandomPlacement, SuccessorPlacement};
    use skute_core::placement::EconomicPlacement;

    fn quick_cfg(fixture: &CtxFixture) -> EvaluationConfig {
        let mut cfg = EvaluationConfig::paper(&fixture.topology);
        cfg.partitions = 60;
        cfg.trials = 8;
        cfg
    }

    #[test]
    fn spread_beats_successor_on_availability() {
        let fixture = CtxFixture::paper();
        let cfg = quick_cfg(&fixture);
        let spread = evaluate(&mut MaxSpreadPlacement::default(), &fixture, &cfg);
        let successor = evaluate(&mut SuccessorPlacement, &fixture, &cfg);
        assert!(
            spread.mean_availability > 2.0 * successor.mean_availability,
            "spread {} vs successor {}",
            spread.mean_availability,
            successor.mean_availability
        );
        assert!(spread.sla_satisfied_frac > successor.sla_satisfied_frac);
    }

    #[test]
    fn economic_matches_spread_availability_at_lower_rent() {
        let fixture = CtxFixture::paper();
        let cfg = quick_cfg(&fixture);
        let economic = evaluate(&mut EconomicPlacement, &fixture, &cfg);
        let spread = evaluate(&mut MaxSpreadPlacement::default(), &fixture, &cfg);
        assert!(
            economic.sla_satisfied_frac >= 0.99,
            "{}",
            economic.sla_satisfied_frac
        );
        assert!(
            economic.mean_rent <= spread.mean_rent + 1e-9,
            "economic {} vs spread {}",
            economic.mean_rent,
            spread.mean_rent
        );
    }

    #[test]
    fn cheapest_minimizes_rent_but_fails_sla() {
        let fixture = CtxFixture::paper();
        let cfg = quick_cfg(&fixture);
        let cheapest = evaluate(&mut CheapestPlacement::default(), &fixture, &cfg);
        let economic = evaluate(&mut EconomicPlacement, &fixture, &cfg);
        assert!(cheapest.mean_rent <= economic.mean_rent + 1e-9);
    }

    #[test]
    fn survival_orders_geography_aware_above_blind() {
        let fixture = CtxFixture::paper();
        let cfg = quick_cfg(&fixture);
        let economic = evaluate(&mut EconomicPlacement, &fixture, &cfg);
        let successor = evaluate(&mut SuccessorPlacement, &fixture, &cfg);
        assert!(
            economic.surviving_sla_frac > successor.surviving_sla_frac,
            "economic {} vs successor {}",
            economic.surviving_sla_frac,
            successor.surviving_sla_frac
        );
    }

    #[test]
    fn random_is_between_extremes() {
        let fixture = CtxFixture::paper();
        let cfg = quick_cfg(&fixture);
        let random = evaluate(&mut RandomPlacement::new(3), &fixture, &cfg);
        let spread = evaluate(&mut MaxSpreadPlacement::default(), &fixture, &cfg);
        let successor = evaluate(&mut SuccessorPlacement, &fixture, &cfg);
        assert!(random.mean_availability <= spread.mean_availability);
        assert!(random.mean_availability >= successor.mean_availability);
    }

    #[test]
    fn evaluation_is_deterministic() {
        let fixture = CtxFixture::paper();
        let cfg = quick_cfg(&fixture);
        let a = evaluate(&mut SuccessorPlacement, &fixture, &cfg);
        let b = evaluate(&mut SuccessorPlacement, &fixture, &cfg);
        assert_eq!(a.mean_availability, b.mean_availability);
        assert_eq!(a.surviving_sla_frac, b.surviving_sla_frac);
    }
}
