//! Pure-diversity placement: maximize geographic spread, ignore cost.

use skute_cluster::ServerId;
use skute_core::{PlacementContext, PlacementStrategy};
use skute_economy::RegionQueries;
use skute_geo::diversity;

/// Picks the feasible server maximizing the summed diversity to the
/// existing replicas, ignoring rent entirely — the availability-at-any-cost
/// corner. Ties break on the lower server id for determinism.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxSpreadPlacement;

impl PlacementStrategy for MaxSpreadPlacement {
    fn name(&self) -> &'static str {
        "max-spread"
    }

    fn place_replica(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
        _region_queries: &[RegionQueries],
    ) -> Option<ServerId> {
        let existing_locations: Vec<_> = existing
            .iter()
            .filter_map(|id| ctx.cluster.get(*id).map(|s| s.location))
            .collect();
        ctx.cluster
            .alive()
            .filter(|s| !existing.contains(&s.id) && s.storage_free() >= partition_size)
            .map(|s| {
                let gain: u32 = existing_locations
                    .iter()
                    .map(|l| u32::from(diversity(l, &s.location)))
                    .sum();
                (s.id, gain)
            })
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::test_support::small_ctx_fixture;
    use skute_core::availability_of;

    #[test]
    fn spread_reaches_greedy_max_availability() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut strategy = MaxSpreadPlacement;
        let mut existing = vec![ServerId(0)];
        for _ in 0..2 {
            let pick = strategy.place_replica(&ctx, &existing, 0, &[]).unwrap();
            existing.push(pick);
        }
        let placed: Vec<_> = existing
            .iter()
            .map(|id| (ctx.cluster.get(*id).unwrap().location, 1.0))
            .collect();
        // Three replicas spread greedily: every pair on distinct continents.
        assert_eq!(availability_of(&placed), 3.0 * 63.0);
    }

    #[test]
    fn spread_ignores_price() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut strategy = MaxSpreadPlacement;
        // From server 0, countless cross-continent candidates exist; the
        // strategy must not systematically prefer cheap ones (ties break on
        // id, and id 0's first cross-continent successor wins regardless of
        // cost class).
        let pick = strategy
            .place_replica(&ctx, &[ServerId(0)], 0, &[])
            .unwrap();
        let a = ctx.cluster.get(ServerId(0)).unwrap().location;
        let b = ctx.cluster.get(pick).unwrap().location;
        assert_ne!(a.continent, b.continent);
    }

    #[test]
    fn spread_with_no_existing_replicas_picks_lowest_id() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut strategy = MaxSpreadPlacement;
        assert_eq!(
            strategy.place_replica(&ctx, &[], 0, &[]),
            Some(ServerId(0)),
            "zero gain everywhere, deterministic tie-break"
        );
    }
}
