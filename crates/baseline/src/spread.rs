//! Pure-diversity placement: maximize geographic spread, ignore cost.

use skute_cluster::ServerId;
use skute_core::{PlacementContext, PlacementIndex, PlacementStrategy};
use skute_economy::RegionQueries;
use skute_geo::diversity;

/// Picks the feasible server maximizing the summed diversity to the
/// existing replicas, ignoring rent entirely — the availability-at-any-cost
/// corner. Ties break on the lower server id for determinism.
///
/// Runs over [`PlacementIndex`] continent buckets, pruning whole buckets
/// whose diversity upper bound cannot beat the best gain found, as long as
/// every alive server is posted on the board (the index's candidate set);
/// a partially posted board falls back to the full scan so the strategy's
/// candidate set never silently shrinks. [`MaxSpreadPlacement::scan`]
/// keeps the full-scan implementation as the equivalence oracle.
#[derive(Debug, Clone, Default)]
pub struct MaxSpreadPlacement {
    index: PlacementIndex,
    /// Memoized all-alive-servers-posted answer, stamped by
    /// `(cluster.version, board.version)` — the check is an O(n) scan and
    /// its inputs only change when a version bumps.
    all_posted: Option<((u64, u64), bool)>,
}

impl MaxSpreadPlacement {
    /// The full `cluster.alive()` scan the bucket walk replaced; kept as
    /// the equivalence oracle (and the fallback for partially posted
    /// boards).
    pub fn scan(
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
    ) -> Option<ServerId> {
        let existing_locations: Vec<_> = existing
            .iter()
            .filter_map(|id| ctx.cluster.get(*id).map(|s| s.location))
            .collect();
        ctx.cluster
            .alive()
            .filter(|s| !existing.contains(&s.id) && s.storage_free() >= partition_size)
            .map(|s| {
                let gain: u32 = existing_locations
                    .iter()
                    .map(|l| u32::from(diversity(l, &s.location)))
                    .sum();
                (s.id, gain)
            })
            .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)))
            .map(|(id, _)| id)
    }
}

impl PlacementStrategy for MaxSpreadPlacement {
    fn name(&self) -> &'static str {
        "max-spread"
    }

    fn place_replica(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
        _region_queries: &[RegionQueries],
    ) -> Option<ServerId> {
        // The index only sees board-posted servers, but this policy
        // ignores rent: any alive server without a posting (a count
        // comparison is not enough — stale postings for retired servers
        // can mask one) falls back to the full scan so the candidate set
        // never shrinks. The subset check is memoized per version pair so
        // repeated placements pay two u64 compares, not an O(n) scan.
        let stamp = (ctx.cluster.version(), ctx.board.version());
        let all_posted = match self.all_posted {
            Some((at, answer)) if at == stamp => answer,
            _ => {
                let answer = ctx
                    .cluster
                    .alive()
                    .all(|s| ctx.board.price_of(s.id).is_some());
                self.all_posted = Some((stamp, answer));
                answer
            }
        };
        if !all_posted {
            return Self::scan(ctx, existing, partition_size);
        }
        self.index.max_spread(ctx, existing, partition_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::test_support::small_ctx_fixture;
    use skute_core::availability_of;

    #[test]
    fn spread_reaches_greedy_max_availability() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut strategy = MaxSpreadPlacement::default();
        let mut existing = vec![ServerId(0)];
        for _ in 0..2 {
            let pick = strategy.place_replica(&ctx, &existing, 0, &[]).unwrap();
            existing.push(pick);
        }
        let placed: Vec<_> = existing
            .iter()
            .map(|id| (ctx.cluster.get(*id).unwrap().location, 1.0))
            .collect();
        // Three replicas spread greedily: every pair on distinct continents.
        assert_eq!(availability_of(&placed), 3.0 * 63.0);
    }

    #[test]
    fn spread_ignores_price() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut strategy = MaxSpreadPlacement::default();
        // From server 0, countless cross-continent candidates exist; the
        // strategy must not systematically prefer cheap ones (ties break on
        // id, and id 0's first cross-continent successor wins regardless of
        // cost class).
        let pick = strategy
            .place_replica(&ctx, &[ServerId(0)], 0, &[])
            .unwrap();
        let a = ctx.cluster.get(ServerId(0)).unwrap().location;
        let b = ctx.cluster.get(pick).unwrap().location;
        assert_ne!(a.continent, b.continent);
    }

    #[test]
    fn spread_with_no_existing_replicas_picks_lowest_id() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut strategy = MaxSpreadPlacement::default();
        assert_eq!(
            strategy.place_replica(&ctx, &[], 0, &[]),
            Some(ServerId(0)),
            "zero gain everywhere, deterministic tie-break"
        );
    }

    #[test]
    fn bucket_walk_matches_scan_oracle() {
        let mut fixture = small_ctx_fixture();
        for i in [12u32, 31, 155] {
            let s = fixture.cluster.get_mut(ServerId(i)).unwrap();
            let caps = s.capacities;
            assert!(s.usage.reserve_storage(&caps, 3 << 30));
        }
        let ctx = fixture.ctx();
        let mut strategy = MaxSpreadPlacement::default();
        for existing in [
            vec![],
            vec![ServerId(0)],
            vec![ServerId(0), ServerId(45), ServerId(90), ServerId(135)],
        ] {
            for size in [0u64, 2 << 30] {
                assert_eq!(
                    strategy.place_replica(&ctx, &existing, size, &[]),
                    MaxSpreadPlacement::scan(&ctx, &existing, size),
                    "existing {existing:?} size {size}"
                );
            }
        }
    }

    #[test]
    fn partially_posted_board_falls_back_to_scan() {
        let mut fixture = small_ctx_fixture();
        fixture.board.withdraw(ServerId(100));
        let ctx = fixture.ctx();
        let mut strategy = MaxSpreadPlacement::default();
        // The withdrawn server is invisible to the index but this policy
        // ignores rent: the fallback keeps it in the candidate set and the
        // result equals the oracle scan.
        for existing in [vec![], vec![ServerId(0), ServerId(50)]] {
            assert_eq!(
                strategy.place_replica(&ctx, &existing, 0, &[]),
                MaxSpreadPlacement::scan(&ctx, &existing, 0),
            );
        }
    }

    #[test]
    fn stale_posting_for_dead_server_does_not_mask_unposted_alive_one() {
        // Retire a server but leave its posting on the board, and withdraw
        // one alive server's posting: the counts match
        // (board.len() == alive_count), but the candidate sets differ.
        // The subset check must still take the scan path so the unposted
        // alive server stays eligible.
        let mut fixture = small_ctx_fixture();
        fixture.cluster.retire(ServerId(40), 1); // posting stays behind
        fixture.board.withdraw(ServerId(120));
        assert_eq!(
            fixture.board.len(),
            fixture.cluster.alive_count(),
            "the fixture must defeat a pure count comparison"
        );
        // Make the unposted server 120 the *unique* feasible candidate:
        // every other continent hosts an existing replica, and every other
        // server on 120's continent has its storage filled.
        let c120 = fixture
            .cluster
            .get(ServerId(120))
            .unwrap()
            .location
            .continent;
        let full: Vec<ServerId> = fixture
            .cluster
            .alive()
            .filter(|s| s.location.continent == c120 && s.id != ServerId(120))
            .map(|s| s.id)
            .collect();
        for id in full {
            let s = fixture.cluster.get_mut(id).unwrap();
            let caps = s.capacities;
            let free = s.storage_free();
            assert!(s.usage.reserve_storage(&caps, free));
        }
        let ctx = fixture.ctx();
        let existing: Vec<ServerId> = ctx
            .cluster
            .alive()
            .filter(|s| s.location.continent != c120)
            .map(|s| s.id)
            .collect();
        let mut strategy = MaxSpreadPlacement::default();
        let scan = MaxSpreadPlacement::scan(&ctx, &existing, 1);
        assert_eq!(scan, Some(ServerId(120)), "only 120 has room");
        assert_eq!(strategy.place_replica(&ctx, &existing, 1, &[]), scan);
    }
}
