//! # skute-baseline
//!
//! Baseline replica-placement policies used to contextualize Skute's
//! economic placement (eq. 3). The paper compares against the design space
//! of its references — economic placement without geography \[3, 4\] and
//! Dynamo-style successor-list placement \[5\] — so this crate implements the
//! four natural corners of that space behind the
//! [`skute_core::PlacementStrategy`] interface:
//!
//! * [`RandomPlacement`] — uniform random alive server,
//! * [`SuccessorPlacement`] — Dynamo-style: the next servers in id order
//!   (geography-blind, deterministic),
//! * [`CheapestPlacement`] — pure cost minimization (rent-greedy, the
//!   economic-only corner),
//! * [`MaxSpreadPlacement`] — pure geographic diversity, cost-blind.
//!
//! [`harness`] evaluates any strategy on availability, cost and failure
//! survival so the `table_baselines` bench can print a comparison table.

#![warn(missing_docs)]

pub mod cheapest;
pub mod harness;
pub mod random;
pub mod spread;
pub mod successor;

pub use cheapest::CheapestPlacement;
pub use harness::{evaluate, CtxFixture, EvaluationConfig, StrategyOutcome};
pub use random::RandomPlacement;
pub use spread::MaxSpreadPlacement;
pub use successor::SuccessorPlacement;
