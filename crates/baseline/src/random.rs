//! Uniform random placement.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use skute_cluster::ServerId;
use skute_core::{PlacementContext, PlacementStrategy};
use skute_economy::RegionQueries;

/// Places each replica on a uniformly random feasible server: the
/// availability-agnostic, cost-agnostic null hypothesis.
#[derive(Debug, Clone)]
pub struct RandomPlacement {
    rng: StdRng,
}

impl RandomPlacement {
    /// A seeded random strategy (deterministic per seed).
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl PlacementStrategy for RandomPlacement {
    fn name(&self) -> &'static str {
        "random"
    }

    fn place_replica(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
        _region_queries: &[RegionQueries],
    ) -> Option<ServerId> {
        let candidates: Vec<ServerId> = ctx
            .cluster
            .alive()
            .filter(|s| !existing.contains(&s.id) && s.storage_free() >= partition_size)
            .map(|s| s.id)
            .collect();
        candidates.choose(&mut self.rng).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::test_support::small_ctx_fixture;

    #[test]
    fn random_picks_feasible_servers() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut strategy = RandomPlacement::new(1);
        let existing = vec![ServerId(0)];
        for _ in 0..32 {
            let pick = strategy.place_replica(&ctx, &existing, 0, &[]).unwrap();
            assert_ne!(pick, ServerId(0), "existing replicas excluded");
            assert!(ctx.cluster.get_alive(pick).is_some());
        }
    }

    #[test]
    fn random_is_seed_deterministic() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let picks = |seed| {
            let mut s = RandomPlacement::new(seed);
            (0..8)
                .map(|_| s.place_replica(&ctx, &[], 0, &[]).unwrap())
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(9), picks(9));
    }

    #[test]
    fn random_returns_none_when_cluster_is_full() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut strategy = RandomPlacement::new(1);
        assert!(strategy.place_replica(&ctx, &[], u64::MAX, &[]).is_none());
        assert_eq!(strategy.name(), "random");
    }
}
