//! Dynamo-style successor-list placement.

use skute_cluster::ServerId;
use skute_core::{PlacementContext, PlacementStrategy};
use skute_economy::RegionQueries;

/// Places replicas on the next alive servers in id order after the first
/// replica — the Dynamo/consistent-hashing successor list \[5\].
///
/// Commissioning order follows the physical layout (rack by rack), so
/// successive ids usually share a rack or room: this strategy reproduces the
/// geography-blindness the paper criticizes — a single rack or PDU failure
/// can take out a whole replica set.
#[derive(Debug, Clone, Copy, Default)]
pub struct SuccessorPlacement;

impl PlacementStrategy for SuccessorPlacement {
    fn name(&self) -> &'static str {
        "successor-list"
    }

    fn place_replica(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
        _region_queries: &[RegionQueries],
    ) -> Option<ServerId> {
        let total = ctx.cluster.len() as u32;
        if total == 0 {
            return None;
        }
        let anchor = existing.iter().map(|s| s.0).max().unwrap_or(0);
        // Walk forward (wrapping) from the highest existing id.
        for offset in 1..=total {
            let candidate = ServerId((anchor + offset) % total);
            if existing.contains(&candidate) {
                continue;
            }
            if let Some(s) = ctx.cluster.get_alive(candidate) {
                if s.storage_free() >= partition_size {
                    return Some(candidate);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::test_support::small_ctx_fixture;
    use skute_geo::diversity;

    #[test]
    fn successors_are_consecutive_ids() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut strategy = SuccessorPlacement;
        let mut existing = vec![ServerId(10)];
        for expect in [11u32, 12, 13] {
            let pick = strategy.place_replica(&ctx, &existing, 0, &[]).unwrap();
            assert_eq!(pick, ServerId(expect));
            existing.push(pick);
        }
    }

    #[test]
    fn successor_wraps_around() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let n = ctx.cluster.len() as u32;
        let mut strategy = SuccessorPlacement;
        let pick = strategy
            .place_replica(&ctx, &[ServerId(n - 1)], 0, &[])
            .unwrap();
        assert_eq!(pick, ServerId(0));
    }

    #[test]
    fn successor_sets_are_geographically_clustered() {
        // The criticism the paper levels at [5]: consecutive servers share
        // racks, so the replica set has low diversity.
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut strategy = SuccessorPlacement;
        let a = ServerId(0);
        let b = strategy.place_replica(&ctx, &[a], 0, &[]).unwrap();
        let la = ctx.cluster.get(a).unwrap().location;
        let lb = ctx.cluster.get(b).unwrap().location;
        assert!(
            diversity(&la, &lb) <= 3,
            "successors land in the same rack/room, diversity = {}",
            diversity(&la, &lb)
        );
    }
}
