//! Rent-greedy placement: minimize cost, ignore geography.

use skute_cluster::ServerId;
use skute_core::{PlacementContext, PlacementIndex, PlacementStrategy};
use skute_economy::RegionQueries;

/// Always picks the cheapest feasible server by posted rent — the
/// economics-without-geography corner of the design space (the resource
/// managers of refs. [3, 4] optimize cost but "do not consider …
/// geographical distribution of replicas").
///
/// Runs over [`PlacementIndex`] bucket entries (posted price cached per
/// snapshot entry, dead/unposted servers never visited), so comparison
/// tables measure the *policy*, not the cost of re-scanning
/// `cluster.alive()` against the board per placement.
/// [`CheapestPlacement::scan`] keeps the full-scan implementation as the
/// equivalence oracle for the strategy's tests.
#[derive(Debug, Clone, Default)]
pub struct CheapestPlacement {
    index: PlacementIndex,
}

impl CheapestPlacement {
    /// The full `cluster.alive()` × board scan the index path replaced;
    /// kept as the equivalence oracle.
    pub fn scan(
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
    ) -> Option<ServerId> {
        ctx.cluster
            .alive()
            .filter(|s| !existing.contains(&s.id) && s.storage_free() >= partition_size)
            .filter_map(|s| ctx.board.price_of(s.id).map(|p| (s.id, p)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
            .map(|(id, _)| id)
    }
}

impl PlacementStrategy for CheapestPlacement {
    fn name(&self) -> &'static str {
        "cheapest"
    }

    fn place_replica(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
        _region_queries: &[RegionQueries],
    ) -> Option<ServerId> {
        self.index.cheapest_posted(ctx, existing, partition_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::test_support::small_ctx_fixture;

    #[test]
    fn cheapest_picks_lowest_rent() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut strategy = CheapestPlacement::default();
        let pick = strategy.place_replica(&ctx, &[], 0, &[]).unwrap();
        let rent = ctx.board.price_of(pick).unwrap();
        let min = ctx.board.min_price().unwrap();
        assert!((rent - min).abs() < 1e-12);
        assert_eq!(strategy.name(), "cheapest");
    }

    #[test]
    fn cheapest_skips_existing_and_full() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut strategy = CheapestPlacement::default();
        let first = strategy.place_replica(&ctx, &[], 0, &[]).unwrap();
        let second = strategy.place_replica(&ctx, &[first], 0, &[]).unwrap();
        assert_ne!(first, second);
        assert!(strategy.place_replica(&ctx, &[], u64::MAX, &[]).is_none());
    }

    #[test]
    fn cheapest_is_deterministic() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut a = CheapestPlacement::default();
        let mut b = CheapestPlacement::default();
        assert_eq!(
            a.place_replica(&ctx, &[], 0, &[]),
            b.place_replica(&ctx, &[], 0, &[])
        );
    }

    #[test]
    fn index_path_matches_scan_oracle() {
        let mut fixture = small_ctx_fixture();
        // Differentiate free space and withdraw a posting so feasibility
        // filtering and the posted-only candidate set are both exercised.
        for i in [3u32, 8, 77] {
            let s = fixture.cluster.get_mut(ServerId(i)).unwrap();
            let caps = s.capacities;
            assert!(s.usage.reserve_storage(&caps, 3 << 30));
        }
        fixture.board.withdraw(ServerId(0));
        let ctx = fixture.ctx();
        let mut strategy = CheapestPlacement::default();
        for existing in [vec![], vec![ServerId(1)], vec![ServerId(1), ServerId(140)]] {
            for size in [0u64, 2 << 30, u64::MAX] {
                assert_eq!(
                    strategy.place_replica(&ctx, &existing, size, &[]),
                    CheapestPlacement::scan(&ctx, &existing, size),
                    "existing {existing:?} size {size}"
                );
            }
        }
    }
}
