//! Rent-greedy placement: minimize cost, ignore geography.

use skute_cluster::ServerId;
use skute_core::{PlacementContext, PlacementStrategy};
use skute_economy::RegionQueries;

/// Always picks the cheapest feasible server by posted rent — the
/// economics-without-geography corner of the design space (the resource
/// managers of refs. [3, 4] optimize cost but "do not consider …
/// geographical distribution of replicas").
#[derive(Debug, Clone, Copy, Default)]
pub struct CheapestPlacement;

impl PlacementStrategy for CheapestPlacement {
    fn name(&self) -> &'static str {
        "cheapest"
    }

    fn place_replica(
        &mut self,
        ctx: &PlacementContext<'_>,
        existing: &[ServerId],
        partition_size: u64,
        _region_queries: &[RegionQueries],
    ) -> Option<ServerId> {
        ctx.cluster
            .alive()
            .filter(|s| !existing.contains(&s.id) && s.storage_free() >= partition_size)
            .filter_map(|s| ctx.board.price_of(s.id).map(|p| (s.id, p)))
            .min_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)))
            .map(|(id, _)| id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::test_support::small_ctx_fixture;

    #[test]
    fn cheapest_picks_lowest_rent() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut strategy = CheapestPlacement;
        let pick = strategy.place_replica(&ctx, &[], 0, &[]).unwrap();
        let rent = ctx.board.price_of(pick).unwrap();
        let min = ctx.board.min_price().unwrap();
        assert!((rent - min).abs() < 1e-12);
        assert_eq!(strategy.name(), "cheapest");
    }

    #[test]
    fn cheapest_skips_existing_and_full() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut strategy = CheapestPlacement;
        let first = strategy.place_replica(&ctx, &[], 0, &[]).unwrap();
        let second = strategy.place_replica(&ctx, &[first], 0, &[]).unwrap();
        assert_ne!(first, second);
        assert!(strategy.place_replica(&ctx, &[], u64::MAX, &[]).is_none());
    }

    #[test]
    fn cheapest_is_deterministic() {
        let fixture = small_ctx_fixture();
        let ctx = fixture.ctx();
        let mut a = CheapestPlacement;
        let mut b = CheapestPlacement;
        assert_eq!(
            a.place_replica(&ctx, &[], 0, &[]),
            b.place_replica(&ctx, &[], 0, &[])
        );
    }
}
