//! # skute-store
//!
//! The key-value storage substrate of Skute: versioned records, pluggable
//! per-replica storage engines with byte accounting, and Dynamo-style
//! quorum read/write helpers.
//!
//! The paper builds on a Dynamo-like design (§I, ref. \[5\]): data is
//! identified by keys, partitions hold key ranges, replicas of a partition
//! each hold a full copy. Skute's contribution is *where replicas live*, not
//! a new consistency protocol, so this crate keeps the storage model simple
//! and well-tested:
//!
//! * [`Version`] — totally ordered `(epoch, seq, writer)` stamps with
//!   last-writer-wins (LWW) merge,
//! * [`Record`] — a value or tombstone plus its version and a *logical size*
//!   (simulated payloads can weigh 500 KB for capacity accounting while
//!   carrying no actual bytes, which is how the saturation experiment of
//!   Fig. 5 scales on a laptop),
//! * [`StorageBackend`] — the trait boundary every per-replica engine
//!   fulfils: version-gated `apply`, point `get`, ordered iteration,
//!   ring-aware `split_off`/`absorb`, `flush`, and *two* byte-accounting
//!   hooks — `logical_bytes` (what the economic model prices; bit-identical
//!   across engines) and `physical_bytes` (what a transfer really moves),
//! * [`PartitionStore`] — the in-memory engine: the fast default and the
//!   bit-exact oracle (its physical footprint *is* its logical footprint),
//! * [`LsmStore`] — the durable engine: WAL append + replay, `BTreeMap`
//!   memtable, size-triggered SSTable flushes with sparse indexes, a
//!   newest-first leveled read path, and size-tiered compaction — with
//!   CRC32-checked records, torn-tail truncation on replay, and
//!   quarantine of unrecoverable corruption,
//! * [`faults`] — seeded, deterministic storage-fault injection
//!   ([`FaultPlan`] / [`FaultInjector`]): torn WAL tails, failed fsyncs,
//!   partial flushes, mid-copy aborts and transient read flips, all
//!   transient by construction and repaired by bounded retries,
//! * [`ReplicaStore`] — the enum-dispatched store a replica carries
//!   ([`BackendKind::Mem`] or [`BackendKind::Lsm`]), with explicit
//!   [`ReplicaStore::fork`] for replication that reports measured bytes,
//! * [`quorum`] — N/R/W arithmetic and response merging,
//! * [`SharedStore`] — a thread-safe wrapper generic over the backend
//!   ([`SharedPartitionStore`] is the in-memory alias),
//! * [`merkle`] — bucketed Merkle summaries for anti-entropy, buildable
//!   incrementally from any backend via [`MerkleBuilder`].

#![warn(missing_docs)]

pub mod backend;
pub mod engine;
pub mod error;
pub mod faults;
pub mod lsm;
pub mod merkle;
pub mod quorum;
pub mod value;

mod shared;

pub use backend::{AntiEntropyUnion, BackendKind, ReplicaStore, StorageBackend};
pub use engine::PartitionStore;
pub use error::StoreError;
pub use faults::{
    FaultInjector, FaultPlan, FaultPlanKind, FaultStats, GrayMode, GRAY_WINDOW_EPOCHS,
};
pub use lsm::{LsmStore, StorageActivity};
pub use merkle::{diff_buckets, MerkleBuilder, MerkleSummary};
pub use quorum::QuorumConfig;
pub use shared::{CowPartitionStore, SharedPartitionStore, SharedStore};
pub use value::{Record, Version};
