//! # skute-store
//!
//! The key-value storage substrate of Skute: versioned records, a
//! per-partition in-memory engine with byte accounting, and Dynamo-style
//! quorum read/write helpers.
//!
//! The paper builds on a Dynamo-like design (§I, ref. \[5\]): data is
//! identified by keys, partitions hold key ranges, replicas of a partition
//! each hold a full copy. Skute's contribution is *where replicas live*, not
//! a new consistency protocol, so this crate keeps the storage model simple
//! and well-tested:
//!
//! * [`Version`] — totally ordered `(epoch, seq, writer)` stamps with
//!   last-writer-wins (LWW) merge,
//! * [`Record`] — a value or tombstone plus its version and a *logical size*
//!   (simulated payloads can weigh 500 KB for capacity accounting while
//!   carrying no actual bytes, which is how the saturation experiment of
//!   Fig. 5 scales on a laptop),
//! * [`PartitionStore`] — an ordered in-memory store for one replica of one
//!   partition with precise size accounting and ring-aware splitting,
//! * [`quorum`] — N/R/W arithmetic and response merging,
//! * [`SharedPartitionStore`] — a thread-safe wrapper for concurrent use.

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod merkle;
pub mod quorum;
pub mod value;

mod shared;

pub use engine::PartitionStore;
pub use error::StoreError;
pub use merkle::{diff_buckets, MerkleSummary};
pub use quorum::QuorumConfig;
pub use shared::{CowPartitionStore, SharedPartitionStore};
pub use value::{Record, Version};
