//! Shared and copy-on-write wrappers around storage backends.

use std::ops::Deref;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::RwLock;

use crate::backend::StorageBackend;
use crate::engine::PartitionStore;
use crate::value::Record;

/// A copy-on-write handle to a [`PartitionStore`] with value semantics.
///
/// Cloning is an `Arc` bump; the first mutation after a clone
/// ([`CowPartitionStore::make_mut`]) detaches a private copy. This is the
/// storage type of replica stores: synchronizing replicas (anti-entropy
/// writebacks, replication transfers) shares one allocation instead of
/// deep-copying the store per replica, and replicas that still share an
/// allocation are trivially in sync ([`CowPartitionStore::shares_storage_with`]),
/// letting anti-entropy skip Merkle comparison entirely.
///
/// Reads go through `Deref`, so the full [`PartitionStore`] read API is
/// available directly on the handle.
#[derive(Debug, Clone, Default)]
pub struct CowPartitionStore {
    inner: Arc<PartitionStore>,
}

impl CowPartitionStore {
    /// A handle over an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps an existing store.
    pub fn from_store(store: PartitionStore) -> Self {
        Self {
            inner: Arc::new(store),
        }
    }

    /// Mutable access to the underlying store, detaching a private copy
    /// first if the allocation is shared with other handles.
    pub fn make_mut(&mut self) -> &mut PartitionStore {
        Arc::make_mut(&mut self.inner)
    }

    /// True when both handles point at the same allocation (and therefore
    /// hold byte-identical contents).
    pub fn shares_storage_with(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Deref for CowPartitionStore {
    type Target = PartitionStore;

    fn deref(&self) -> &PartitionStore {
        &self.inner
    }
}

/// A cheaply clonable, thread-safe handle to one replica's store, generic
/// over the [`StorageBackend`] it wraps.
///
/// Readers take a shared lock; writers an exclusive one. The handle exists
/// so that embedding applications can serve concurrent reads against the
/// same replica the simulation mutates between epochs — regardless of
/// whether the replica runs on the in-memory oracle or the durable LSM
/// engine.
#[derive(Debug)]
pub struct SharedStore<B: StorageBackend> {
    inner: Arc<RwLock<B>>,
}

// Manual impl: cloning bumps the Arc and must not require `B: Clone`
// (the LSM engine deliberately has no `Clone` — copies go through `fork`).
impl<B: StorageBackend> Clone for SharedStore<B> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

/// The historical name: a thread-safe handle over the in-memory engine.
pub type SharedPartitionStore = SharedStore<PartitionStore>;

impl<B: StorageBackend> Default for SharedStore<B> {
    fn default() -> Self {
        Self::new()
    }
}

impl<B: StorageBackend> SharedStore<B> {
    /// A handle over an empty store.
    pub fn new() -> Self {
        Self::from_store(B::open())
    }

    /// Wraps an existing store.
    pub fn from_store(store: B) -> Self {
        Self {
            inner: Arc::new(RwLock::new(store)),
        }
    }

    /// Applies a record (see [`StorageBackend::apply`]).
    pub fn apply(&self, key: impl Into<Bytes>, record: Record) -> bool {
        self.inner.write().apply(key.into(), record)
    }

    /// Clone of the record under `key`.
    pub fn get(&self, key: &[u8]) -> Option<Record> {
        self.inner.read().get(key)
    }

    /// Clone of the live value under `key`.
    pub fn get_value(&self, key: &[u8]) -> Option<Bytes> {
        self.inner.read().get_value(key)
    }

    /// Logical bytes stored.
    pub fn logical_bytes(&self) -> u64 {
        self.inner.read().logical_bytes()
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }

    /// Runs `f` with shared access to the underlying store.
    pub fn read_with<T>(&self, f: impl FnOnce(&B) -> T) -> T {
        f(&self.inner.read())
    }

    /// Runs `f` with exclusive access to the underlying store.
    pub fn write_with<T>(&self, f: impl FnOnce(&mut B) -> T) -> T {
        f(&mut self.inner.write())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Version;

    #[test]
    fn cow_clone_shares_until_written() {
        let mut a = CowPartitionStore::new();
        assert!(a
            .make_mut()
            .apply(&b"k"[..], Record::put(&b"v1"[..], Version::new(1, 0, 0))));
        let mut b = a.clone();
        assert!(a.shares_storage_with(&b));
        assert_eq!(b.get_value(b"k").unwrap().as_ref(), b"v1");
        // Writing through one handle detaches it; the other is untouched.
        assert!(b
            .make_mut()
            .apply(&b"k"[..], Record::put(&b"v2"[..], Version::new(2, 0, 0))));
        assert!(!a.shares_storage_with(&b));
        assert_eq!(a.get_value(b"k").unwrap().as_ref(), b"v1");
        assert_eq!(b.get_value(b"k").unwrap().as_ref(), b"v2");
    }

    #[test]
    fn cow_from_store_reads_through_deref() {
        let mut inner = PartitionStore::new();
        assert!(inner.apply(&b"a"[..], Record::put(&b"1"[..], Version::new(1, 0, 0))));
        let handle = CowPartitionStore::from_store(inner);
        assert_eq!(handle.len(), 1);
        assert_eq!(handle.logical_bytes(), 1 + 1);
        assert!(!handle.is_empty());
    }

    #[test]
    fn shared_roundtrip() {
        let s = SharedPartitionStore::new();
        assert!(s.apply(&b"k"[..], Record::put(&b"v"[..], Version::new(1, 0, 0))));
        assert_eq!(s.get_value(b"k").unwrap().as_ref(), b"v");
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
    }

    #[test]
    fn clones_share_state() {
        let a = SharedPartitionStore::new();
        let b = a.clone();
        assert!(a.apply(&b"k"[..], Record::put(&b"v"[..], Version::new(1, 0, 0))));
        assert_eq!(b.get_value(b"k").unwrap().as_ref(), b"v");
    }

    #[test]
    fn concurrent_writers_converge() {
        // Eight writers race on one key through the persistent worker pool
        // (one single-writer task each), all mutating the same shared
        // store handle concurrently through cloned handles.
        let store = SharedPartitionStore::new();
        let pool = skute_exec::WorkerPool::new(8);
        let handle = store.clone();
        pool.run_tasks((0..8u32).collect(), move |_, writer| {
            for seq in 0..100u64 {
                handle.apply(
                    &b"contended"[..],
                    Record::put(vec![writer as u8], Version::new(1, seq, writer)),
                );
            }
        });
        // LWW winner is the highest (epoch, seq, writer) = (1, 99, 7).
        let winner = store.get(b"contended").unwrap();
        assert_eq!(winner.version, Version::new(1, 99, 7));
        assert_eq!(winner.value.unwrap().as_ref(), &[7u8]);
    }

    #[test]
    fn shared_wrapper_is_backend_generic() {
        let s: SharedStore<crate::LsmStore> = SharedStore::new();
        assert!(s.apply(&b"k"[..], Record::put(&b"v"[..], Version::new(1, 0, 0))));
        assert_eq!(s.get_value(b"k").unwrap().as_ref(), b"v");
        assert_eq!(s.len(), 1);
        let b = s.clone();
        assert!(b.apply(&b"k2"[..], Record::put(&b"w"[..], Version::new(1, 1, 0))));
        assert_eq!(s.len(), 2, "clones share the same durable store");
    }

    #[test]
    fn with_accessors() {
        let s = SharedPartitionStore::from_store(PartitionStore::new());
        s.write_with(|st| {
            let _ = st.apply(&b"a"[..], Record::put(&b"1"[..], Version::new(1, 0, 0)));
        });
        let n = s.read_with(|st| st.len());
        assert_eq!(n, 1);
    }
}
