//! Versioned records with last-writer-wins semantics.

use bytes::Bytes;

/// A totally ordered version stamp.
///
/// Ordering is `(epoch, seq, writer)` lexicographically: the epoch counter
/// comes from the cloud's epoch clock, `seq` disambiguates writes within an
/// epoch, and `writer` (a coordinator id) breaks exact ties so that
/// concurrent replicas converge on the same winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Version {
    /// Epoch of the write.
    pub epoch: u64,
    /// Per-coordinator sequence number within the epoch.
    pub seq: u64,
    /// Id of the coordinating writer, as a total-order tiebreak.
    pub writer: u32,
}

impl Version {
    /// Builds a version stamp.
    pub const fn new(epoch: u64, seq: u64, writer: u32) -> Self {
        Self { epoch, seq, writer }
    }
}

/// A stored record: a value or a tombstone, its version, and the logical
/// number of bytes it occupies for capacity accounting.
///
/// `logical_size` defaults to the actual payload length but may be set
/// larger by simulated workloads: the engine's size accounting, the 256 MB
/// partition-split rule and the storage-saturation experiment all consume
/// logical bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// The payload; `None` is a tombstone (deleted key).
    pub value: Option<Bytes>,
    /// Version stamp of the write that produced this record.
    pub version: Version,
    /// Bytes this record counts for in capacity accounting.
    pub logical_size: u64,
}

impl Record {
    /// A live record whose logical size is the payload length.
    pub fn put(value: impl Into<Bytes>, version: Version) -> Self {
        let value = value.into();
        let logical_size = value.len() as u64;
        Self {
            value: Some(value),
            version,
            logical_size,
        }
    }

    /// A live record with an explicit logical size (synthetic payloads).
    pub fn put_sized(value: impl Into<Bytes>, version: Version, logical_size: u64) -> Self {
        Self {
            value: Some(value.into()),
            version,
            logical_size,
        }
    }

    /// A tombstone.
    pub fn tombstone(version: Version) -> Self {
        Self {
            value: None,
            version,
            logical_size: 0,
        }
    }

    /// True when the record is a tombstone.
    pub fn is_tombstone(&self) -> bool {
        self.value.is_none()
    }

    /// Last-writer-wins merge: the record with the higher version survives;
    /// on an exact version tie the records are identical by construction
    /// (same writer, same seq), so either is returned.
    pub fn merge(a: Record, b: Record) -> Record {
        if a.version >= b.version {
            a
        } else {
            b
        }
    }

    /// Merges an iterator of candidate records into the winning one.
    pub fn merge_all(records: impl IntoIterator<Item = Record>) -> Option<Record> {
        records.into_iter().reduce(Record::merge)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn version_order_is_epoch_then_seq_then_writer() {
        assert!(Version::new(2, 0, 0) > Version::new(1, 9, 9));
        assert!(Version::new(1, 2, 0) > Version::new(1, 1, 9));
        assert!(Version::new(1, 1, 2) > Version::new(1, 1, 1));
        assert_eq!(Version::new(1, 1, 1), Version::new(1, 1, 1));
    }

    #[test]
    fn put_uses_payload_length() {
        let r = Record::put(&b"hello"[..], Version::new(1, 0, 0));
        assert_eq!(r.logical_size, 5);
        assert!(!r.is_tombstone());
    }

    #[test]
    fn put_sized_decouples_logical_size() {
        let r = Record::put_sized(Bytes::new(), Version::new(1, 0, 0), 500 * 1024);
        assert_eq!(r.logical_size, 500 * 1024);
        assert_eq!(r.value.as_ref().unwrap().len(), 0);
    }

    #[test]
    fn tombstone_has_no_value_or_size() {
        let t = Record::tombstone(Version::new(3, 0, 0));
        assert!(t.is_tombstone());
        assert_eq!(t.logical_size, 0);
    }

    #[test]
    fn merge_picks_higher_version() {
        let old = Record::put(&b"old"[..], Version::new(1, 0, 0));
        let new = Record::put(&b"new"[..], Version::new(2, 0, 0));
        assert_eq!(Record::merge(old.clone(), new.clone()), new);
        assert_eq!(Record::merge(new.clone(), old), new);
    }

    #[test]
    fn tombstone_can_win_merge() {
        let live = Record::put(&b"v"[..], Version::new(1, 0, 0));
        let dead = Record::tombstone(Version::new(2, 0, 0));
        assert!(Record::merge(live, dead.clone()).is_tombstone());
        let _ = dead;
    }

    #[test]
    fn merge_all_empty_is_none() {
        assert_eq!(Record::merge_all(Vec::new()), None);
    }

    fn arb_version() -> impl Strategy<Value = Version> {
        (0u64..4, 0u64..4, 0u32..4).prop_map(|(e, s, w)| Version::new(e, s, w))
    }

    fn arb_record() -> impl Strategy<Value = Record> {
        (
            arb_version(),
            proptest::option::of(proptest::collection::vec(any::<u8>(), 0..8)),
        )
            .prop_map(|(v, payload)| match payload {
                Some(bytes) => Record::put(bytes, v),
                None => Record::tombstone(v),
            })
    }

    proptest! {
        #[test]
        fn prop_merge_commutative_on_winner_version(a in arb_record(), b in arb_record()) {
            let ab = Record::merge(a.clone(), b.clone());
            let ba = Record::merge(b, a);
            // With distinct versions the merge is fully commutative; on a
            // version tie both orders must at least agree on the version.
            prop_assert_eq!(ab.version, ba.version);
        }

        #[test]
        fn prop_merge_associative(a in arb_record(), b in arb_record(), c in arb_record()) {
            let left = Record::merge(Record::merge(a.clone(), b.clone()), c.clone());
            let right = Record::merge(a, Record::merge(b, c));
            prop_assert_eq!(left.version, right.version);
        }

        #[test]
        fn prop_merge_idempotent(a in arb_record()) {
            prop_assert_eq!(Record::merge(a.clone(), a.clone()), a);
        }

        #[test]
        fn prop_merge_all_returns_max_version(records in proptest::collection::vec(arb_record(), 1..8)) {
            let max = records.iter().map(|r| r.version).max().unwrap();
            let merged = Record::merge_all(records).unwrap();
            prop_assert_eq!(merged.version, max);
        }
    }
}
