//! The pluggable storage boundary: the [`StorageBackend`] trait, the
//! [`BackendKind`] selector, and [`ReplicaStore`] — the enum-dispatched
//! store every replica actually carries.
//!
//! Two engines implement the trait:
//!
//! * [`PartitionStore`] — the in-memory `BTreeMap` engine: the fast default
//!   and the bit-exact oracle. Its "physical" footprint *is* its logical
//!   footprint, which is exactly the oracle-parity contract: under the mem
//!   backend, measured transfer bytes equal the logical sizes the economic
//!   model always priced.
//! * [`LsmStore`](crate::LsmStore) — the durable WAL + memtable + SSTable
//!   engine. Its physical footprint is real file bytes, and replica
//!   transfers stream those bytes.
//!
//! Everything the simulation *decides* on — apply gating, logical byte
//! accounting, Merkle summaries — is bit-identical across backends, which
//! is what keeps `--backend lsm` runs byte-identical to the in-memory
//! default (CI compares them). Only durability and the *measured* transfer
//! counters differ.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use skute_ring::{KeyHasher, KeyRange};

use crate::engine::PartitionStore;
use crate::faults::{FaultPlan, FaultStats};
use crate::lsm::{LsmStore, StorageActivity};
use crate::merkle::{MerkleBuilder, MerkleSummary};
use crate::shared::CowPartitionStore;
use crate::value::Record;

/// Which storage engine a cloud's replicas run on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendKind {
    /// In-memory `BTreeMap` engine — fast default and bit-exact oracle.
    #[default]
    Mem,
    /// Durable log-structured engine (WAL + memtable + SSTables).
    Lsm,
}

impl BackendKind {
    /// Stable lowercase name (`mem` / `lsm`), as accepted by
    /// `skute-sim --backend`.
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Mem => "mem",
            BackendKind::Lsm => "lsm",
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "mem" => Ok(BackendKind::Mem),
            "lsm" => Ok(BackendKind::Lsm),
            other => Err(format!("unknown backend {other:?} (expected mem|lsm)")),
        }
    }
}

/// The contract a per-replica storage engine fulfils.
///
/// The logical side (apply gating, [`logical_bytes`], iteration order,
/// [`split_off`] arithmetic) must match [`PartitionStore`] bit-for-bit —
/// it feeds the economic model and the determinism matrix. The physical
/// side ([`physical_bytes`], [`flush`]) is each engine's own truth and
/// prices the real data-transfer term.
///
/// [`logical_bytes`]: StorageBackend::logical_bytes
/// [`split_off`]: StorageBackend::split_off
/// [`physical_bytes`]: StorageBackend::physical_bytes
/// [`flush`]: StorageBackend::flush
pub trait StorageBackend: Sized + Send + fmt::Debug {
    /// A fresh, empty store.
    fn open() -> Self;

    /// Applies `record` under `key` if its version dominates the stored
    /// one; returns `true` when the store changed.
    fn apply(&mut self, key: Bytes, record: Record) -> bool;

    /// The record stored under `key`, tombstones included.
    fn get(&self, key: &[u8]) -> Option<Record>;

    /// The live value under `key` (`None` for absent keys and tombstones).
    fn get_value(&self, key: &[u8]) -> Option<Bytes> {
        self.get(key).and_then(|r| r.value)
    }

    /// Number of keys (including tombstones).
    fn len(&self) -> usize;

    /// True when no keys are stored.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical bytes stored: `Σ (key length + logical record size)`.
    fn logical_bytes(&self) -> u64;

    /// Bytes a replica transfer physically moves. For the in-memory oracle
    /// this equals [`logical_bytes`](StorageBackend::logical_bytes); for
    /// durable engines it is real file bytes.
    fn physical_bytes(&self) -> u64;

    /// Visits every entry in key order.
    fn for_each(&self, f: &mut dyn FnMut(&Bytes, &Record));

    /// Moves every key whose ring token falls in `high` into a returned
    /// sibling store, conserving `logical_bytes` across the pair.
    fn split_off(&mut self, hasher: KeyHasher, high: KeyRange) -> Self;

    /// Merges `other` into `self`; version-dominant records win.
    fn absorb(&mut self, other: Self);

    /// Makes all accepted writes durable (no-op for volatile engines).
    fn flush(&mut self);

    /// Merkle summary of the stored entries over `range`.
    fn merkle_summary(&self, hasher: KeyHasher, range: KeyRange, buckets: usize) -> MerkleSummary {
        let mut builder = MerkleBuilder::new(hasher, range, buckets);
        self.for_each(&mut |key, record| builder.add(key, record));
        builder.finish()
    }

    /// Materializes the contents as an in-memory [`PartitionStore`].
    fn snapshot(&self) -> PartitionStore {
        let mut snap = PartitionStore::new();
        self.for_each(&mut |key, record| {
            let _ = snap.apply(key.clone(), record.clone());
        });
        snap
    }
}

impl StorageBackend for PartitionStore {
    fn open() -> Self {
        PartitionStore::new()
    }

    fn apply(&mut self, key: Bytes, record: Record) -> bool {
        PartitionStore::apply(self, key, record)
    }

    fn get(&self, key: &[u8]) -> Option<Record> {
        PartitionStore::get(self, key).cloned()
    }

    fn len(&self) -> usize {
        PartitionStore::len(self)
    }

    fn logical_bytes(&self) -> u64 {
        PartitionStore::logical_bytes(self)
    }

    /// Oracle parity: the in-memory engine "transfers" exactly its logical
    /// footprint, so measured and logical transfer bytes coincide.
    fn physical_bytes(&self) -> u64 {
        PartitionStore::logical_bytes(self)
    }

    fn for_each(&self, f: &mut dyn FnMut(&Bytes, &Record)) {
        for (key, record) in self.iter() {
            f(key, record);
        }
    }

    fn split_off(&mut self, hasher: KeyHasher, high: KeyRange) -> Self {
        PartitionStore::split_off(self, hasher, high)
    }

    fn absorb(&mut self, other: Self) {
        PartitionStore::absorb(self, other);
    }

    fn flush(&mut self) {}

    fn snapshot(&self) -> PartitionStore {
        self.clone()
    }
}

impl StorageBackend for LsmStore {
    fn open() -> Self {
        LsmStore::create()
    }

    fn apply(&mut self, key: Bytes, record: Record) -> bool {
        LsmStore::apply(self, key, record)
    }

    fn get(&self, key: &[u8]) -> Option<Record> {
        LsmStore::get(self, key)
    }

    fn len(&self) -> usize {
        LsmStore::len(self)
    }

    fn logical_bytes(&self) -> u64 {
        LsmStore::logical_bytes(self)
    }

    fn physical_bytes(&self) -> u64 {
        LsmStore::physical_bytes(self)
    }

    fn for_each(&self, f: &mut dyn FnMut(&Bytes, &Record)) {
        LsmStore::for_each(self, f);
    }

    fn split_off(&mut self, hasher: KeyHasher, high: KeyRange) -> Self {
        LsmStore::split_off(self, hasher, high)
    }

    fn absorb(&mut self, other: Self) {
        LsmStore::absorb(self, other);
    }

    fn flush(&mut self) {
        LsmStore::flush(self);
    }

    fn snapshot(&self) -> PartitionStore {
        LsmStore::snapshot(self)
    }
}

/// The store a replica actually carries: enum dispatch over the two
/// engines, so `Replica` stays object-safe, `Clone`able, and free of viral
/// generics.
///
/// `Clone` is cheap for both variants (an `Arc` bump) and **shares**
/// storage with the original — that is intentional and used only by
/// anti-entropy's converged fast path. Replication must go through
/// [`ReplicaStore::fork`], which produces an independent copy and reports
/// the bytes physically moved.
#[derive(Debug, Clone)]
pub enum ReplicaStore {
    /// Copy-on-write in-memory engine.
    Mem(CowPartitionStore),
    /// Durable LSM engine behind a mutex (point reads need file seeks).
    Lsm(Arc<Mutex<LsmStore>>),
}

impl Default for ReplicaStore {
    fn default() -> Self {
        ReplicaStore::Mem(CowPartitionStore::new())
    }
}

impl ReplicaStore {
    /// A fresh, empty store of the requested kind.
    pub fn open(kind: BackendKind) -> Self {
        Self::open_with(kind, FaultPlan::none())
    }

    /// A fresh, empty store of the requested kind, running under `plan`
    /// (the mem oracle has no IO path and ignores it).
    pub fn open_with(kind: BackendKind, plan: FaultPlan) -> Self {
        match kind {
            BackendKind::Mem => ReplicaStore::Mem(CowPartitionStore::new()),
            BackendKind::Lsm => {
                ReplicaStore::Lsm(Arc::new(Mutex::new(LsmStore::create_with(plan))))
            }
        }
    }

    /// Which engine this store runs on.
    pub fn kind(&self) -> BackendKind {
        match self {
            ReplicaStore::Mem(_) => BackendKind::Mem,
            ReplicaStore::Lsm(_) => BackendKind::Lsm,
        }
    }

    /// Version-gated write; returns `true` when the store changed.
    pub fn apply(&mut self, key: impl Into<Bytes>, record: Record) -> bool {
        match self {
            ReplicaStore::Mem(s) => s.make_mut().apply(key, record),
            ReplicaStore::Lsm(s) => s.lock().apply(key, record),
        }
    }

    /// The record stored under `key`, tombstones included.
    pub fn get(&self, key: &[u8]) -> Option<Record> {
        match self {
            ReplicaStore::Mem(s) => s.get(key).cloned(),
            ReplicaStore::Lsm(s) => s.lock().get(key),
        }
    }

    /// The live value under `key` (`None` for absent keys and tombstones).
    pub fn get_value(&self, key: &[u8]) -> Option<Bytes> {
        match self {
            ReplicaStore::Mem(s) => s.get_value(key).cloned(),
            ReplicaStore::Lsm(s) => s.lock().get_value(key),
        }
    }

    /// Number of keys (including tombstones).
    pub fn len(&self) -> usize {
        match self {
            ReplicaStore::Mem(s) => s.len(),
            ReplicaStore::Lsm(s) => s.lock().len(),
        }
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical bytes stored — identical across backends for the same
    /// write history; this is what the economic model prices and the CSV
    /// reports.
    pub fn logical_bytes(&self) -> u64 {
        match self {
            ReplicaStore::Mem(s) => s.logical_bytes(),
            ReplicaStore::Lsm(s) => s.lock().logical_bytes(),
        }
    }

    /// Bytes a transfer of this replica physically moves (logical bytes
    /// for the mem oracle, WAL + SSTable file bytes for the LSM engine).
    pub fn physical_bytes(&self) -> u64 {
        match self {
            ReplicaStore::Mem(s) => s.logical_bytes(),
            ReplicaStore::Lsm(s) => s.lock().physical_bytes(),
        }
    }

    /// True when both handles share the same underlying storage (the
    /// anti-entropy converged fast path).
    pub fn shares_storage_with(&self, other: &ReplicaStore) -> bool {
        match (self, other) {
            (ReplicaStore::Mem(a), ReplicaStore::Mem(b)) => a.shares_storage_with(b),
            (ReplicaStore::Lsm(a), ReplicaStore::Lsm(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Merkle summary of the stored entries over `range`.
    pub fn merkle_summary(
        &self,
        hasher: KeyHasher,
        range: KeyRange,
        buckets: usize,
    ) -> MerkleSummary {
        match self {
            ReplicaStore::Mem(s) => MerkleSummary::build(s, hasher, range, buckets),
            ReplicaStore::Lsm(s) => s.lock().merkle_summary(hasher, range, buckets),
        }
    }

    /// Materializes the contents as an in-memory [`PartitionStore`].
    pub fn snapshot(&self) -> PartitionStore {
        match self {
            ReplicaStore::Mem(s) => (**s).clone(),
            ReplicaStore::Lsm(s) => s.lock().snapshot(),
        }
    }

    /// Merges clones of this store's entries into `dst`.
    pub fn merge_into(&self, dst: &mut PartitionStore) {
        match self {
            ReplicaStore::Mem(s) => dst.merge_from(s),
            ReplicaStore::Lsm(s) => {
                s.lock().for_each(&mut |key, record| {
                    let _ = dst.apply(key.clone(), record.clone());
                });
            }
        }
    }

    /// Merges clones of an in-memory store's entries into `self`.
    pub fn merge_from(&mut self, src: &PartitionStore) {
        match self {
            ReplicaStore::Mem(s) => s.make_mut().merge_from(src),
            ReplicaStore::Lsm(s) => s.lock().merge_from(src),
        }
    }

    /// Merges `other` into `self`; version-dominant records win.
    pub fn absorb(&mut self, other: ReplicaStore) {
        match self {
            ReplicaStore::Mem(s) => other.merge_into(s.make_mut()),
            ReplicaStore::Lsm(s) => match other {
                ReplicaStore::Lsm(o) => match Arc::try_unwrap(o) {
                    Ok(m) => s.lock().absorb(m.into_inner()),
                    Err(shared) => {
                        let snap = shared.lock().snapshot();
                        s.lock().merge_from(&snap);
                    }
                },
                ReplicaStore::Mem(o) => s.lock().merge_from(&o),
            },
        }
    }

    /// Moves every key whose ring token falls in `high` into a returned
    /// sibling store of the same kind.
    pub fn split_off(&mut self, hasher: KeyHasher, high: KeyRange) -> ReplicaStore {
        match self {
            ReplicaStore::Mem(s) => {
                let high_store = s.make_mut().split_off(hasher, high);
                ReplicaStore::Mem(CowPartitionStore::from_store(high_store))
            }
            ReplicaStore::Lsm(s) => {
                let high_store = s.lock().split_off(hasher, high);
                ReplicaStore::Lsm(Arc::new(Mutex::new(high_store)))
            }
        }
    }

    /// An independent copy for replication, plus the physically measured
    /// bytes the copy moved — `None` for the mem oracle (the caller prices
    /// the transfer at the logical size, which is the same number).
    pub fn fork(&self) -> (ReplicaStore, Option<u64>) {
        match self {
            ReplicaStore::Mem(s) => (ReplicaStore::Mem(s.clone()), None),
            ReplicaStore::Lsm(s) => {
                let (forked, copied) = s.lock().fork();
                (
                    ReplicaStore::Lsm(Arc::new(Mutex::new(forked))),
                    Some(copied),
                )
            }
        }
    }

    /// Physically measured bytes a migration of this replica moves —
    /// `None` for the mem oracle (logical size applies).
    pub fn measured_transfer(&self) -> Option<u64> {
        match self {
            ReplicaStore::Mem(_) => None,
            ReplicaStore::Lsm(s) => Some(s.lock().physical_bytes()),
        }
    }

    /// Makes all accepted writes durable (no-op for the mem engine).
    pub fn flush(&mut self) {
        if let ReplicaStore::Lsm(s) = self {
            s.lock().flush();
        }
    }

    /// Re-verifies every on-disk checksum (a real scrub read on durable
    /// engines), quarantining the store on persistent corruption. Returns
    /// `true` when healthy; the mem oracle always is.
    pub fn verify(&mut self) -> bool {
        match self {
            ReplicaStore::Mem(_) => true,
            ReplicaStore::Lsm(s) => s.lock().verify(),
        }
    }

    /// True when unrecoverable corruption was detected; the replica must
    /// be re-seeded from a healthy peer.
    pub fn is_quarantined(&self) -> bool {
        match self {
            ReplicaStore::Mem(_) => false,
            ReplicaStore::Lsm(s) => s.lock().quarantined(),
        }
    }

    /// Counters of injected faults recovered from (`None` for the mem
    /// oracle, which has no IO path to fault).
    pub fn fault_stats(&self) -> Option<FaultStats> {
        match self {
            ReplicaStore::Mem(_) => None,
            ReplicaStore::Lsm(s) => Some(s.lock().fault_stats()),
        }
    }

    /// Cumulative engine-activity counters (`None` for the mem oracle,
    /// which has no WAL, flushes, or compactions). Observability only.
    pub fn activity(&self) -> Option<StorageActivity> {
        match self {
            ReplicaStore::Mem(_) => None,
            ReplicaStore::Lsm(s) => Some(s.lock().activity()),
        }
    }

    /// Visits every entry in key order (tombstones included).
    pub fn for_each(&self, f: &mut dyn FnMut(&Bytes, &Record)) {
        match self {
            ReplicaStore::Mem(s) => StorageBackend::for_each(&**s, f),
            ReplicaStore::Lsm(s) => s.lock().for_each(f),
        }
    }

    /// Deliberately corrupts the newest sorted run (the fault-injection
    /// helper forging persistent corruption); `false` for the mem oracle
    /// or a store without runs.
    pub fn corrupt_newest_run(&mut self) -> bool {
        match self {
            ReplicaStore::Mem(_) => false,
            ReplicaStore::Lsm(s) => s.lock().corrupt_newest_run(),
        }
    }
}

/// The converged union anti-entropy distributes back to divergent
/// replicas. For the mem backend it carries a shared COW handle, so all
/// repaired replicas end up sharing one allocation (the fast-path
/// invariant the next epoch's scan relies on); for the LSM backend each
/// replica merges the union's entries into its own durable state, and
/// convergence shows up as equal Merkle roots instead.
#[derive(Debug)]
pub enum AntiEntropyUnion {
    /// Shared COW handle, installed wholesale into mem replicas.
    Mem(CowPartitionStore),
    /// Materialized union, merged entry-wise into LSM replicas.
    Lsm(PartitionStore),
}

impl AntiEntropyUnion {
    /// Wraps a materialized union for distribution under `kind`.
    pub fn new(kind: BackendKind, union: PartitionStore) -> Self {
        match kind {
            BackendKind::Mem => AntiEntropyUnion::Mem(CowPartitionStore::from_store(union)),
            BackendKind::Lsm => AntiEntropyUnion::Lsm(union),
        }
    }
}

impl ReplicaStore {
    /// Repairs this replica from the anti-entropy union. Mem-to-mem
    /// installs the shared handle; every other pairing merges entries
    /// (version gating makes the content converge identically).
    pub fn install_union(&mut self, union: &AntiEntropyUnion) {
        match (&mut *self, union) {
            (ReplicaStore::Mem(s), AntiEntropyUnion::Mem(u)) => *s = u.clone(),
            (ReplicaStore::Mem(s), AntiEntropyUnion::Lsm(u)) => s.make_mut().merge_from(u),
            (ReplicaStore::Lsm(s), AntiEntropyUnion::Mem(u)) => s.lock().merge_from(u),
            (ReplicaStore::Lsm(s), AntiEntropyUnion::Lsm(u)) => s.lock().merge_from(u),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Version;
    use skute_ring::Token;

    fn seeded(kind: BackendKind) -> ReplicaStore {
        let mut store = ReplicaStore::open(kind);
        for i in 0..100u32 {
            let key = format!("key-{i:04}").into_bytes();
            let record = Record::put(
                format!("value-{i}").into_bytes(),
                Version::new(1 + u64::from(i % 4), 0, 0),
            );
            assert!(store.apply(key, record));
        }
        store
    }

    /// Satellite: ring split followed by absorb restores identical
    /// contents, sizes, and Merkle summary — under both backends.
    #[test]
    fn split_then_absorb_round_trips_both_backends() {
        let hasher = KeyHasher::default();
        let full = KeyRange::full();
        for kind in [BackendKind::Mem, BackendKind::Lsm] {
            let mut store = seeded(kind);
            let before_len = store.len();
            let before_bytes = store.logical_bytes();
            let before_summary = store.merkle_summary(hasher, full, 32);
            let before_snapshot = store.snapshot();

            let high = KeyRange::new(Token(0), Token(u64::MAX / 2));
            let high_store = store.split_off(hasher, high);
            assert_eq!(high_store.kind(), kind, "split preserves the backend");
            assert!(
                !high_store.is_empty() && !store.is_empty(),
                "100 hashed keys land on both sides of a half-ring cut"
            );
            assert_eq!(
                store.len() + high_store.len(),
                before_len,
                "{kind}: split conserves key count"
            );
            assert_eq!(
                store.logical_bytes() + high_store.logical_bytes(),
                before_bytes,
                "{kind}: split conserves logical bytes"
            );

            store.absorb(high_store);
            assert_eq!(store.len(), before_len, "{kind}: absorb restores count");
            assert_eq!(
                store.logical_bytes(),
                before_bytes,
                "{kind}: absorb restores bytes"
            );
            let after_summary = store.merkle_summary(hasher, full, 32);
            assert_eq!(
                before_summary, after_summary,
                "{kind}: absorb restores the Merkle summary"
            );
            let after = store.snapshot();
            for (key, record) in before_snapshot.iter() {
                assert_eq!(after.get(key), Some(record), "{kind}: key {key:?}");
            }
        }
    }

    /// Satellite: `merge_from` an in-memory store round-trips under both
    /// backends and converges to the same Merkle summary.
    #[test]
    fn merge_from_converges_both_backends() {
        let hasher = KeyHasher::default();
        let full = KeyRange::full();
        let mut source = PartitionStore::new();
        for i in 0..40u32 {
            source.apply(
                format!("m-{i}").into_bytes(),
                Record::put(&b"merged"[..], Version::new(7, u64::from(i), 1)),
            );
        }
        let reference = MerkleSummary::build(&source, hasher, full, 16);
        for kind in [BackendKind::Mem, BackendKind::Lsm] {
            let mut store = seeded(kind);
            store.merge_from(&source);
            let mut expected = store.snapshot();
            expected.merge_from(&source); // idempotent: already merged
            assert_eq!(expected.len(), store.len(), "{kind}");
            // A store holding exactly the source's keys summarizes equally.
            let mut only_source = ReplicaStore::open(kind);
            only_source.merge_from(&source);
            assert_eq!(
                only_source.merkle_summary(hasher, full, 16),
                reference,
                "{kind}: merge_from reproduces the source summary"
            );
        }
    }

    #[test]
    fn backends_agree_bit_for_bit_on_same_history() {
        let hasher = KeyHasher::default();
        let full = KeyRange::full();
        let mem = seeded(BackendKind::Mem);
        let lsm = seeded(BackendKind::Lsm);
        assert_eq!(mem.len(), lsm.len());
        assert_eq!(mem.logical_bytes(), lsm.logical_bytes());
        assert_eq!(
            mem.merkle_summary(hasher, full, 32),
            lsm.merkle_summary(hasher, full, 32)
        );
        // Oracle parity: mem measures transfers at exactly logical size.
        assert_eq!(mem.physical_bytes(), mem.logical_bytes());
        let (fork, measured) = mem.fork();
        assert!(measured.is_none());
        assert!(fork.shares_storage_with(&mem), "mem fork is a COW share");
        let (lsm_fork, lsm_measured) = lsm.fork();
        assert_eq!(lsm_measured, Some(lsm.physical_bytes()));
        assert!(!lsm_fork.shares_storage_with(&lsm), "lsm fork is a copy");
        assert_eq!(lsm_fork.logical_bytes(), lsm.logical_bytes());
    }

    #[test]
    fn install_union_converges_all_pairings() {
        let hasher = KeyHasher::default();
        let full = KeyRange::full();
        let mut union = PartitionStore::new();
        for i in 0..30u32 {
            union.apply(
                format!("u-{i}").into_bytes(),
                Record::put(&b"u"[..], Version::new(3, u64::from(i), 0)),
            );
        }
        let reference = MerkleSummary::build(&union, hasher, full, 16);
        for kind in [BackendKind::Mem, BackendKind::Lsm] {
            let wrapped = AntiEntropyUnion::new(kind, union.clone());
            for replica_kind in [BackendKind::Mem, BackendKind::Lsm] {
                let mut replica = ReplicaStore::open(replica_kind);
                replica.install_union(&wrapped);
                assert_eq!(
                    replica.merkle_summary(hasher, full, 16),
                    reference,
                    "union {kind} into replica {replica_kind}"
                );
            }
        }
        // Mem-to-mem install shares the union's allocation (fast path).
        let wrapped = AntiEntropyUnion::new(BackendKind::Mem, union.clone());
        let mut a = ReplicaStore::open(BackendKind::Mem);
        let mut b = ReplicaStore::open(BackendKind::Mem);
        a.install_union(&wrapped);
        b.install_union(&wrapped);
        assert!(a.shares_storage_with(&b));
    }

    #[test]
    fn backend_kind_parses_round_trip() {
        for kind in [BackendKind::Mem, BackendKind::Lsm] {
            assert_eq!(kind.as_str().parse::<BackendKind>(), Ok(kind));
        }
        assert!("rocksdb".parse::<BackendKind>().is_err());
        assert_eq!(BackendKind::default(), BackendKind::Mem);
    }
}
