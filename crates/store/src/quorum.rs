//! Dynamo-style N/R/W quorum arithmetic and response merging.

use crate::error::StoreError;
use crate::value::Record;

/// Replication/quorum parameters: `n` replicas, reads wait for `r`
/// responses, writes for `w` acknowledgements.
///
/// `r + w > n` gives read-your-writes intersection; Skute cares primarily
/// about *availability*, so the default is `r = 1`, `w = quorum(n)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumConfig {
    /// Target replica count.
    pub n: usize,
    /// Read quorum.
    pub r: usize,
    /// Write quorum.
    pub w: usize,
}

impl QuorumConfig {
    /// Builds a config, validating `1 ≤ r ≤ n` and `1 ≤ w ≤ n`.
    pub fn new(n: usize, r: usize, w: usize) -> Result<Self, StoreError> {
        if n == 0 || r == 0 || w == 0 || r > n || w > n {
            return Err(StoreError::InvalidQuorum { n, r, w });
        }
        Ok(Self { n, r, w })
    }

    /// Availability-leaning default for `n` replicas: `r = 1`,
    /// `w = ⌊n/2⌋ + 1`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn availability(n: usize) -> Self {
        Self::new(n, 1, n / 2 + 1).expect("n must be positive")
    }

    /// Strongly consistent variant: `r = w = ⌊n/2⌋ + 1`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn majority(n: usize) -> Self {
        let q = n / 2 + 1;
        Self::new(n, q, q).expect("n must be positive")
    }

    /// True when read and write quorums intersect (`r + w > n`).
    pub fn intersecting(&self) -> bool {
        self.r + self.w > self.n
    }

    /// Checks whether `acks` acknowledgements satisfy the write quorum.
    pub fn write_ok(&self, acks: usize) -> Result<(), StoreError> {
        if acks >= self.w {
            Ok(())
        } else {
            Err(StoreError::QuorumNotMet {
                needed: self.w,
                got: acks,
            })
        }
    }

    /// Merges read responses: errors if fewer than `r` replicas responded,
    /// otherwise returns the LWW winner (or `None` if every responding
    /// replica had no record for the key).
    pub fn read_merge(&self, responses: Vec<Option<Record>>) -> Result<Option<Record>, StoreError> {
        if responses.len() < self.r {
            return Err(StoreError::QuorumNotMet {
                needed: self.r,
                got: responses.len(),
            });
        }
        Ok(Record::merge_all(responses.into_iter().flatten()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Version;

    #[test]
    fn constructors_validate() {
        assert!(QuorumConfig::new(3, 1, 2).is_ok());
        assert!(matches!(
            QuorumConfig::new(0, 1, 1),
            Err(StoreError::InvalidQuorum { .. })
        ));
        assert!(QuorumConfig::new(3, 4, 1).is_err());
        assert!(QuorumConfig::new(3, 1, 0).is_err());
    }

    #[test]
    fn presets() {
        let a = QuorumConfig::availability(4);
        assert_eq!((a.n, a.r, a.w), (4, 1, 3));
        let m = QuorumConfig::majority(5);
        assert_eq!((m.n, m.r, m.w), (5, 3, 3));
        assert!(m.intersecting());
        assert!(!QuorumConfig::new(4, 1, 2).unwrap().intersecting());
    }

    #[test]
    fn write_quorum_enforced() {
        let q = QuorumConfig::new(3, 1, 2).unwrap();
        assert!(q.write_ok(2).is_ok());
        assert!(q.write_ok(3).is_ok());
        assert!(matches!(
            q.write_ok(1),
            Err(StoreError::QuorumNotMet { needed: 2, got: 1 })
        ));
    }

    #[test]
    fn read_merge_needs_r_responses() {
        let q = QuorumConfig::new(3, 2, 2).unwrap();
        assert!(q.read_merge(vec![None]).is_err());
        assert_eq!(q.read_merge(vec![None, None]).unwrap(), None);
    }

    #[test]
    fn read_merge_returns_lww_winner() {
        let q = QuorumConfig::new(3, 2, 2).unwrap();
        let old = Record::put(&b"old"[..], Version::new(1, 0, 0));
        let new = Record::put(&b"new"[..], Version::new(2, 0, 0));
        let merged = q
            .read_merge(vec![Some(old), None, Some(new.clone())])
            .unwrap()
            .unwrap();
        assert_eq!(merged, new);
    }

    #[test]
    fn read_merge_tombstone_wins_when_newer() {
        let q = QuorumConfig::new(2, 1, 1).unwrap();
        let live = Record::put(&b"v"[..], Version::new(1, 0, 0));
        let dead = Record::tombstone(Version::new(2, 0, 0));
        let merged = q.read_merge(vec![Some(live), Some(dead)]).unwrap().unwrap();
        assert!(merged.is_tombstone());
    }
}
