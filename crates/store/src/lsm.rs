//! `LsmStore`: a durable log-structured merge engine for one replica of
//! one partition.
//!
//! The in-memory [`PartitionStore`](crate::PartitionStore) is the fast
//! default and bit-exact oracle of the simulation; this engine is the
//! second implementation behind the [`StorageBackend`](crate::StorageBackend)
//! trait, and the one that makes the paper's data-transfer costs real:
//! replicating or migrating a replica moves the engine's actual on-disk
//! bytes, not a logical-size constant.
//!
//! # Layout
//!
//! Each store owns one directory:
//!
//! * `wal.log` — the write-ahead log. Every accepted
//!   [`apply`](LsmStore::apply) appends one encoded entry and flushes it,
//!   so a crash after the append is recoverable by replay.
//! * `NNNNNNNN.sst` — immutable sorted runs (SSTables), numbered in
//!   creation order. Each holds the entries of one memtable flush (or one
//!   compaction), in key order, with an in-memory sparse index (one
//!   `(key, offset)` pin every [`INDEX_EVERY`] entries) rebuilt on open.
//!
//! # Write and read paths
//!
//! Writes are version-gated exactly like the in-memory engine: the current
//! record is looked up first, a dominated version is rejected, an accepted
//! record is WAL-appended and inserted into the `BTreeMap` memtable. When
//! the memtable's encoded size crosses the flush threshold it is written
//! out as a fresh SSTable and the WAL is truncated (its entries are now
//! durable in the run). Reads are leveled: memtable first, then SSTables
//! newest-to-oldest — the first hit wins, because an entry only ever lands
//! in the store if its version dominated everything older at write time.
//! Once more than [`MAX_TABLES`] runs of the tier accumulate, a size-tiered
//! compaction collapses them into a single run.
//!
//! # Crash consistency and faults
//!
//! Every encoded entry carries an IEEE CRC32 trailer, in the WAL and in
//! every sorted run alike. Recovery on [`open`](LsmStore::open) enforces
//! three rules:
//!
//! 1. **Torn WAL tails truncate.** Replay stops at the first record that
//!    is short or fails its checksum, and the log is physically truncated
//!    back to the last whole record. A record past that point was still
//!    in flight at the crash — it was never acknowledged — so no acked
//!    write is lost.
//! 2. **A partial newest run is discarded.** Flushes make the new run
//!    (and its directory entry) durable *before* the WAL shrinks, and
//!    compaction deletes its inputs only *after* the merged run is
//!    durable, so a short newest run is an unfinished flush/compaction
//!    whose entries still live in the WAL or the older runs.
//! 3. **Anything else quarantines.** Full-length data failing its
//!    checksum cannot be repaired locally; the store is marked
//!    [`quarantined`](LsmStore::quarantined) and the cluster layer
//!    re-seeds the replica from a healthy peer (priced as a real,
//!    measured transfer).
//!
//! In-path faults come from an optional [`FaultInjector`] (seeded by the
//! run's [`FaultPlan`]): torn appends, failed fsyncs, partial flushes,
//! mid-copy fork aborts and transient read flips. Every injected fault is
//! transient and repaired by a bounded retry with deterministic backoff,
//! so a faulted store's *logical* state is bit-identical to an unfaulted
//! one — degradation shows up only in [`FaultStats`] and in measured
//! transfer bytes.
//!
//! The directory is created lazily on the first accepted write, so the
//! thousands of empty replica stores of a cold simulation cost no
//! filesystem traffic at all. Unexpected I/O failures (as opposed to
//! injected or recoverable ones) are simulation-fatal and panic;
//! [`crate::StoreError`] stays `Clone + Eq` and carries no I/O variants.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use skute_ring::{KeyHasher, KeyRange};

use crate::engine::PartitionStore;
use crate::faults::{crc32, FaultInjector, FaultPlan, FaultStats};
use crate::value::{Record, Version};

/// WAL file name within a store directory.
const WAL_NAME: &str = "wal.log";

/// One sparse-index pin per this many SSTable entries.
const INDEX_EVERY: usize = 16;

/// Size-tiered compaction trigger: more than this many runs collapse into
/// one.
const MAX_TABLES: usize = 4;

/// Default memtable flush threshold (encoded bytes).
pub const DEFAULT_FLUSH_THRESHOLD: u64 = 64 * 1024;

/// Bytes of the CRC32 trailer on every encoded entry.
const CRC_LEN: u64 = 4;

/// Sanity cap on decoded field lengths: a corrupt length field must not
/// drive a multi-gigabyte allocation before the checksum gets a say.
const MAX_FIELD: usize = 1 << 28;

/// Retry budget for injected-fault recovery loops. The injector caps
/// consecutive faults well below this, so the budget never exhausts; the
/// assert is a backstop against a miswired injector.
const MAX_IO_RETRIES: u32 = 8;

/// Exponent cap for the simulated deterministic backoff accounting.
const BACKOFF_CAP: u32 = 6;

static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh, process-unique store directory under the system temp dir.
pub fn fresh_store_dir() -> PathBuf {
    let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!("skute-lsm-{}", std::process::id()))
        .join(format!("store-{seq:08}"))
}

/// Logical weight of one entry — identical arithmetic to the in-memory
/// engine's accounting, so the two backends agree bit-for-bit.
fn entry_size(key: &[u8], record: &Record) -> u64 {
    key.len() as u64 + record.logical_size
}

/// Encoded length of one WAL/SSTable entry, CRC trailer included.
fn encoded_len(key: &[u8], record: &Record) -> u64 {
    let value_len = record.value.as_ref().map_or(0, |v| v.len());
    (4 + key.len() + 1 + 4 + value_len + 8 + 8 + 4 + 8) as u64 + CRC_LEN
}

/// Appends one encoded entry to `buf`:
/// `key_len u32 | key | live u8 | value_len u32 | value | epoch u64 |
/// seq u64 | writer u32 | logical_size u64 | crc32 u32` (all
/// little-endian; the CRC covers every preceding byte of the entry).
fn encode_entry(buf: &mut Vec<u8>, key: &[u8], record: &Record) {
    let start = buf.len();
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(key);
    match &record.value {
        Some(v) => {
            buf.push(1);
            buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
            buf.extend_from_slice(v);
        }
        None => {
            buf.push(0);
            buf.extend_from_slice(&0u32.to_le_bytes());
        }
    }
    buf.extend_from_slice(&record.version.epoch.to_le_bytes());
    buf.extend_from_slice(&record.version.seq.to_le_bytes());
    buf.extend_from_slice(&record.version.writer.to_le_bytes());
    buf.extend_from_slice(&record.logical_size.to_le_bytes());
    let crc = crc32(&buf[start..]);
    buf.extend_from_slice(&crc.to_le_bytes());
}

/// Why an entry failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EntryError {
    /// The file ended mid-record: a torn tail or an unfinished write.
    Truncated,
    /// A full-length record failed its checksum (or carried an insane
    /// length field): corruption, not a tear.
    Corrupt,
}

/// Reads `len` bytes into `raw` (so the checksum can cover them), returning
/// the start offset of the field within `raw`.
fn read_field(r: &mut impl Read, raw: &mut Vec<u8>, len: usize) -> Result<usize, EntryError> {
    let start = raw.len();
    raw.resize(start + len, 0);
    r.read_exact(&mut raw[start..])
        .map_err(|_| EntryError::Truncated)?;
    Ok(start)
}

fn field_u32(raw: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(raw[at..at + 4].try_into().expect("4-byte field"))
}

fn field_u64(raw: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(raw[at..at + 8].try_into().expect("8-byte field"))
}

/// Decodes and checksum-verifies one entry. `Ok(None)` is clean EOF;
/// `raw` is left holding the entry's bytes (CRC excluded), so the caller
/// can account `raw.len() + CRC_LEN` consumed bytes.
fn try_read_entry(
    r: &mut impl Read,
    raw: &mut Vec<u8>,
) -> Result<Option<(Bytes, Record)>, EntryError> {
    raw.clear();
    // Header read distinguishes clean EOF (no bytes at all) from a tear.
    let mut hdr = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut hdr[got..]) {
            Ok(0) if got == 0 => return Ok(None),
            Ok(0) => return Err(EntryError::Truncated),
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Err(EntryError::Truncated),
        }
    }
    raw.extend_from_slice(&hdr);
    let key_len = u32::from_le_bytes(hdr) as usize;
    if key_len > MAX_FIELD {
        return Err(EntryError::Corrupt);
    }
    let key_at = read_field(r, raw, key_len)?;
    let live_at = read_field(r, raw, 1)?;
    let live = raw[live_at] != 0;
    let vlen_at = read_field(r, raw, 4)?;
    let value_len = field_u32(raw, vlen_at) as usize;
    if value_len > MAX_FIELD {
        return Err(EntryError::Corrupt);
    }
    let val_at = read_field(r, raw, if live { value_len } else { 0 })?;
    let tail_at = read_field(r, raw, 8 + 8 + 4 + 8)?;
    let mut crc_buf = [0u8; 4];
    r.read_exact(&mut crc_buf)
        .map_err(|_| EntryError::Truncated)?;
    if crc32(raw) != u32::from_le_bytes(crc_buf) {
        return Err(EntryError::Corrupt);
    }
    let key = Bytes::from(raw[key_at..key_at + key_len].to_vec());
    let value = live.then(|| Bytes::from(raw[val_at..val_at + value_len].to_vec()));
    let epoch = field_u64(raw, tail_at);
    let seq = field_u64(raw, tail_at + 8);
    let writer = field_u32(raw, tail_at + 16);
    let logical_size = field_u64(raw, tail_at + 20);
    Ok(Some((
        key,
        Record {
            value,
            version: Version::new(epoch, seq, writer),
            logical_size,
        },
    )))
}

/// Makes a directory entry durable (fsync on the directory handle where
/// the platform supports it; best-effort elsewhere).
fn sync_dir(dir: &Path) {
    if let Ok(handle) = File::open(dir) {
        let _ = handle.sync_all();
    }
}

/// One immutable sorted run on disk plus its in-memory sparse index.
#[derive(Debug)]
struct SsTable {
    path: PathBuf,
    file: File,
    /// `(first key of block, byte offset)` every [`INDEX_EVERY`] entries;
    /// always pins the run's first entry.
    index: Vec<(Bytes, u64)>,
    bytes: u64,
}

impl SsTable {
    /// Opens a run, scanning it once to rebuild the sparse index and
    /// verify every entry's checksum.
    fn open(path: PathBuf) -> Result<Self, EntryError> {
        let file = File::open(&path).expect("lsm: open sstable");
        let bytes = file.metadata().expect("lsm: stat sstable").len();
        let mut index = Vec::new();
        let mut reader = BufReader::new(&file);
        let mut raw = Vec::new();
        let mut offset = 0u64;
        let mut n = 0usize;
        while let Some((key, _)) = try_read_entry(&mut reader, &mut raw)? {
            if n % INDEX_EVERY == 0 {
                index.push((key, offset));
            }
            offset += raw.len() as u64 + CRC_LEN;
            n += 1;
        }
        Ok(Self {
            path,
            file,
            index,
            bytes,
        })
    }

    /// Point lookup: seek to the sparse-index floor and scan the block.
    /// A decode failure mid-scan reads as a miss — the run was verified
    /// at open, so this only happens under later on-disk corruption,
    /// which quarantine-and-rebuild handles.
    fn get(&self, key: &[u8]) -> Option<Record> {
        let at = self.index.partition_point(|(k, _)| k.as_ref() <= key);
        if at == 0 {
            return None; // key sorts before the run's smallest key
        }
        let start = self.index[at - 1].1;
        let mut reader = BufReader::new(&self.file);
        reader
            .seek(SeekFrom::Start(start))
            .expect("lsm: seek sstable");
        let mut raw = Vec::new();
        while let Ok(Some((k, record))) = try_read_entry(&mut reader, &mut raw) {
            match k.as_ref().cmp(key) {
                std::cmp::Ordering::Equal => return Some(record),
                std::cmp::Ordering::Greater => return None,
                std::cmp::Ordering::Less => {}
            }
        }
        None
    }

    /// Full scan in key order; stops at the first undecodable entry (see
    /// [`SsTable::get`] on when that can happen).
    fn for_each(&self, f: &mut dyn FnMut(Bytes, Record)) {
        let mut reader = BufReader::new(&self.file);
        reader.seek(SeekFrom::Start(0)).expect("lsm: seek sstable");
        let mut raw = Vec::new();
        while let Ok(Some((k, record))) = try_read_entry(&mut reader, &mut raw) {
            f(k, record);
        }
    }

    /// Re-reads the whole run, verifying every checksum.
    fn scan_ok(&self) -> bool {
        let mut reader = BufReader::new(&self.file);
        if reader.seek(SeekFrom::Start(0)).is_err() {
            return false;
        }
        let mut raw = Vec::new();
        loop {
            match try_read_entry(&mut reader, &mut raw) {
                Ok(Some(_)) => {}
                Ok(None) => return true,
                Err(_) => return false,
            }
        }
    }
}

/// A durable log-structured store for one replica of one partition: WAL +
/// `BTreeMap` memtable + sorted runs with sparse indexes. See the module
/// docs for the file layout, the read/write paths, and the crash-
/// consistency rules.
///
/// Accounting ([`LsmStore::logical_bytes`], [`LsmStore::len`]) follows the
/// in-memory engine's arithmetic exactly; [`LsmStore::physical_bytes`]
/// additionally reports the real on-disk footprint (WAL plus runs) that
/// replication and migration actually move.
#[derive(Debug)]
pub struct LsmStore {
    dir: PathBuf,
    /// False until the first accepted write touches the filesystem.
    initialized: bool,
    wal: Option<File>,
    wal_bytes: u64,
    memtable: BTreeMap<Bytes, Record>,
    /// Encoded size of the memtable (flush trigger).
    memtable_bytes: u64,
    /// Sorted runs, oldest to newest.
    tables: Vec<SsTable>,
    next_table_seq: u64,
    logical_bytes: u64,
    key_count: usize,
    flush_threshold: u64,
    /// The fault plan this store (and every store it forks or splits off)
    /// runs under.
    plan: FaultPlan,
    injector: Option<FaultInjector>,
    stats: FaultStats,
    activity: StorageActivity,
    /// Set when unrecoverable corruption was detected; the cluster layer
    /// re-seeds quarantined replicas from a healthy peer.
    quarantined: bool,
}

/// Cumulative engine-activity counters: how often the write path exercised
/// each LSM mechanism. Observability only — like [`FaultStats`], none of
/// these feed decisions, the CSV, or stdout, so trajectories are identical
/// whether or not anyone reads them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StorageActivity {
    /// Accepted writes appended (durably) to the WAL.
    pub wal_appends: u64,
    /// Memtable flushes that produced a sorted run.
    pub memtable_flushes: u64,
    /// Size-tiered compactions that collapsed the run tier.
    pub compactions: u64,
}

impl StorageActivity {
    /// Folds another store's counters into this one (fleet-wide totals).
    pub fn absorb(&mut self, other: &StorageActivity) {
        self.wal_appends += other.wal_appends;
        self.memtable_flushes += other.memtable_flushes;
        self.compactions += other.compactions;
    }
}

impl LsmStore {
    /// A fresh, empty store in a process-unique temp directory. No
    /// filesystem state exists until the first accepted write.
    pub fn create() -> Self {
        Self::create_with(FaultPlan::none())
    }

    /// A fresh, empty store running under `plan`.
    pub fn create_with(plan: FaultPlan) -> Self {
        Self::create_at_with(fresh_store_dir(), plan)
    }

    /// A fresh, empty store rooted at `dir` (created lazily).
    pub fn create_at(dir: PathBuf) -> Self {
        Self::create_at_with(dir, FaultPlan::none())
    }

    /// A fresh, empty store rooted at `dir`, running under `plan`.
    pub fn create_at_with(dir: PathBuf, plan: FaultPlan) -> Self {
        Self {
            dir,
            initialized: false,
            wal: None,
            wal_bytes: 0,
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            tables: Vec::new(),
            next_table_seq: 0,
            logical_bytes: 0,
            key_count: 0,
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            plan,
            injector: plan
                .has_storage_faults()
                .then(|| FaultInjector::for_next_store(plan)),
            stats: FaultStats::default(),
            activity: StorageActivity::default(),
            quarantined: false,
        }
    }

    /// Opens the store persisted at `dir`: loads every sorted run, replays
    /// the WAL into the memtable, and recomputes exact accounting. A
    /// missing directory opens as a fresh empty store — crash recovery and
    /// cold creation share one entry point. Recovery applies the module's
    /// three rules: torn WAL tails truncate, a partial newest run is
    /// discarded, any other corruption quarantines the store.
    pub fn open(dir: PathBuf) -> Self {
        Self::open_with(dir, FaultPlan::none())
    }

    /// [`LsmStore::open`], running the recovered store under `plan`.
    pub fn open_with(dir: PathBuf, plan: FaultPlan) -> Self {
        if !dir.is_dir() {
            return Self::create_at_with(dir, plan);
        }
        let mut injector = plan
            .has_storage_faults()
            .then(|| FaultInjector::for_next_store(plan));
        let mut stats = FaultStats::default();
        let mut quarantined = false;
        let mut seqs: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir).expect("lsm: read store directory") {
            let name = entry.expect("lsm: read dir entry").file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".sst") {
                if let Ok(seq) = stem.parse::<u64>() {
                    seqs.push(seq);
                }
            }
        }
        seqs.sort_unstable();
        let newest = seqs.last().copied();
        let mut tables: Vec<SsTable> = Vec::new();
        for &seq in &seqs {
            let path = dir.join(format!("{seq:08}.sst"));
            match Self::open_run_retrying(&path, &mut injector, &mut stats) {
                Ok(table) => tables.push(table),
                Err(EntryError::Truncated) if Some(seq) == newest => {
                    // An unfinished flush or compaction died mid-run. Its
                    // entries are still covered by the WAL (a flush
                    // truncates the log only after the run is durable) or
                    // by the older runs (compaction deletes its inputs
                    // only after the merged run is durable), so the
                    // partial file is simply discarded.
                    let _ = fs::remove_file(&path);
                    stats.partial_runs_discarded += 1;
                }
                Err(_) => {
                    // Full-length data failing its checksum — or a tear
                    // in a run that cannot be an unfinished write — is
                    // unrecoverable locally.
                    quarantined = true;
                }
            }
        }
        let next_table_seq = seqs.last().map_or(0, |s| s + 1);
        let mut memtable = BTreeMap::new();
        let mut wal_bytes = 0u64;
        let wal_path = dir.join(WAL_NAME);
        if wal_path.is_file() {
            let mut reader =
                BufReader::new(File::open(&wal_path).expect("lsm: open WAL for replay"));
            let mut raw = Vec::new();
            let mut good = 0u64;
            loop {
                match try_read_entry(&mut reader, &mut raw) {
                    Ok(Some((key, record))) => {
                        good += raw.len() as u64 + CRC_LEN;
                        // Entries were version-gated when first written,
                        // so later WAL entries for a key always dominate
                        // earlier ones.
                        memtable.insert(key, record);
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // A record past the last whole one was still in
                        // flight at the crash (never acknowledged):
                        // truncate the torn tail away.
                        drop(reader);
                        let f = OpenOptions::new()
                            .write(true)
                            .open(&wal_path)
                            .expect("lsm: reopen WAL for truncation");
                        f.set_len(good).expect("lsm: truncate torn WAL tail");
                        let _ = f.sync_all();
                        stats.torn_wal_tails_repaired += 1;
                        break;
                    }
                }
            }
            wal_bytes = good;
        }
        let memtable_bytes = memtable.iter().map(|(k, r)| encoded_len(k, r)).sum();
        let mut store = Self {
            dir,
            initialized: true,
            wal: None,
            wal_bytes,
            memtable,
            memtable_bytes,
            tables,
            next_table_seq,
            logical_bytes: 0,
            key_count: 0,
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
            plan,
            injector,
            stats,
            activity: StorageActivity::default(),
            quarantined,
        };
        let merged = store.merged();
        store.key_count = merged.len();
        store.logical_bytes = merged.iter().map(|(k, r)| entry_size(k, r)).sum();
        store
    }

    /// Opens one run, retrying (real re-reads) through injected transient
    /// bit flips; a persistent decode failure propagates to the caller's
    /// recovery rules.
    fn open_run_retrying(
        path: &Path,
        injector: &mut Option<FaultInjector>,
        stats: &mut FaultStats,
    ) -> Result<SsTable, EntryError> {
        let mut attempt = 0u32;
        loop {
            let table = SsTable::open(path.to_path_buf())?;
            let flipped = injector.as_mut().is_some_and(|i| i.read_flip());
            if !flipped {
                return Ok(table);
            }
            // A transient bit flip failed the verification scan: drop the
            // poisoned read and re-read the file.
            stats.read_retries += 1;
            stats.backoff_steps += 1u64 << attempt.min(BACKOFF_CAP);
            attempt += 1;
            assert!(attempt < MAX_IO_RETRIES, "lsm: read-retry budget exhausted");
        }
    }

    /// Overrides the memtable flush threshold (tests exercise the SSTable
    /// and compaction paths with tiny thresholds).
    pub fn set_flush_threshold(&mut self, bytes: u64) {
        self.flush_threshold = bytes.max(1);
    }

    /// The store's root directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// The fault plan this store runs under.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    /// Counters of every injected fault detected and recovered from.
    pub fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    /// Cumulative engine-activity counters (WAL appends, flushes,
    /// compactions). Observability only.
    pub fn activity(&self) -> StorageActivity {
        self.activity
    }

    /// True when unrecoverable corruption was detected (at open or by
    /// [`LsmStore::verify`]). A quarantined replica must be re-seeded
    /// from a healthy peer.
    pub fn quarantined(&self) -> bool {
        self.quarantined
    }

    /// Number of keys (including tombstones).
    pub fn len(&self) -> usize {
        self.key_count
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.key_count == 0
    }

    /// Logical bytes stored (keys + logical record sizes) — identical
    /// arithmetic to [`PartitionStore::logical_bytes`].
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    /// Real on-disk bytes: the WAL plus every sorted run. This is the
    /// quantity a replica transfer physically streams.
    pub fn physical_bytes(&self) -> u64 {
        self.wal_bytes + self.tables.iter().map(|t| t.bytes).sum::<u64>()
    }

    /// Number of sorted runs currently on disk.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    fn ensure_dir(&mut self) {
        if !self.initialized {
            fs::create_dir_all(&self.dir).expect("lsm: create store directory");
            self.initialized = true;
        }
    }

    fn wal_handle(&mut self) -> &mut File {
        self.ensure_dir();
        if self.wal.is_none() {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.dir.join(WAL_NAME))
                .expect("lsm: open WAL");
            self.wal = Some(file);
        }
        self.wal.as_mut().expect("just opened")
    }

    fn lookup(&self, key: &[u8]) -> Option<Record> {
        if let Some(r) = self.memtable.get(key) {
            return Some(r.clone());
        }
        // Newest run first; the first hit dominates everything older.
        for table in self.tables.iter().rev() {
            if let Some(r) = table.get(key) {
                return Some(r);
            }
        }
        None
    }

    /// Applies `record` under `key` if its version dominates the stored
    /// one; an accepted write is WAL-durable before this returns — even
    /// under injected torn appends and failed fsyncs, which are repaired
    /// by truncate-to-acked and a bounded deterministic-backoff retry.
    /// Returns `true` when the store changed.
    pub fn apply(&mut self, key: impl Into<Bytes>, record: Record) -> bool {
        let key = key.into();
        match self.lookup(&key) {
            Some(existing) => {
                if record.version <= existing.version {
                    return false;
                }
                self.logical_bytes -= entry_size(&key, &existing);
            }
            None => self.key_count += 1,
        }
        self.logical_bytes += entry_size(&key, &record);
        let mut buf = Vec::with_capacity(encoded_len(&key, &record) as usize);
        encode_entry(&mut buf, &key, &record);
        let acked = self.wal_bytes;
        let mut attempt = 0u32;
        loop {
            let fault = self
                .injector
                .as_mut()
                .and_then(|i| i.wal_append_fault(buf.len()));
            match fault {
                None => {
                    let wal = self.wal_handle();
                    wal.write_all(&buf).expect("lsm: WAL append");
                    wal.flush().expect("lsm: WAL flush");
                    break;
                }
                Some(torn) => {
                    // The injected fault leaves a real torn tail on disk
                    // (`torn < len`), or a whole record whose fsync
                    // "failed" (`torn == len`) — either way the record is
                    // unacked: truncate back to the acked offset, back
                    // off deterministically, retry.
                    let wal = self.wal_handle();
                    wal.write_all(&buf[..torn]).expect("lsm: WAL append");
                    wal.flush().expect("lsm: WAL flush");
                    wal.set_len(acked).expect("lsm: truncate torn WAL tail");
                    self.stats.wal_retries += 1;
                    if torn < buf.len() {
                        self.stats.torn_wal_tails_repaired += 1;
                    }
                    self.stats.backoff_steps += 1u64 << attempt.min(BACKOFF_CAP);
                    attempt += 1;
                    assert!(attempt < MAX_IO_RETRIES, "lsm: WAL retry budget exhausted");
                }
            }
        }
        self.wal_bytes = acked + buf.len() as u64;
        self.activity.wal_appends += 1;
        if let Some(prev) = self.memtable.get(&key) {
            self.memtable_bytes -= encoded_len(&key, prev);
        }
        self.memtable_bytes += buf.len() as u64;
        self.memtable.insert(key, record);
        if self.memtable_bytes >= self.flush_threshold {
            self.flush_memtable();
        }
        true
    }

    /// The record stored under `key`, tombstones included.
    pub fn get(&self, key: &[u8]) -> Option<Record> {
        self.lookup(key)
    }

    /// The live value under `key` (`None` for absent keys *and* tombstones).
    pub fn get_value(&self, key: &[u8]) -> Option<Bytes> {
        self.lookup(key).and_then(|r| r.value)
    }

    /// Flushes the memtable to a fresh sorted run and truncates the WAL.
    pub fn flush(&mut self) {
        self.flush_memtable();
    }

    /// Re-reads every sorted run, verifying all checksums (through
    /// injected transient flips, which are retried); marks the store
    /// quarantined on a persistent failure. Returns `true` when healthy.
    /// The WAL needs no scan here: it was verified at open and everything
    /// since went through the checked write path.
    pub fn verify(&mut self) -> bool {
        for table in &self.tables {
            let mut attempt = 0u32;
            loop {
                let ok = table.scan_ok();
                let flipped = ok && self.injector.as_mut().is_some_and(|i| i.read_flip());
                if flipped {
                    self.stats.read_retries += 1;
                    self.stats.backoff_steps += 1u64 << attempt.min(BACKOFF_CAP);
                    attempt += 1;
                    assert!(attempt < MAX_IO_RETRIES, "lsm: read-retry budget exhausted");
                    continue;
                }
                if !ok {
                    self.quarantined = true;
                }
                break;
            }
            if self.quarantined {
                break;
            }
        }
        !self.quarantined
    }

    /// Deliberately flips one byte in the newest sorted run: the
    /// fault-injection helper for forging *persistent* on-disk corruption
    /// (unlike the injector's transient faults). Returns `false` when no
    /// run exists. The next [`LsmStore::verify`] quarantines the store.
    pub fn corrupt_newest_run(&mut self) -> bool {
        let Some(table) = self.tables.last() else {
            return false;
        };
        let mut data = fs::read(&table.path).expect("lsm: read run for corruption");
        if data.is_empty() {
            return false;
        }
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        fs::write(&table.path, &data).expect("lsm: write corrupted run");
        true
    }

    fn flush_memtable(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        self.ensure_dir();
        let seq = self.next_table_seq;
        self.next_table_seq += 1;
        let path = self.dir.join(format!("{seq:08}.sst"));
        {
            let total = self.memtable_bytes;
            let Self {
                memtable,
                injector,
                stats,
                ..
            } = self;
            let mut attempt = 0u32;
            loop {
                let tear = injector.as_mut().and_then(|i| i.flush_fault(total));
                match Self::write_run(&path, memtable.iter(), tear) {
                    Ok(()) => break,
                    Err(()) => {
                        // Injected partial flush: wipe the torn run and
                        // rewrite it whole.
                        let _ = fs::remove_file(&path);
                        stats.flush_retries += 1;
                        stats.backoff_steps += 1u64 << attempt.min(BACKOFF_CAP);
                        attempt += 1;
                        assert!(
                            attempt < MAX_IO_RETRIES,
                            "lsm: flush retry budget exhausted"
                        );
                    }
                }
            }
        }
        // Crash-consistency ordering: the run was fsynced by write_run and
        // its directory entry is synced here, BEFORE the WAL shrinks — a
        // crash between flush and truncation replays a WAL whose entries
        // are already (idempotently) in the run, never the reverse.
        sync_dir(&self.dir);
        self.tables
            .push(SsTable::open(path).expect("lsm: freshly written run is well-formed"));
        self.memtable.clear();
        self.memtable_bytes = 0;
        // The flushed entries are durable in the run: truncate the WAL.
        self.wal = None;
        let wal = File::create(self.dir.join(WAL_NAME)).expect("lsm: truncate WAL");
        let _ = wal.sync_all();
        self.wal_bytes = 0;
        self.activity.memtable_flushes += 1;
        self.maybe_compact();
    }

    /// Writes one sorted run, fsyncing it before returning. `tear`
    /// simulates a write dying after that many bytes: the torn file is
    /// left on disk (exactly what a crash leaves) and `Err` tells the
    /// caller to discard and retry.
    fn write_run<'a>(
        path: &PathBuf,
        entries: impl Iterator<Item = (&'a Bytes, &'a Record)>,
        tear: Option<u64>,
    ) -> Result<(), ()> {
        let mut writer = BufWriter::new(File::create(path).expect("lsm: create sstable"));
        let mut buf = Vec::new();
        let mut written = 0u64;
        for (key, record) in entries {
            buf.clear();
            encode_entry(&mut buf, key, record);
            if let Some(t) = tear {
                if written + buf.len() as u64 > t {
                    let cut = (t - written) as usize;
                    writer
                        .write_all(&buf[..cut])
                        .expect("lsm: write sstable (faulted)");
                    writer.flush().expect("lsm: flush sstable (faulted)");
                    return Err(());
                }
            }
            writer.write_all(&buf).expect("lsm: write sstable");
            written += buf.len() as u64;
        }
        let file = writer.into_inner().expect("lsm: flush sstable");
        file.sync_all().expect("lsm: fsync sstable");
        Ok(())
    }

    /// Size-tiered compaction: once more than [`MAX_TABLES`] runs
    /// accumulate, the whole tier collapses into a single run (newest
    /// occurrence of a key wins — which is the version-dominant one, since
    /// every write was gated on entry). The input runs are deleted only
    /// after the merged run and its directory entry are durable.
    fn maybe_compact(&mut self) {
        if self.tables.len() <= MAX_TABLES {
            return;
        }
        let mut merged: BTreeMap<Bytes, Record> = BTreeMap::new();
        for table in &self.tables {
            table.for_each(&mut |k, r| {
                merged.insert(k, r);
            });
        }
        let seq = self.next_table_seq;
        self.next_table_seq += 1;
        let path = self.dir.join(format!("{seq:08}.sst"));
        let total: u64 = merged.iter().map(|(k, r)| encoded_len(k, r)).sum();
        let mut attempt = 0u32;
        loop {
            let tear = self.injector.as_mut().and_then(|i| i.flush_fault(total));
            match Self::write_run(&path, merged.iter(), tear) {
                Ok(()) => break,
                Err(()) => {
                    let _ = fs::remove_file(&path);
                    self.stats.flush_retries += 1;
                    self.stats.backoff_steps += 1u64 << attempt.min(BACKOFF_CAP);
                    attempt += 1;
                    assert!(
                        attempt < MAX_IO_RETRIES,
                        "lsm: compaction retry budget exhausted"
                    );
                }
            }
        }
        sync_dir(&self.dir);
        for table in self.tables.drain(..) {
            let _ = fs::remove_file(&table.path);
        }
        self.tables
            .push(SsTable::open(path).expect("lsm: freshly compacted run is well-formed"));
        self.activity.compactions += 1;
    }

    /// The merged view of all levels, in key order.
    fn merged(&self) -> BTreeMap<Bytes, Record> {
        let mut merged = BTreeMap::new();
        for table in &self.tables {
            table.for_each(&mut |k, r| {
                merged.insert(k, r);
            });
        }
        for (k, r) in &self.memtable {
            merged.insert(k.clone(), r.clone());
        }
        merged
    }

    /// Visits every entry in key order.
    pub fn for_each(&self, f: &mut dyn FnMut(&Bytes, &Record)) {
        for (k, r) in self.merged().iter() {
            f(k, r);
        }
    }

    /// Materializes the store's contents as an in-memory
    /// [`PartitionStore`] (anti-entropy unions, oracle comparisons).
    pub fn snapshot(&self) -> PartitionStore {
        let mut snap = PartitionStore::new();
        for (k, r) in self.merged() {
            let applied = snap.apply(k, r);
            debug_assert!(applied, "merged view holds one record per key");
        }
        snap
    }

    /// Splits off every key whose ring token falls inside `high` into a
    /// fresh store, compaction-style: both halves are rewritten from the
    /// merged view, so each ends up with one clean run's worth of state.
    /// The new store inherits this store's fault plan.
    pub fn split_off(&mut self, hasher: KeyHasher, high: KeyRange) -> LsmStore {
        let merged = self.merged();
        self.reset_storage();
        let mut high_store = LsmStore::create_with(self.plan);
        high_store.set_flush_threshold(self.flush_threshold);
        for (key, record) in merged {
            if high.contains(hasher.token(&key)) {
                high_store.apply(key, record);
            } else {
                self.apply(key, record);
            }
        }
        high_store
    }

    /// Deletes all on-disk state and zeroes the accounting (the rewrite
    /// half of [`LsmStore::split_off`]).
    fn reset_storage(&mut self) {
        for table in self.tables.drain(..) {
            let _ = fs::remove_file(&table.path);
        }
        self.wal = None;
        if self.initialized {
            let _ = fs::remove_file(self.dir.join(WAL_NAME));
        }
        self.wal_bytes = 0;
        self.memtable.clear();
        self.memtable_bytes = 0;
        self.logical_bytes = 0;
        self.key_count = 0;
    }

    /// Merges every entry of `other` into `self`; version-dominant records
    /// win.
    pub fn absorb(&mut self, other: LsmStore) {
        for (key, record) in other.merged() {
            self.apply(key, record);
        }
    }

    /// Merges clones of an in-memory store's entries into `self`.
    pub fn merge_from(&mut self, other: &PartitionStore) {
        for (key, record) in other.iter() {
            self.apply(key.clone(), record.clone());
        }
    }

    /// Replicates this store into a fresh directory by physically copying
    /// the WAL and every sorted run, then opening the copy (which replays
    /// the WAL — the same code path crash recovery takes). Returns the new
    /// store and the **measured** bytes actually streamed; an injected
    /// mid-copy abort wipes the partial destination and restarts, and
    /// every wasted byte still counts into the measured total — failed
    /// replication attempts are paid for.
    pub fn fork(&mut self) -> (LsmStore, u64) {
        let dst_dir = fresh_store_dir();
        if !self.initialized {
            return (LsmStore::create_at_with(dst_dir, self.plan), 0);
        }
        let total = self.physical_bytes();
        let mut measured = 0u64;
        let mut attempt = 0u32;
        loop {
            let fault = self.injector.as_mut().and_then(|i| i.fork_fault(total));
            match self.copy_files(&dst_dir, fault) {
                Ok(copied) => {
                    measured += copied;
                    break;
                }
                Err(wasted) => {
                    measured += wasted;
                    let _ = fs::remove_dir_all(&dst_dir);
                    self.stats.fork_retries += 1;
                    self.stats.backoff_steps += 1u64 << attempt.min(BACKOFF_CAP);
                    attempt += 1;
                    assert!(attempt < MAX_IO_RETRIES, "lsm: fork retry budget exhausted");
                }
            }
        }
        let mut fork = LsmStore::open_with(dst_dir, self.plan);
        fork.set_flush_threshold(self.flush_threshold);
        (fork, measured)
    }

    /// Copies every file to `dst_dir`. `abort_after` simulates the copy
    /// dying once that many bytes have streamed (file granularity);
    /// `Err(bytes)` reports how many bytes were wasted.
    fn copy_files(&self, dst_dir: &Path, abort_after: Option<u64>) -> Result<u64, u64> {
        fs::create_dir_all(dst_dir).expect("lsm: create fork directory");
        let mut copied = 0u64;
        for table in &self.tables {
            let name = table.path.file_name().expect("sstable has a file name");
            copied += fs::copy(&table.path, dst_dir.join(name)).expect("lsm: copy sstable");
            if abort_after.is_some_and(|cap| copied >= cap) {
                return Err(copied);
            }
        }
        let wal_path = self.dir.join(WAL_NAME);
        if wal_path.is_file() {
            copied += fs::copy(&wal_path, dst_dir.join(WAL_NAME)).expect("lsm: copy WAL");
            if abort_after.is_some_and(|cap| copied >= cap) {
                return Err(copied);
            }
        }
        Ok(copied)
    }
}

impl Drop for LsmStore {
    fn drop(&mut self) {
        if self.initialized {
            // Best-effort cleanup; a leaked temp dir is harmless.
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultPlanKind;
    use proptest::collection;
    use proptest::prelude::*;
    use skute_ring::Token;

    fn rec(v: &[u8], version: u64) -> Record {
        Record::put(v.to_vec(), Version::new(version, 0, 0))
    }

    /// Applies the same operation stream to both engines and asserts the
    /// observable state matches bit-for-bit.
    fn assert_matches_oracle(ops: &[(&[u8], Record)]) {
        let mut mem = PartitionStore::new();
        let mut lsm = LsmStore::create();
        lsm.set_flush_threshold(64); // force frequent flushes + compactions
        for (key, record) in ops {
            let a = mem.apply(key.to_vec(), record.clone());
            let b = lsm.apply(key.to_vec(), record.clone());
            assert_eq!(a, b, "apply gating diverged on key {key:?}");
        }
        assert_eq!(mem.len(), lsm.len());
        assert_eq!(mem.logical_bytes(), lsm.logical_bytes());
        for (key, record) in mem.iter() {
            assert_eq!(lsm.get(key).as_ref(), Some(record));
        }
        let snap = lsm.snapshot();
        assert_eq!(snap.len(), mem.len());
        assert_eq!(snap.logical_bytes(), mem.logical_bytes());
    }

    #[test]
    fn apply_get_matches_memory_engine() {
        let ops: Vec<(&[u8], Record)> = vec![
            (b"a", rec(b"1", 1)),
            (b"b", rec(b"22", 1)),
            (b"a", rec(b"333", 2)),
            (b"a", rec(b"stale", 1)),                         // rejected
            (b"c", Record::tombstone(Version::new(1, 0, 0))), // tombstone
            (b"b", Record::tombstone(Version::new(2, 0, 0))),
        ];
        assert_matches_oracle(&ops);
    }

    #[test]
    fn many_keys_cross_flush_and_compaction() {
        let mut ops = Vec::new();
        let keys: Vec<Vec<u8>> = (0..300u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for (i, k) in keys.iter().enumerate() {
            ops.push((k.as_slice(), rec(b"payload-bytes", 1 + (i % 3) as u64)));
        }
        // Re-writes with higher versions land on top of flushed runs.
        for k in keys.iter().step_by(7) {
            ops.push((k.as_slice(), rec(b"rewritten", 9)));
        }
        let mut mem = PartitionStore::new();
        let mut lsm = LsmStore::create();
        lsm.set_flush_threshold(256);
        for (key, record) in &ops {
            assert_eq!(
                mem.apply(key.to_vec(), record.clone()),
                lsm.apply(key.to_vec(), record.clone())
            );
        }
        assert!(lsm.table_count() >= 1, "flushes produced sorted runs");
        assert!(
            lsm.table_count() <= MAX_TABLES + 1,
            "compaction bounds the tier"
        );
        assert_eq!(mem.logical_bytes(), lsm.logical_bytes());
        for (key, record) in mem.iter() {
            assert_eq!(lsm.get(key).as_ref(), Some(record), "key {key:?}");
        }
        assert!(lsm.physical_bytes() > 0);
    }

    #[test]
    fn split_off_matches_memory_engine() {
        let hasher = KeyHasher::default();
        let mut mem = PartitionStore::new();
        let mut lsm = LsmStore::create();
        lsm.set_flush_threshold(128);
        for i in 0..120u32 {
            let key = i.to_le_bytes().to_vec();
            mem.apply(key.clone(), rec(b"v", 1));
            lsm.apply(key, rec(b"v", 1));
        }
        let high = KeyRange::new(Token(1 << 62), Token(u64::MAX / 2));
        let mem_high = mem.split_off(hasher, high);
        let lsm_high = lsm.split_off(hasher, high);
        assert_eq!(mem.len(), lsm.len());
        assert_eq!(mem_high.len(), lsm_high.len());
        assert_eq!(mem.logical_bytes(), lsm.logical_bytes());
        assert_eq!(mem_high.logical_bytes(), lsm_high.logical_bytes());
        for (key, record) in mem_high.iter() {
            assert_eq!(lsm_high.get(key).as_ref(), Some(record));
        }
    }

    #[test]
    fn wal_replay_recovers_after_kill() {
        let dir = fresh_store_dir();
        let mut store = LsmStore::create_at(dir.clone());
        store.set_flush_threshold(128);
        let mut oracle = PartitionStore::new();
        for i in 0..40u32 {
            let key = i.to_le_bytes().to_vec();
            let record = rec(b"crash-me", 1);
            oracle.apply(key.clone(), record.clone());
            store.apply(key, record);
        }
        // Newer versions sit in the WAL on top of flushed runs.
        for i in 0..10u32 {
            let key = i.to_le_bytes().to_vec();
            let record = rec(b"wal-only", 5);
            oracle.apply(key.clone(), record.clone());
            store.apply(key, record);
        }
        let expected_bytes = store.logical_bytes();
        // Simulate kill -9: no graceful close, no Drop cleanup — the only
        // durable state is what apply() already flushed.
        std::mem::forget(store);
        let recovered = LsmStore::open(dir);
        assert_eq!(recovered.len(), oracle.len());
        assert_eq!(recovered.logical_bytes(), expected_bytes);
        for (key, record) in oracle.iter() {
            assert_eq!(recovered.get(key).as_ref(), Some(record), "key {key:?}");
        }
    }

    #[test]
    fn torn_wal_tail_is_truncated_on_replay() {
        let dir = fresh_store_dir();
        let mut store = LsmStore::create_at(dir.clone());
        let mut oracle = PartitionStore::new();
        for i in 0..20u32 {
            let key = i.to_le_bytes().to_vec();
            let record = rec(b"acked", 1);
            oracle.apply(key.clone(), record.clone());
            store.apply(key, record);
        }
        std::mem::forget(store);
        // A record was in flight at the crash: append a prefix of its
        // valid encoding to the log — the torn tail.
        let mut buf = Vec::new();
        encode_entry(&mut buf, b"in-flight", &rec(b"never-acked", 9));
        let mut wal = OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_NAME))
            .unwrap();
        wal.write_all(&buf[..buf.len() - 7]).unwrap();
        drop(wal);
        let recovered = LsmStore::open(dir.clone());
        assert_eq!(recovered.fault_stats().torn_wal_tails_repaired, 1);
        assert!(!recovered.quarantined());
        assert_eq!(recovered.len(), oracle.len());
        assert_eq!(recovered.logical_bytes(), oracle.logical_bytes());
        for (key, record) in oracle.iter() {
            assert_eq!(recovered.get(key).as_ref(), Some(record));
        }
        assert!(recovered.get(b"in-flight").is_none());
        // The tail was physically truncated: a second open is clean.
        std::mem::forget(recovered);
        let reopened = LsmStore::open(dir);
        assert_eq!(reopened.fault_stats().torn_wal_tails_repaired, 0);
        assert_eq!(reopened.len(), oracle.len());
    }

    #[test]
    fn trailing_garbage_after_acked_writes_is_discarded() {
        let dir = fresh_store_dir();
        let mut store = LsmStore::create_at(dir.clone());
        let mut oracle = PartitionStore::new();
        for i in 0..15u32 {
            let key = i.to_le_bytes().to_vec();
            let record = rec(b"keep-me", 2);
            oracle.apply(key.clone(), record.clone());
            store.apply(key, record);
        }
        std::mem::forget(store);
        let mut wal = OpenOptions::new()
            .append(true)
            .open(dir.join(WAL_NAME))
            .unwrap();
        wal.write_all(&[0xAB; 23]).unwrap();
        drop(wal);
        let recovered = LsmStore::open(dir);
        assert_eq!(recovered.fault_stats().torn_wal_tails_repaired, 1);
        assert_eq!(recovered.len(), oracle.len());
        for (key, record) in oracle.iter() {
            assert_eq!(recovered.get(key).as_ref(), Some(record));
        }
    }

    #[test]
    fn partial_flush_remnant_is_discarded_on_open() {
        let dir = fresh_store_dir();
        let mut store = LsmStore::create_at(dir.clone());
        store.set_flush_threshold(128);
        let mut oracle = PartitionStore::new();
        for i in 0..30u32 {
            let key = i.to_le_bytes().to_vec();
            let record = rec(b"durable", 1);
            oracle.apply(key.clone(), record.clone());
            store.apply(key, record);
        }
        store.flush();
        assert!(store.table_count() >= 1);
        let next_seq = store.next_table_seq;
        std::mem::forget(store);
        // Forge the crash state of a flush that died mid-run: a short
        // prefix of a would-be newest run.
        let donor = fs::read(dir.join(format!("{:08}.sst", next_seq - 1))).unwrap();
        fs::write(dir.join(format!("{next_seq:08}.sst")), &donor[..10]).unwrap();
        let recovered = LsmStore::open(dir.clone());
        assert_eq!(recovered.fault_stats().partial_runs_discarded, 1);
        assert!(!recovered.quarantined());
        assert_eq!(recovered.len(), oracle.len());
        assert_eq!(recovered.logical_bytes(), oracle.logical_bytes());
        for (key, record) in oracle.iter() {
            assert_eq!(recovered.get(key).as_ref(), Some(record));
        }
        assert!(
            !dir.join(format!("{next_seq:08}.sst")).exists(),
            "the partial run was deleted"
        );
    }

    #[test]
    fn crash_between_flush_and_wal_truncate_loses_nothing() {
        let dir = fresh_store_dir();
        let mut store = LsmStore::create_at(dir.clone());
        let mut oracle = PartitionStore::new();
        for i in 0..25u32 {
            let key = i.to_le_bytes().to_vec();
            let record = rec(b"twice-stored", 3);
            oracle.apply(key.clone(), record.clone());
            store.apply(key, record);
        }
        // Forge the window the fsync ordering protects: the run is
        // durable but the WAL still holds the same entries (a crash right
        // between write_run and the WAL truncation).
        LsmStore::write_run(&dir.join("00000000.sst"), store.memtable.iter(), None).unwrap();
        std::mem::forget(store);
        let recovered = LsmStore::open(dir);
        // Replay on top of the run is idempotent: nothing double-counted.
        assert_eq!(recovered.len(), oracle.len());
        assert_eq!(recovered.logical_bytes(), oracle.logical_bytes());
        for (key, record) in oracle.iter() {
            assert_eq!(recovered.get(key).as_ref(), Some(record));
        }
    }

    #[test]
    fn bit_flip_corruption_quarantines_the_store() {
        let mut store = LsmStore::create();
        store.set_flush_threshold(256);
        for i in 0..40u32 {
            store.apply(i.to_le_bytes().to_vec(), rec(b"precious", 1));
        }
        store.flush();
        assert!(store.verify(), "clean store verifies");
        assert!(!store.quarantined());
        assert!(store.corrupt_newest_run());
        assert!(!store.verify(), "checksums catch the flipped byte");
        assert!(store.quarantined());
    }

    #[test]
    fn faulted_stores_match_the_oracle_bit_for_bit() {
        let mut total_retries = 0u64;
        for kind in [
            FaultPlanKind::TornTails,
            FaultPlanKind::FlakyFsync,
            FaultPlanKind::PartialFlush,
            FaultPlanKind::BitFlips,
            FaultPlanKind::All,
        ] {
            let plan = FaultPlan { kind, seed: 0xFA17 };
            let mut mem = PartitionStore::new();
            let mut lsm = LsmStore::create_with(plan);
            lsm.set_flush_threshold(96);
            for i in 0..250u32 {
                let key = (i % 60).to_le_bytes().to_vec();
                let record = rec(b"fault-me", 1 + u64::from(i / 60));
                let a = mem.apply(key.clone(), record.clone());
                let b = lsm.apply(key, record);
                assert_eq!(a, b, "{kind}: gating diverged at op {i}");
            }
            assert!(lsm.verify(), "{kind}: injected faults are transient");
            assert_eq!(mem.len(), lsm.len(), "{kind}");
            assert_eq!(mem.logical_bytes(), lsm.logical_bytes(), "{kind}");
            for (key, record) in mem.iter() {
                assert_eq!(lsm.get(key).as_ref(), Some(record), "{kind}: key {key:?}");
            }
            total_retries += lsm.fault_stats().total_retries();
        }
        assert!(
            total_retries > 0,
            "the fault plans actually injected faults"
        );
    }

    #[test]
    fn fork_under_faults_prices_wasted_bytes() {
        let plan = FaultPlan::all(0xF0);
        let mut store = LsmStore::create_with(plan);
        store.set_flush_threshold(128);
        for i in 0..60u32 {
            store.apply(i.to_le_bytes().to_vec(), rec(b"fork-payload", 1));
        }
        let physical = store.physical_bytes();
        let mut saw_retry = false;
        for _ in 0..32 {
            let retries_before = store.fault_stats().fork_retries;
            let (fork, measured) = store.fork();
            assert_eq!(fork.len(), store.len());
            assert_eq!(fork.logical_bytes(), store.logical_bytes());
            if store.fault_stats().fork_retries > retries_before {
                saw_retry = true;
                assert!(
                    measured > physical,
                    "aborted attempts add to the measured volume"
                );
            } else {
                assert_eq!(measured, physical, "a clean fork streams every byte once");
            }
        }
        assert!(saw_retry, "an all-faults plan aborts some copies");
    }

    #[test]
    fn fork_copies_real_bytes_and_matches_source() {
        let mut store = LsmStore::create();
        store.set_flush_threshold(128);
        for i in 0..60u32 {
            store.apply(i.to_le_bytes().to_vec(), rec(b"forked-payload", 1));
        }
        let (fork, copied) = store.fork();
        assert_eq!(copied, store.physical_bytes(), "fork streams every byte");
        assert!(copied > 0);
        assert_eq!(fork.len(), store.len());
        assert_eq!(fork.logical_bytes(), store.logical_bytes());
        for (key, record) in store.snapshot().iter() {
            assert_eq!(fork.get(key).as_ref(), Some(record));
        }
    }

    #[test]
    fn empty_store_touches_no_filesystem() {
        let dir = fresh_store_dir();
        let mut store = LsmStore::create_at(dir.clone());
        assert!(!dir.exists(), "lazy init: no write, no directory");
        assert_eq!(store.physical_bytes(), 0);
        let (fork, copied) = store.fork();
        assert_eq!(copied, 0);
        assert!(fork.is_empty());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Satellite: kill the store at a randomized op boundary — which,
        /// as thresholds and op counts vary, lands between WAL appends,
        /// right after flushes, and right after compactions — optionally
        /// tear the log tail (an in-flight record prefix or raw garbage),
        /// then reopen and diff against the mem oracle of *acked* writes.
        #[test]
        fn crash_at_random_boundaries_loses_no_acked_writes(
            n_ops in 1usize..120,
            kill_after in 0usize..120,
            flush_threshold in 32u64..512,
            key_mod in 1u32..40,
            in_flight_cut in 0usize..40,
            garbage in collection::vec(0u8..=255u8, 0usize..24),
            plan_pick in 0usize..3,
        ) {
            let plan = match plan_pick {
                0 => FaultPlan::none(),
                1 => FaultPlan { kind: FaultPlanKind::TornTails, seed: 0xBEEF },
                _ => FaultPlan::all(0xBEEF),
            };
            let dir = fresh_store_dir();
            let mut store = LsmStore::create_at_with(dir.clone(), plan);
            store.set_flush_threshold(flush_threshold);
            let mut oracle = PartitionStore::new();
            let kill = kill_after.min(n_ops);
            for i in 0..kill {
                let key = ((i as u32) % key_mod).to_le_bytes().to_vec();
                let record = Record::put(
                    format!("v{i}").into_bytes(),
                    Version::new(1 + (i / key_mod as usize) as u64, 0, 0),
                );
                let a = oracle.apply(key.clone(), record.clone());
                let b = store.apply(key, record);
                prop_assert_eq!(a, b, "gating diverged at op {}", i);
            }
            // kill -9: Drop skipped; durable state is all that survives.
            std::mem::forget(store);
            let wal_path = dir.join(WAL_NAME);
            if wal_path.is_file() {
                let mut wal = OpenOptions::new().append(true).open(&wal_path).unwrap();
                if in_flight_cut > 0 {
                    // A record was mid-append at the crash.
                    let mut buf = Vec::new();
                    encode_entry(&mut buf, b"in-flight-key", &rec(b"unacked", 99));
                    let cut = in_flight_cut.min(buf.len() - 1);
                    wal.write_all(&buf[..cut]).unwrap();
                }
                wal.write_all(&garbage).unwrap();
            }
            let recovered = LsmStore::open(dir);
            prop_assert!(!recovered.quarantined());
            prop_assert_eq!(recovered.len(), oracle.len());
            prop_assert_eq!(recovered.logical_bytes(), oracle.logical_bytes());
            for (key, record) in oracle.iter() {
                let got = recovered.get(key);
                prop_assert_eq!(got.as_ref(), Some(record));
            }
        }
    }
}
