//! `LsmStore`: a durable log-structured merge engine for one replica of
//! one partition.
//!
//! The in-memory [`PartitionStore`](crate::PartitionStore) is the fast
//! default and bit-exact oracle of the simulation; this engine is the
//! second implementation behind the [`StorageBackend`](crate::StorageBackend)
//! trait, and the one that makes the paper's data-transfer costs real:
//! replicating or migrating a replica moves the engine's actual on-disk
//! bytes, not a logical-size constant.
//!
//! # Layout
//!
//! Each store owns one directory:
//!
//! * `wal.log` — the write-ahead log. Every accepted
//!   [`apply`](LsmStore::apply) appends one encoded entry and flushes it,
//!   so a crash after the append is recoverable by replay.
//! * `NNNNNNNN.sst` — immutable sorted runs (SSTables), numbered in
//!   creation order. Each holds the entries of one memtable flush (or one
//!   compaction), in key order, with an in-memory sparse index (one
//!   `(key, offset)` pin every [`INDEX_EVERY`] entries) rebuilt on open.
//!
//! # Write and read paths
//!
//! Writes are version-gated exactly like the in-memory engine: the current
//! record is looked up first, a dominated version is rejected, an accepted
//! record is WAL-appended and inserted into the `BTreeMap` memtable. When
//! the memtable's encoded size crosses the flush threshold it is written
//! out as a fresh SSTable and the WAL is truncated (its entries are now
//! durable in the run). Reads are leveled: memtable first, then SSTables
//! newest-to-oldest — the first hit wins, because an entry only ever lands
//! in the store if its version dominated everything older at write time.
//! Once more than [`MAX_TABLES`] runs of the tier accumulate, a size-tiered
//! compaction collapses them into a single run.
//!
//! The directory is created lazily on the first accepted write, so the
//! thousands of empty replica stores of a cold simulation cost no
//! filesystem traffic at all. I/O failures are simulation-fatal and panic;
//! [`crate::StoreError`] stays `Clone + Eq` and carries no I/O variants.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use bytes::Bytes;
use skute_ring::{KeyHasher, KeyRange};

use crate::engine::PartitionStore;
use crate::value::{Record, Version};

/// WAL file name within a store directory.
const WAL_NAME: &str = "wal.log";

/// One sparse-index pin per this many SSTable entries.
const INDEX_EVERY: usize = 16;

/// Size-tiered compaction trigger: more than this many runs collapse into
/// one.
const MAX_TABLES: usize = 4;

/// Default memtable flush threshold (encoded bytes).
pub const DEFAULT_FLUSH_THRESHOLD: u64 = 64 * 1024;

static STORE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh, process-unique store directory under the system temp dir.
pub fn fresh_store_dir() -> PathBuf {
    let seq = STORE_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir()
        .join(format!("skute-lsm-{}", std::process::id()))
        .join(format!("store-{seq:08}"))
}

/// Logical weight of one entry — identical arithmetic to the in-memory
/// engine's accounting, so the two backends agree bit-for-bit.
fn entry_size(key: &[u8], record: &Record) -> u64 {
    key.len() as u64 + record.logical_size
}

/// Encoded length of one WAL/SSTable entry.
fn encoded_len(key: &[u8], record: &Record) -> u64 {
    let value_len = record.value.as_ref().map_or(0, |v| v.len());
    (4 + key.len() + 1 + 4 + value_len + 8 + 8 + 4 + 8) as u64
}

/// Appends one encoded entry to `buf`:
/// `key_len u32 | key | live u8 | value_len u32 | value | epoch u64 |
/// seq u64 | writer u32 | logical_size u64` (all little-endian).
fn encode_entry(buf: &mut Vec<u8>, key: &[u8], record: &Record) {
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(key);
    match &record.value {
        Some(v) => {
            buf.push(1);
            buf.extend_from_slice(&(v.len() as u32).to_le_bytes());
            buf.extend_from_slice(v);
        }
        None => {
            buf.push(0);
            buf.extend_from_slice(&0u32.to_le_bytes());
        }
    }
    buf.extend_from_slice(&record.version.epoch.to_le_bytes());
    buf.extend_from_slice(&record.version.seq.to_le_bytes());
    buf.extend_from_slice(&record.version.writer.to_le_bytes());
    buf.extend_from_slice(&record.logical_size.to_le_bytes());
}

/// Reads the 4-byte entry header, distinguishing clean EOF (`None`) from a
/// truncated file (panic).
fn read_header(r: &mut impl Read) -> Option<u32> {
    let mut buf = [0u8; 4];
    let mut got = 0;
    while got < 4 {
        match r.read(&mut buf[got..]) {
            Ok(0) if got == 0 => return None,
            Ok(0) => panic!("lsm: truncated entry header"),
            Ok(n) => got += n,
            Err(e) => panic!("lsm: read failed: {e}"),
        }
    }
    Some(u32::from_le_bytes(buf))
}

fn read_exact_buf(r: &mut impl Read, len: usize) -> Vec<u8> {
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf).expect("lsm: truncated entry body");
    buf
}

fn read_u32(r: &mut impl Read) -> u32 {
    u32::from_le_bytes(read_exact_buf(r, 4).try_into().unwrap())
}

fn read_u64(r: &mut impl Read) -> u64 {
    u64::from_le_bytes(read_exact_buf(r, 8).try_into().unwrap())
}

/// Decodes one entry, or `None` at clean EOF.
fn read_entry(r: &mut impl Read) -> Option<(Bytes, Record)> {
    let key_len = read_header(r)? as usize;
    let key = Bytes::from(read_exact_buf(r, key_len));
    let live = read_exact_buf(r, 1)[0] != 0;
    let value_len = read_u32(r) as usize;
    let value = live.then(|| Bytes::from(read_exact_buf(r, value_len)));
    let epoch = read_u64(r);
    let seq = read_u64(r);
    let writer = read_u32(r);
    let logical_size = read_u64(r);
    Some((
        key,
        Record {
            value,
            version: Version::new(epoch, seq, writer),
            logical_size,
        },
    ))
}

/// One immutable sorted run on disk plus its in-memory sparse index.
#[derive(Debug)]
struct SsTable {
    path: PathBuf,
    file: File,
    /// `(first key of block, byte offset)` every [`INDEX_EVERY`] entries;
    /// always pins the run's first entry.
    index: Vec<(Bytes, u64)>,
    bytes: u64,
}

impl SsTable {
    /// Opens a run, scanning it once to rebuild the sparse index.
    fn open(path: PathBuf) -> Self {
        let file = File::open(&path).expect("lsm: open sstable");
        let bytes = file.metadata().expect("lsm: stat sstable").len();
        let mut index = Vec::new();
        let mut reader = BufReader::new(&file);
        let mut offset = 0u64;
        let mut n = 0usize;
        while let Some((key, record)) = read_entry(&mut reader) {
            if n % INDEX_EVERY == 0 {
                index.push((key.clone(), offset));
            }
            offset += encoded_len(&key, &record);
            n += 1;
        }
        Self {
            path,
            file,
            index,
            bytes,
        }
    }

    /// Point lookup: seek to the sparse-index floor and scan the block.
    fn get(&self, key: &[u8]) -> Option<Record> {
        let at = self.index.partition_point(|(k, _)| k.as_ref() <= key);
        if at == 0 {
            return None; // key sorts before the run's smallest key
        }
        let start = self.index[at - 1].1;
        let mut reader = BufReader::new(&self.file);
        reader
            .seek(SeekFrom::Start(start))
            .expect("lsm: seek sstable");
        while let Some((k, record)) = read_entry(&mut reader) {
            match k.as_ref().cmp(key) {
                std::cmp::Ordering::Equal => return Some(record),
                std::cmp::Ordering::Greater => return None,
                std::cmp::Ordering::Less => {}
            }
        }
        None
    }

    /// Full scan in key order.
    fn for_each(&self, f: &mut dyn FnMut(Bytes, Record)) {
        let mut reader = BufReader::new(&self.file);
        reader.seek(SeekFrom::Start(0)).expect("lsm: seek sstable");
        while let Some((k, record)) = read_entry(&mut reader) {
            f(k, record);
        }
    }
}

/// A durable log-structured store for one replica of one partition: WAL +
/// `BTreeMap` memtable + sorted runs with sparse indexes. See the module
/// docs for the file layout and the read/write paths.
///
/// Accounting ([`LsmStore::logical_bytes`], [`LsmStore::len`]) follows the
/// in-memory engine's arithmetic exactly; [`LsmStore::physical_bytes`]
/// additionally reports the real on-disk footprint (WAL plus runs) that
/// replication and migration actually move.
#[derive(Debug)]
pub struct LsmStore {
    dir: PathBuf,
    /// False until the first accepted write touches the filesystem.
    initialized: bool,
    wal: Option<File>,
    wal_bytes: u64,
    memtable: BTreeMap<Bytes, Record>,
    /// Encoded size of the memtable (flush trigger).
    memtable_bytes: u64,
    /// Sorted runs, oldest to newest.
    tables: Vec<SsTable>,
    next_table_seq: u64,
    logical_bytes: u64,
    key_count: usize,
    flush_threshold: u64,
}

impl LsmStore {
    /// A fresh, empty store in a process-unique temp directory. No
    /// filesystem state exists until the first accepted write.
    pub fn create() -> Self {
        Self::create_at(fresh_store_dir())
    }

    /// A fresh, empty store rooted at `dir` (created lazily).
    pub fn create_at(dir: PathBuf) -> Self {
        Self {
            dir,
            initialized: false,
            wal: None,
            wal_bytes: 0,
            memtable: BTreeMap::new(),
            memtable_bytes: 0,
            tables: Vec::new(),
            next_table_seq: 0,
            logical_bytes: 0,
            key_count: 0,
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
        }
    }

    /// Opens the store persisted at `dir`: loads every sorted run, replays
    /// the WAL into the memtable, and recomputes exact accounting. A
    /// missing directory opens as a fresh empty store — crash recovery and
    /// cold creation share one entry point.
    pub fn open(dir: PathBuf) -> Self {
        if !dir.is_dir() {
            return Self::create_at(dir);
        }
        let mut seqs: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir).expect("lsm: read store directory") {
            let name = entry.expect("lsm: read dir entry").file_name();
            let name = name.to_string_lossy();
            if let Some(stem) = name.strip_suffix(".sst") {
                if let Ok(seq) = stem.parse::<u64>() {
                    seqs.push(seq);
                }
            }
        }
        seqs.sort_unstable();
        let tables: Vec<SsTable> = seqs
            .iter()
            .map(|seq| SsTable::open(dir.join(format!("{seq:08}.sst"))))
            .collect();
        let next_table_seq = seqs.last().map_or(0, |s| s + 1);
        let mut memtable = BTreeMap::new();
        let mut wal_bytes = 0u64;
        let wal_path = dir.join(WAL_NAME);
        if wal_path.is_file() {
            wal_bytes = fs::metadata(&wal_path).expect("lsm: stat WAL").len();
            let mut reader =
                BufReader::new(File::open(&wal_path).expect("lsm: open WAL for replay"));
            while let Some((key, record)) = read_entry(&mut reader) {
                // Entries were version-gated when first written, so later
                // WAL entries for a key always dominate earlier ones.
                memtable.insert(key, record);
            }
        }
        let memtable_bytes = memtable.iter().map(|(k, r)| encoded_len(k, r)).sum();
        let mut store = Self {
            dir,
            initialized: true,
            wal: None,
            wal_bytes,
            memtable,
            memtable_bytes,
            tables,
            next_table_seq,
            logical_bytes: 0,
            key_count: 0,
            flush_threshold: DEFAULT_FLUSH_THRESHOLD,
        };
        let merged = store.merged();
        store.key_count = merged.len();
        store.logical_bytes = merged.iter().map(|(k, r)| entry_size(k, r)).sum();
        store
    }

    /// Overrides the memtable flush threshold (tests exercise the SSTable
    /// and compaction paths with tiny thresholds).
    pub fn set_flush_threshold(&mut self, bytes: u64) {
        self.flush_threshold = bytes.max(1);
    }

    /// The store's root directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// Number of keys (including tombstones).
    pub fn len(&self) -> usize {
        self.key_count
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.key_count == 0
    }

    /// Logical bytes stored (keys + logical record sizes) — identical
    /// arithmetic to [`PartitionStore::logical_bytes`].
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    /// Real on-disk bytes: the WAL plus every sorted run. This is the
    /// quantity a replica transfer physically streams.
    pub fn physical_bytes(&self) -> u64 {
        self.wal_bytes + self.tables.iter().map(|t| t.bytes).sum::<u64>()
    }

    /// Number of sorted runs currently on disk.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    fn ensure_dir(&mut self) {
        if !self.initialized {
            fs::create_dir_all(&self.dir).expect("lsm: create store directory");
            self.initialized = true;
        }
    }

    fn wal_handle(&mut self) -> &mut File {
        self.ensure_dir();
        if self.wal.is_none() {
            let file = OpenOptions::new()
                .create(true)
                .append(true)
                .open(self.dir.join(WAL_NAME))
                .expect("lsm: open WAL");
            self.wal = Some(file);
        }
        self.wal.as_mut().expect("just opened")
    }

    fn lookup(&self, key: &[u8]) -> Option<Record> {
        if let Some(r) = self.memtable.get(key) {
            return Some(r.clone());
        }
        // Newest run first; the first hit dominates everything older.
        for table in self.tables.iter().rev() {
            if let Some(r) = table.get(key) {
                return Some(r);
            }
        }
        None
    }

    /// Applies `record` under `key` if its version dominates the stored
    /// one; an accepted write is WAL-durable before this returns. Returns
    /// `true` when the store changed.
    pub fn apply(&mut self, key: impl Into<Bytes>, record: Record) -> bool {
        let key = key.into();
        match self.lookup(&key) {
            Some(existing) => {
                if record.version <= existing.version {
                    return false;
                }
                self.logical_bytes -= entry_size(&key, &existing);
            }
            None => self.key_count += 1,
        }
        self.logical_bytes += entry_size(&key, &record);
        let mut buf = Vec::with_capacity(encoded_len(&key, &record) as usize);
        encode_entry(&mut buf, &key, &record);
        let wal = self.wal_handle();
        wal.write_all(&buf).expect("lsm: WAL append");
        wal.flush().expect("lsm: WAL flush");
        self.wal_bytes += buf.len() as u64;
        if let Some(prev) = self.memtable.get(&key) {
            self.memtable_bytes -= encoded_len(&key, prev);
        }
        self.memtable_bytes += buf.len() as u64;
        self.memtable.insert(key, record);
        if self.memtable_bytes >= self.flush_threshold {
            self.flush_memtable();
        }
        true
    }

    /// The record stored under `key`, tombstones included.
    pub fn get(&self, key: &[u8]) -> Option<Record> {
        self.lookup(key)
    }

    /// The live value under `key` (`None` for absent keys *and* tombstones).
    pub fn get_value(&self, key: &[u8]) -> Option<Bytes> {
        self.lookup(key).and_then(|r| r.value)
    }

    /// Flushes the memtable to a fresh sorted run and truncates the WAL.
    pub fn flush(&mut self) {
        self.flush_memtable();
    }

    fn flush_memtable(&mut self) {
        if self.memtable.is_empty() {
            return;
        }
        self.ensure_dir();
        let seq = self.next_table_seq;
        self.next_table_seq += 1;
        let path = self.dir.join(format!("{seq:08}.sst"));
        Self::write_run(&path, self.memtable.iter());
        self.tables.push(SsTable::open(path));
        self.memtable.clear();
        self.memtable_bytes = 0;
        // The flushed entries are durable in the run: truncate the WAL.
        self.wal = None;
        let _ = File::create(self.dir.join(WAL_NAME)).expect("lsm: truncate WAL");
        self.wal_bytes = 0;
        self.maybe_compact();
    }

    fn write_run<'a>(path: &PathBuf, entries: impl Iterator<Item = (&'a Bytes, &'a Record)>) {
        let mut writer = BufWriter::new(File::create(path).expect("lsm: create sstable"));
        let mut buf = Vec::new();
        for (key, record) in entries {
            buf.clear();
            encode_entry(&mut buf, key, record);
            writer.write_all(&buf).expect("lsm: write sstable");
        }
        writer.flush().expect("lsm: flush sstable");
    }

    /// Size-tiered compaction: once more than [`MAX_TABLES`] runs
    /// accumulate, the whole tier collapses into a single run (newest
    /// occurrence of a key wins — which is the version-dominant one, since
    /// every write was gated on entry).
    fn maybe_compact(&mut self) {
        if self.tables.len() <= MAX_TABLES {
            return;
        }
        let mut merged: BTreeMap<Bytes, Record> = BTreeMap::new();
        for table in &self.tables {
            table.for_each(&mut |k, r| {
                merged.insert(k, r);
            });
        }
        let seq = self.next_table_seq;
        self.next_table_seq += 1;
        let path = self.dir.join(format!("{seq:08}.sst"));
        Self::write_run(&path, merged.iter());
        for table in self.tables.drain(..) {
            let _ = fs::remove_file(&table.path);
        }
        self.tables.push(SsTable::open(path));
    }

    /// The merged view of all levels, in key order.
    fn merged(&self) -> BTreeMap<Bytes, Record> {
        let mut merged = BTreeMap::new();
        for table in &self.tables {
            table.for_each(&mut |k, r| {
                merged.insert(k, r);
            });
        }
        for (k, r) in &self.memtable {
            merged.insert(k.clone(), r.clone());
        }
        merged
    }

    /// Visits every entry in key order.
    pub fn for_each(&self, f: &mut dyn FnMut(&Bytes, &Record)) {
        for (k, r) in self.merged().iter() {
            f(k, r);
        }
    }

    /// Materializes the store's contents as an in-memory
    /// [`PartitionStore`] (anti-entropy unions, oracle comparisons).
    pub fn snapshot(&self) -> PartitionStore {
        let mut snap = PartitionStore::new();
        for (k, r) in self.merged() {
            let applied = snap.apply(k, r);
            debug_assert!(applied, "merged view holds one record per key");
        }
        snap
    }

    /// Splits off every key whose ring token falls inside `high` into a
    /// fresh store, compaction-style: both halves are rewritten from the
    /// merged view, so each ends up with one clean run's worth of state.
    pub fn split_off(&mut self, hasher: KeyHasher, high: KeyRange) -> LsmStore {
        let merged = self.merged();
        self.reset_storage();
        let mut high_store = LsmStore::create();
        high_store.set_flush_threshold(self.flush_threshold);
        for (key, record) in merged {
            if high.contains(hasher.token(&key)) {
                high_store.apply(key, record);
            } else {
                self.apply(key, record);
            }
        }
        high_store
    }

    /// Deletes all on-disk state and zeroes the accounting (the rewrite
    /// half of [`LsmStore::split_off`]).
    fn reset_storage(&mut self) {
        for table in self.tables.drain(..) {
            let _ = fs::remove_file(&table.path);
        }
        self.wal = None;
        if self.initialized {
            let _ = fs::remove_file(self.dir.join(WAL_NAME));
        }
        self.wal_bytes = 0;
        self.memtable.clear();
        self.memtable_bytes = 0;
        self.logical_bytes = 0;
        self.key_count = 0;
    }

    /// Merges every entry of `other` into `self`; version-dominant records
    /// win.
    pub fn absorb(&mut self, other: LsmStore) {
        for (key, record) in other.merged() {
            self.apply(key, record);
        }
    }

    /// Merges clones of an in-memory store's entries into `self`.
    pub fn merge_from(&mut self, other: &PartitionStore) {
        for (key, record) in other.iter() {
            self.apply(key.clone(), record.clone());
        }
    }

    /// Replicates this store into a fresh directory by physically copying
    /// the WAL and every sorted run, then opening the copy (which replays
    /// the WAL — the same code path crash recovery takes). Returns the new
    /// store and the **measured** bytes actually copied; this is the real
    /// data-transfer volume of a replication.
    pub fn fork(&self) -> (LsmStore, u64) {
        let dst_dir = fresh_store_dir();
        if !self.initialized {
            return (LsmStore::create_at(dst_dir), 0);
        }
        fs::create_dir_all(&dst_dir).expect("lsm: create fork directory");
        let mut copied = 0u64;
        for table in &self.tables {
            let name = table.path.file_name().expect("sstable has a file name");
            copied += fs::copy(&table.path, dst_dir.join(name)).expect("lsm: copy sstable");
        }
        let wal_path = self.dir.join(WAL_NAME);
        if wal_path.is_file() {
            copied += fs::copy(&wal_path, dst_dir.join(WAL_NAME)).expect("lsm: copy WAL");
        }
        let mut fork = LsmStore::open(dst_dir);
        fork.set_flush_threshold(self.flush_threshold);
        (fork, copied)
    }
}

impl Drop for LsmStore {
    fn drop(&mut self) {
        if self.initialized {
            // Best-effort cleanup; a leaked temp dir is harmless.
            let _ = fs::remove_dir_all(&self.dir);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skute_ring::Token;

    fn rec(v: &[u8], version: u64) -> Record {
        Record::put(v.to_vec(), Version::new(version, 0, 0))
    }

    /// Applies the same operation stream to both engines and asserts the
    /// observable state matches bit-for-bit.
    fn assert_matches_oracle(ops: &[(&[u8], Record)]) {
        let mut mem = PartitionStore::new();
        let mut lsm = LsmStore::create();
        lsm.set_flush_threshold(64); // force frequent flushes + compactions
        for (key, record) in ops {
            let a = mem.apply(key.to_vec(), record.clone());
            let b = lsm.apply(key.to_vec(), record.clone());
            assert_eq!(a, b, "apply gating diverged on key {key:?}");
        }
        assert_eq!(mem.len(), lsm.len());
        assert_eq!(mem.logical_bytes(), lsm.logical_bytes());
        for (key, record) in mem.iter() {
            assert_eq!(lsm.get(key).as_ref(), Some(record));
        }
        let snap = lsm.snapshot();
        assert_eq!(snap.len(), mem.len());
        assert_eq!(snap.logical_bytes(), mem.logical_bytes());
    }

    #[test]
    fn apply_get_matches_memory_engine() {
        let ops: Vec<(&[u8], Record)> = vec![
            (b"a", rec(b"1", 1)),
            (b"b", rec(b"22", 1)),
            (b"a", rec(b"333", 2)),
            (b"a", rec(b"stale", 1)),                         // rejected
            (b"c", Record::tombstone(Version::new(1, 0, 0))), // tombstone
            (b"b", Record::tombstone(Version::new(2, 0, 0))),
        ];
        assert_matches_oracle(&ops);
    }

    #[test]
    fn many_keys_cross_flush_and_compaction() {
        let mut ops = Vec::new();
        let keys: Vec<Vec<u8>> = (0..300u32).map(|i| i.to_le_bytes().to_vec()).collect();
        for (i, k) in keys.iter().enumerate() {
            ops.push((k.as_slice(), rec(b"payload-bytes", 1 + (i % 3) as u64)));
        }
        // Re-writes with higher versions land on top of flushed runs.
        for k in keys.iter().step_by(7) {
            ops.push((k.as_slice(), rec(b"rewritten", 9)));
        }
        let mut mem = PartitionStore::new();
        let mut lsm = LsmStore::create();
        lsm.set_flush_threshold(256);
        for (key, record) in &ops {
            assert_eq!(
                mem.apply(key.to_vec(), record.clone()),
                lsm.apply(key.to_vec(), record.clone())
            );
        }
        assert!(lsm.table_count() >= 1, "flushes produced sorted runs");
        assert!(
            lsm.table_count() <= MAX_TABLES + 1,
            "compaction bounds the tier"
        );
        assert_eq!(mem.logical_bytes(), lsm.logical_bytes());
        for (key, record) in mem.iter() {
            assert_eq!(lsm.get(key).as_ref(), Some(record), "key {key:?}");
        }
        assert!(lsm.physical_bytes() > 0);
    }

    #[test]
    fn split_off_matches_memory_engine() {
        let hasher = KeyHasher::default();
        let mut mem = PartitionStore::new();
        let mut lsm = LsmStore::create();
        lsm.set_flush_threshold(128);
        for i in 0..120u32 {
            let key = i.to_le_bytes().to_vec();
            mem.apply(key.clone(), rec(b"v", 1));
            lsm.apply(key, rec(b"v", 1));
        }
        let high = KeyRange::new(Token(1 << 62), Token(u64::MAX / 2));
        let mem_high = mem.split_off(hasher, high);
        let lsm_high = lsm.split_off(hasher, high);
        assert_eq!(mem.len(), lsm.len());
        assert_eq!(mem_high.len(), lsm_high.len());
        assert_eq!(mem.logical_bytes(), lsm.logical_bytes());
        assert_eq!(mem_high.logical_bytes(), lsm_high.logical_bytes());
        for (key, record) in mem_high.iter() {
            assert_eq!(lsm_high.get(key).as_ref(), Some(record));
        }
    }

    #[test]
    fn wal_replay_recovers_after_kill() {
        let dir = fresh_store_dir();
        let mut store = LsmStore::create_at(dir.clone());
        store.set_flush_threshold(128);
        let mut oracle = PartitionStore::new();
        for i in 0..40u32 {
            let key = i.to_le_bytes().to_vec();
            let record = rec(b"crash-me", 1);
            oracle.apply(key.clone(), record.clone());
            store.apply(key, record);
        }
        // Newer versions sit in the WAL on top of flushed runs.
        for i in 0..10u32 {
            let key = i.to_le_bytes().to_vec();
            let record = rec(b"wal-only", 5);
            oracle.apply(key.clone(), record.clone());
            store.apply(key, record);
        }
        let expected_bytes = store.logical_bytes();
        // Simulate kill -9: no graceful close, no Drop cleanup — the only
        // durable state is what apply() already flushed.
        std::mem::forget(store);
        let recovered = LsmStore::open(dir);
        assert_eq!(recovered.len(), oracle.len());
        assert_eq!(recovered.logical_bytes(), expected_bytes);
        for (key, record) in oracle.iter() {
            assert_eq!(recovered.get(key).as_ref(), Some(record), "key {key:?}");
        }
    }

    #[test]
    fn fork_copies_real_bytes_and_matches_source() {
        let mut store = LsmStore::create();
        store.set_flush_threshold(128);
        for i in 0..60u32 {
            store.apply(i.to_le_bytes().to_vec(), rec(b"forked-payload", 1));
        }
        let (fork, copied) = store.fork();
        assert_eq!(copied, store.physical_bytes(), "fork streams every byte");
        assert!(copied > 0);
        assert_eq!(fork.len(), store.len());
        assert_eq!(fork.logical_bytes(), store.logical_bytes());
        for (key, record) in store.snapshot().iter() {
            assert_eq!(fork.get(key).as_ref(), Some(record));
        }
    }

    #[test]
    fn empty_store_touches_no_filesystem() {
        let dir = fresh_store_dir();
        let store = LsmStore::create_at(dir.clone());
        assert!(!dir.exists(), "lazy init: no write, no directory");
        assert_eq!(store.physical_bytes(), 0);
        let (fork, copied) = store.fork();
        assert_eq!(copied, 0);
        assert!(fork.is_empty());
    }
}
