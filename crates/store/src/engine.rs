//! The per-replica partition storage engine.

use std::collections::BTreeMap;

use bytes::Bytes;
use skute_ring::{KeyHasher, KeyRange};

use crate::value::Record;

/// In-memory store for one replica of one partition: an ordered map from
/// key to [`Record`] with exact logical-size accounting.
///
/// Writes are version-gated: an incoming record only lands if its version
/// dominates the stored one (making replica application idempotent and
/// order-insensitive for LWW). Size accounting counts key bytes plus the
/// record's logical size, so that the 256 MB partition cap and the storage
/// saturation experiment see the byte volumes the paper intends.
#[derive(Debug, Clone, Default)]
pub struct PartitionStore {
    records: BTreeMap<Bytes, Record>,
    logical_bytes: u64,
}

impl PartitionStore {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys (including tombstones).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Logical bytes stored (keys + logical record sizes).
    pub fn logical_bytes(&self) -> u64 {
        self.logical_bytes
    }

    fn entry_size(key: &Bytes, record: &Record) -> u64 {
        key.len() as u64 + record.logical_size
    }

    /// Applies `record` under `key` if its version dominates the stored one.
    /// Returns `true` when the store changed.
    pub fn apply(&mut self, key: impl Into<Bytes>, record: Record) -> bool {
        let key = key.into();
        match self.records.get_mut(&key) {
            Some(existing) => {
                if record.version <= existing.version {
                    return false;
                }
                self.logical_bytes -= Self::entry_size(&key, existing);
                self.logical_bytes += Self::entry_size(&key, &record);
                *existing = record;
                true
            }
            None => {
                self.logical_bytes += Self::entry_size(&key, &record);
                self.records.insert(key, record);
                true
            }
        }
    }

    /// The record stored under `key`, tombstones included.
    pub fn get(&self, key: &[u8]) -> Option<&Record> {
        self.records.get(key)
    }

    /// The live value under `key` (`None` for absent keys *and* tombstones).
    pub fn get_value(&self, key: &[u8]) -> Option<&Bytes> {
        self.records.get(key).and_then(|r| r.value.as_ref())
    }

    /// Physically removes a key (compaction of tombstones; not a deletion —
    /// deletions go through [`PartitionStore::apply`] with a tombstone).
    pub fn evict(&mut self, key: &[u8]) -> Option<Record> {
        if let Some((k, r)) = self.records.remove_entry(key) {
            self.logical_bytes -= Self::entry_size(&k, &r);
            Some(r)
        } else {
            None
        }
    }

    /// Iterates over all entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&Bytes, &Record)> {
        self.records.iter()
    }

    /// Splits off every key whose ring token falls inside `high`, returning
    /// the stripped-out store. Used when a partition exceeds the 256 MB cap
    /// and splits in two: `self` keeps the low half, the return value is the
    /// high half.
    pub fn split_off(&mut self, hasher: KeyHasher, high: KeyRange) -> PartitionStore {
        let mut high_store = PartitionStore::new();
        let keys: Vec<Bytes> = self
            .records
            .keys()
            .filter(|k| high.contains(hasher.token(k)))
            .cloned()
            .collect();
        for key in keys {
            if let Some((k, r)) = self.records.remove_entry(&key) {
                self.logical_bytes -= Self::entry_size(&k, &r);
                high_store.logical_bytes += Self::entry_size(&k, &r);
                high_store.records.insert(k, r);
            }
        }
        high_store
    }

    /// Merges every entry of `other` into `self` (anti-entropy after a
    /// replica transfer); version-dominant records win.
    pub fn absorb(&mut self, other: PartitionStore) {
        for (key, record) in other.records {
            self.apply(key, record);
        }
    }

    /// [`PartitionStore::absorb`] without taking ownership: merges clones
    /// of `other`'s entries into `self`. Record payloads are ref-counted
    /// [`Bytes`], so this copies handles, not data — the anti-entropy union
    /// builder uses it to fold every replica in without cloning whole
    /// stores first.
    pub fn merge_from(&mut self, other: &PartitionStore) {
        for (key, record) in &other.records {
            self.apply(key.clone(), record.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Version;
    use proptest::prelude::*;
    use skute_ring::Token;

    fn rec(v: &[u8], version: u64) -> Record {
        Record::put(v.to_vec(), Version::new(version, 0, 0))
    }

    #[test]
    fn apply_get_roundtrip() {
        let mut s = PartitionStore::new();
        assert!(s.apply(&b"k"[..], rec(b"value", 1)));
        assert_eq!(s.get_value(b"k").unwrap().as_ref(), b"value");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn stale_write_is_rejected() {
        let mut s = PartitionStore::new();
        assert!(s.apply(&b"k"[..], rec(b"new", 5)));
        assert!(!s.apply(&b"k"[..], rec(b"old", 3)));
        assert!(!s.apply(&b"k"[..], rec(b"same", 5)));
        assert_eq!(s.get_value(b"k").unwrap().as_ref(), b"new");
    }

    #[test]
    fn size_accounting_tracks_updates() {
        let mut s = PartitionStore::new();
        assert!(s.apply(&b"key"[..], rec(b"12345", 1)));
        assert_eq!(s.logical_bytes(), 3 + 5);
        assert!(s.apply(&b"key"[..], rec(b"123456789", 2)));
        assert_eq!(s.logical_bytes(), 3 + 9);
        assert!(s.apply(&b"key"[..], Record::tombstone(Version::new(3, 0, 0))));
        assert_eq!(s.logical_bytes(), 3, "tombstone keeps only the key weight");
        s.evict(b"key");
        assert_eq!(s.logical_bytes(), 0);
        assert!(s.is_empty());
    }

    #[test]
    fn synthetic_sizes_count_logically() {
        let mut s = PartitionStore::new();
        let r = Record::put_sized(Bytes::new(), Version::new(1, 0, 0), 500 * 1024);
        assert!(s.apply(&b"obj"[..], r));
        assert_eq!(s.logical_bytes(), 3 + 500 * 1024);
    }

    #[test]
    fn tombstone_hides_value_but_is_stored() {
        let mut s = PartitionStore::new();
        assert!(s.apply(&b"k"[..], rec(b"v", 1)));
        assert!(s.apply(&b"k"[..], Record::tombstone(Version::new(2, 0, 0))));
        assert!(s.get_value(b"k").is_none());
        assert!(s.get(b"k").unwrap().is_tombstone());
    }

    #[test]
    fn split_off_partitions_by_token() {
        let hasher = KeyHasher::default();
        let mut s = PartitionStore::new();
        for i in 0..200u32 {
            assert!(s.apply(i.to_le_bytes().to_vec(), rec(b"v", 1)));
        }
        let total_before = s.logical_bytes();
        let full = KeyRange::full();
        let (low, high) = full.split();
        let high_store = s.split_off(hasher, high);
        assert_eq!(s.len() + high_store.len(), 200);
        assert_eq!(s.logical_bytes() + high_store.logical_bytes(), total_before);
        assert!(
            !high_store.is_empty(),
            "uniform hash should land keys in both halves"
        );
        assert!(!s.is_empty());
        for (k, _) in s.iter() {
            assert!(low.contains(hasher.token(k)));
        }
        for (k, _) in high_store.iter() {
            assert!(high.contains(hasher.token(k)));
        }
    }

    #[test]
    fn absorb_merges_with_version_dominance() {
        let mut a = PartitionStore::new();
        let mut b = PartitionStore::new();
        assert!(a.apply(&b"x"[..], rec(b"a-old", 1)));
        assert!(b.apply(&b"x"[..], rec(b"b-new", 2)));
        assert!(b.apply(&b"y"[..], rec(b"only-b", 1)));
        a.absorb(b);
        assert_eq!(a.get_value(b"x").unwrap().as_ref(), b"b-new");
        assert_eq!(a.get_value(b"y").unwrap().as_ref(), b"only-b");
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn merge_from_matches_absorb_and_leaves_source_intact() {
        let mut a = PartitionStore::new();
        let mut b = PartitionStore::new();
        assert!(a.apply(&b"x"[..], rec(b"a-old", 1)));
        assert!(b.apply(&b"x"[..], rec(b"b-new", 2)));
        assert!(b.apply(&b"y"[..], rec(b"only-b", 1)));
        a.merge_from(&b);
        assert_eq!(a.get_value(b"x").unwrap().as_ref(), b"b-new");
        assert_eq!(a.get_value(b"y").unwrap().as_ref(), b"only-b");
        assert_eq!(b.len(), 2, "source is untouched");
        assert_eq!(b.get_value(b"y").unwrap().as_ref(), b"only-b");
    }

    proptest! {
        #[test]
        fn prop_size_accounting_is_exact(
            ops in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 1..6),
                 proptest::collection::vec(any::<u8>(), 0..10),
                 0u64..6),
                0..40,
            )
        ) {
            let mut s = PartitionStore::new();
            for (key, value, version) in ops {
                let _ = s.apply(key, Record::put(value, Version::new(version, 0, 0)));
            }
            let expect: u64 = s
                .iter()
                .map(|(k, r)| k.len() as u64 + r.logical_size)
                .sum();
            prop_assert_eq!(s.logical_bytes(), expect);
        }

        #[test]
        fn prop_split_off_conserves_everything(
            keys in proptest::collection::hash_set(
                proptest::collection::vec(any::<u8>(), 1..8), 1..50
            ),
            cut in any::<u64>(),
        ) {
            let hasher = KeyHasher::default();
            let mut s = PartitionStore::new();
            for key in &keys {
                let _ = s.apply(key.clone(), rec(b"v", 1));
            }
            let bytes_before = s.logical_bytes();
            let len_before = s.len();
            let high = KeyRange::new(Token(cut), Token(cut.wrapping_add(u64::MAX / 2)));
            let high_store = s.split_off(hasher, high);
            prop_assert_eq!(s.len() + high_store.len(), len_before);
            prop_assert_eq!(s.logical_bytes() + high_store.logical_bytes(), bytes_before);
            for (k, _) in high_store.iter() {
                prop_assert!(high.contains(hasher.token(k)));
            }
            for (k, _) in s.iter() {
                prop_assert!(!high.contains(hasher.token(k)));
            }
        }
    }
}
