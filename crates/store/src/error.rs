//! Storage-layer errors.

use std::fmt;

/// Errors produced by the storage substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// An operation could not assemble the required quorum.
    QuorumNotMet {
        /// Responses/acks required.
        needed: usize,
        /// Responses/acks obtained.
        got: usize,
    },
    /// A quorum configuration violated `1 ≤ r,w ≤ n`.
    InvalidQuorum {
        /// Configured replica count.
        n: usize,
        /// Configured read quorum.
        r: usize,
        /// Configured write quorum.
        w: usize,
    },
    /// No replica of the partition is currently reachable.
    NoReplicas,
    /// A write could not be placed because storage capacity ran out.
    CapacityExceeded,
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::QuorumNotMet { needed, got } => {
                write!(f, "quorum not met: needed {needed}, got {got}")
            }
            StoreError::InvalidQuorum { n, r, w } => {
                write!(f, "invalid quorum config: n={n}, r={r}, w={w}")
            }
            StoreError::NoReplicas => f.write_str("no replicas reachable"),
            StoreError::CapacityExceeded => f.write_str("storage capacity exceeded"),
        }
    }
}

impl std::error::Error for StoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(
            StoreError::QuorumNotMet { needed: 2, got: 1 }.to_string(),
            "quorum not met: needed 2, got 1"
        );
        assert_eq!(
            StoreError::InvalidQuorum { n: 3, r: 0, w: 1 }.to_string(),
            "invalid quorum config: n=3, r=0, w=1"
        );
        assert_eq!(StoreError::NoReplicas.to_string(), "no replicas reachable");
        assert_eq!(
            StoreError::CapacityExceeded.to_string(),
            "storage capacity exceeded"
        );
    }
}
