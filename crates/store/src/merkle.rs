//! Merkle summaries for anti-entropy between replicas.
//!
//! Replicas of a partition converge through synchronous writes, but failed
//! applies (a full server skipping a write) leave divergence behind. The
//! Dynamo lineage the paper builds on (§I, ref. \[5\]) detects divergence
//! cheaply with Merkle trees: replicas exchange O(log n) digests and only
//! ship the key ranges that actually differ.
//!
//! [`MerkleSummary`] hashes a [`PartitionStore`] into a fixed number of
//! token-range buckets (leaves) plus a root digest; [`diff_buckets`] finds
//! the buckets two summaries disagree on, and
//! [`PartitionStore::absorb`](crate::PartitionStore::absorb) repairs them.
//! [`MerkleBuilder`] is the incremental form: any storage backend feeds it
//! one entry at a time, so a summary never requires materializing an
//! in-memory store first.

use skute_ring::{KeyHasher, KeyRange, Token};

use crate::engine::PartitionStore;
use crate::value::Record;

/// A bucketed Merkle summary of a partition store over a key range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MerkleSummary {
    range: KeyRange,
    buckets: Vec<u64>,
    root: u64,
}

/// FNV-1a-style mix of a 64-bit value into an accumulator.
#[inline]
fn mix(acc: u64, v: u64) -> u64 {
    (acc ^ v).wrapping_mul(0x0000_0100_0000_01b3)
}

/// Order-independent bucket accumulation: XOR of per-entry digests, so the
/// digest is identical regardless of insertion order.
#[inline]
fn entry_digest(key: &[u8], version: (u64, u64, u32), logical_size: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h = mix(h, u64::from(b));
    }
    h = mix(h, version.0);
    h = mix(h, version.1);
    h = mix(h, u64::from(version.2));
    h = mix(h, logical_size);
    // Finalize so single-bit differences avalanche.
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^ (h >> 33)
}

/// Incremental [`MerkleSummary`] construction: feed entries one at a time
/// (in any order — bucket accumulation is order-independent) and
/// [`finish`](MerkleBuilder::finish). This is how non-in-memory backends
/// summarize themselves without building a [`PartitionStore`] copy.
#[derive(Debug, Clone)]
pub struct MerkleBuilder {
    hasher: KeyHasher,
    range: KeyRange,
    acc: Vec<u64>,
}

impl MerkleBuilder {
    /// A builder over `range` with `buckets` equal token slices.
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn new(hasher: KeyHasher, range: KeyRange, buckets: usize) -> Self {
        assert!(buckets > 0, "need at least one bucket");
        Self {
            hasher,
            range,
            acc: vec![0u64; buckets],
        }
    }

    /// Folds one entry into its bucket; entries outside the range are
    /// ignored.
    pub fn add(&mut self, key: &[u8], record: &Record) {
        let token = self.hasher.token(key);
        if !self.range.contains(token) {
            return;
        }
        let buckets = self.acc.len();
        let offset = u128::from(token.0.wrapping_sub(self.range.start.0).wrapping_sub(1));
        let idx = ((offset * buckets as u128) / self.range.width()) as usize;
        let idx = idx.min(buckets - 1);
        let v = record.version;
        self.acc[idx] ^= entry_digest(key, (v.epoch, v.seq, v.writer), record.logical_size);
    }

    /// Seals the buckets into a summary.
    pub fn finish(self) -> MerkleSummary {
        let root = self.acc.iter().fold(0xdead_beefu64, |a, &b| mix(a, b));
        MerkleSummary {
            range: self.range,
            buckets: self.acc,
            root,
        }
    }
}

impl MerkleSummary {
    /// Summarizes `store` over `range` into `buckets` equal token slices.
    ///
    /// # Panics
    /// Panics if `buckets == 0`.
    pub fn build(
        store: &PartitionStore,
        hasher: KeyHasher,
        range: KeyRange,
        buckets: usize,
    ) -> Self {
        let mut builder = MerkleBuilder::new(hasher, range, buckets);
        for (key, record) in store.iter() {
            builder.add(key, record);
        }
        builder.finish()
    }

    /// The summarized key range.
    pub fn range(&self) -> KeyRange {
        self.range
    }

    /// The root digest; equal roots mean (with overwhelming probability)
    /// equal contents.
    pub fn root(&self) -> u64 {
        self.root
    }

    /// Number of leaf buckets.
    pub fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// The token sub-range covered by bucket `idx`.
    ///
    /// # Panics
    /// Panics if `idx` is out of range.
    pub fn bucket_range(&self, idx: usize) -> KeyRange {
        assert!(idx < self.buckets.len(), "bucket {idx} out of range");
        let width = self.range.width();
        let n = self.buckets.len() as u128;
        let lo = (width * idx as u128) / n;
        let hi = (width * (idx as u128 + 1)) / n;
        let start = Token(self.range.start.0.wrapping_add(lo as u64));
        let end = Token(self.range.start.0.wrapping_add(hi as u64));
        KeyRange::new(start, end)
    }
}

/// Indices of the buckets on which two summaries disagree.
///
/// # Panics
/// Panics if the summaries cover different ranges or bucket counts —
/// comparing them would be meaningless.
pub fn diff_buckets(a: &MerkleSummary, b: &MerkleSummary) -> Vec<usize> {
    assert_eq!(a.range, b.range, "summaries must cover the same range");
    assert_eq!(
        a.buckets.len(),
        b.buckets.len(),
        "summaries must use the same bucket count"
    );
    if a.root == b.root {
        return Vec::new();
    }
    a.buckets
        .iter()
        .zip(&b.buckets)
        .enumerate()
        .filter(|(_, (x, y))| x != y)
        .map(|(i, _)| i)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Record, Version};
    use proptest::prelude::*;

    fn store_with(keys: &[(&[u8], u64)]) -> PartitionStore {
        let mut s = PartitionStore::new();
        for (key, version) in keys {
            let _ = s.apply(
                key.to_vec(),
                Record::put(&b"v"[..], Version::new(*version, 0, 0)),
            );
        }
        s
    }

    #[test]
    fn identical_stores_have_identical_summaries() {
        let hasher = KeyHasher::default();
        let a = store_with(&[(b"x", 1), (b"y", 2), (b"z", 3)]);
        let b = store_with(&[(b"z", 3), (b"x", 1), (b"y", 2)]); // other order
        let sa = MerkleSummary::build(&a, hasher, KeyRange::full(), 16);
        let sb = MerkleSummary::build(&b, hasher, KeyRange::full(), 16);
        assert_eq!(sa.root(), sb.root());
        assert!(diff_buckets(&sa, &sb).is_empty());
    }

    #[test]
    fn divergence_is_detected_and_localized() {
        let hasher = KeyHasher::default();
        let a = store_with(&[(b"x", 1), (b"y", 2)]);
        let mut b = store_with(&[(b"x", 1), (b"y", 2)]);
        let _ = b.apply(&b"y"[..], Record::put(&b"new"[..], Version::new(9, 0, 0)));
        let sa = MerkleSummary::build(&a, hasher, KeyRange::full(), 64);
        let sb = MerkleSummary::build(&b, hasher, KeyRange::full(), 64);
        assert_ne!(sa.root(), sb.root());
        let diff = diff_buckets(&sa, &sb);
        assert_eq!(diff.len(), 1, "one changed key lands in one bucket");
        // The differing bucket must cover y's token.
        let y_token = hasher.token(b"y");
        assert!(sa.bucket_range(diff[0]).contains(y_token));
    }

    #[test]
    fn missing_key_is_divergence() {
        let hasher = KeyHasher::default();
        let a = store_with(&[(b"x", 1), (b"y", 2)]);
        let b = store_with(&[(b"x", 1)]);
        let sa = MerkleSummary::build(&a, hasher, KeyRange::full(), 8);
        let sb = MerkleSummary::build(&b, hasher, KeyRange::full(), 8);
        assert!(!diff_buckets(&sa, &sb).is_empty());
    }

    #[test]
    fn bucket_ranges_tile_the_summary_range() {
        let hasher = KeyHasher::default();
        let s = store_with(&[(b"x", 1)]);
        let summary = MerkleSummary::build(&s, hasher, KeyRange::full(), 7);
        let total: u128 = (0..7).map(|i| summary.bucket_range(i).width()).sum();
        assert_eq!(total, 1u128 << 64);
        // Adjacent buckets share boundaries.
        for i in 0..6 {
            assert_eq!(
                summary.bucket_range(i).end,
                summary.bucket_range(i + 1).start
            );
        }
    }

    #[test]
    fn absorb_repairs_detected_divergence() {
        let hasher = KeyHasher::default();
        let full = KeyRange::full();
        let a = store_with(&[(b"k1", 1), (b"k2", 5), (b"k3", 1)]);
        let b = store_with(&[(b"k1", 1), (b"k2", 2), (b"k4", 7)]);
        let mut repaired = b.clone();
        repaired.absorb(a.clone());
        let mut repaired_other = a.clone();
        repaired_other.absorb(b.clone());
        // After mutual absorption both sides summarize identically.
        let sa = MerkleSummary::build(&repaired, hasher, full, 32);
        let sb = MerkleSummary::build(&repaired_other, hasher, full, 32);
        assert_eq!(sa.root(), sb.root());
    }

    #[test]
    #[should_panic(expected = "same range")]
    fn mismatched_ranges_rejected() {
        let hasher = KeyHasher::default();
        let s = PartitionStore::new();
        let a = MerkleSummary::build(&s, hasher, KeyRange::full(), 4);
        let half = KeyRange::full().split().0;
        let b = MerkleSummary::build(&s, hasher, half, 4);
        let _ = diff_buckets(&a, &b);
    }

    proptest! {
        #[test]
        fn prop_summary_order_independent(
            mut keys in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 1..6), 0u64..5), 0..24
            ),
            rotate in 0usize..24,
        ) {
            let hasher = KeyHasher::default();
            let build = |entries: &[(Vec<u8>, u64)]| {
                let mut s = PartitionStore::new();
                for (k, v) in entries {
                    let _ = s.apply(k.clone(), Record::put(&b"v"[..], Version::new(*v, 0, 0)));
                }
                MerkleSummary::build(&s, hasher, KeyRange::full(), 16)
            };
            let original = build(&keys);
            if !keys.is_empty() {
                let r = rotate % keys.len();
                keys.rotate_left(r);
            }
            let rotated = build(&keys);
            prop_assert_eq!(original.root(), rotated.root());
        }

        #[test]
        fn prop_equal_roots_imply_no_diff(
            keys in proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 1..5), 0u64..4), 0..16
            ),
        ) {
            let hasher = KeyHasher::default();
            let mut s = PartitionStore::new();
            for (k, v) in &keys {
                let _ = s.apply(k.clone(), Record::put(&b"v"[..], Version::new(*v, 0, 0)));
            }
            let a = MerkleSummary::build(&s, hasher, KeyRange::full(), 8);
            let b = MerkleSummary::build(&s, hasher, KeyRange::full(), 8);
            prop_assert_eq!(diff_buckets(&a, &b), Vec::<usize>::new());
        }
    }
}
