//! Deterministic storage-fault injection: seeded [`FaultPlan`]s and the
//! per-store [`FaultInjector`] the LSM engine consults inside its IO path.
//!
//! The paper's availability claims are only meaningful if the substrate
//! survives the failures it models, so faults here are a first-class,
//! *reproducible* workload rather than ad-hoc test scaffolding:
//!
//! * a [`FaultPlan`] is a `Copy` value — a named fault family
//!   ([`FaultPlanKind`]) plus a 64-bit seed — carried by the cloud
//!   configuration and inherited by every store a replica forks or splits
//!   off;
//! * each [`LsmStore`](crate::LsmStore) with an active plan owns a
//!   [`FaultInjector`]: a counter-based splitmix64 stream derived from the
//!   plan seed and a per-store identity, so fault decisions depend only on
//!   the plan and the (deterministic, main-thread) order of store
//!   creations — never on wall clock, thread scheduling, or pointer
//!   addresses;
//! * every injected fault is **transient by construction**: the injector
//!   caps consecutive faults at one hook ([`MAX_CONSECUTIVE_FAULTS`]) below
//!   the engine's bounded retry budget, so recovery always converges and
//!   the *logical* state of a faulted store stays bit-identical to an
//!   unfaulted run. Degradation surfaces only in physical-IO statistics
//!   ([`FaultStats`]) and in the `measured_*` transfer bytes the economics
//!   observe.
//!
//! The module also hosts the IEEE CRC32 used by the WAL-record and
//! SSTable-entry checksums ([`crc32`]).

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};

/// Named fault families selectable via `skute-sim --fault-plan`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FaultPlanKind {
    /// No faults (the default): the injector is never constructed.
    #[default]
    None,
    /// WAL appends tear: only a prefix of the record reaches the log
    /// before the simulated fsync fails; the engine truncates the torn
    /// tail back to the acked offset and retries.
    TornTails,
    /// WAL fsyncs fail transiently with the record fully written; the
    /// engine treats the record as unacked, rewinds, and retries.
    FlakyFsync,
    /// SSTable flushes tear partway through the run; the engine discards
    /// the partial file and rewrites it.
    PartialFlush,
    /// Verification scans see transient bit flips (checksum mismatches on
    /// otherwise-clean files); the engine re-reads.
    BitFlips,
    /// Every **storage** fault family above at once.
    All,
    /// Gray failures: per-server degraded modes derived from the fault
    /// stream per epoch window ([`GrayMode`]) — servers that serve reads
    /// but fail writes (`read_only`), respond slowly (`slow`), or sit
    /// behind a network cut (`partitioned`) — plus a rotating continental
    /// split. No storage faults are injected; degradation surfaces
    /// through the confidence score, write acks and the serving path's
    /// reachability instead of through IO.
    Gray,
    /// Network partition only: one continent per epoch window is cut off
    /// from the rest of the cloud (derived from the fault stream, see
    /// [`FaultPlan::partitioned_continent`]); servers stay individually
    /// healthy.
    Partition,
}

impl FaultPlanKind {
    /// Stable lowercase name, as accepted by `skute-sim --fault-plan`.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultPlanKind::None => "none",
            FaultPlanKind::TornTails => "torn-tails",
            FaultPlanKind::FlakyFsync => "flaky-fsync",
            FaultPlanKind::PartialFlush => "partial-flush",
            FaultPlanKind::BitFlips => "bit-flips",
            FaultPlanKind::All => "all",
            FaultPlanKind::Gray => "gray",
            FaultPlanKind::Partition => "partition",
        }
    }
}

impl fmt::Display for FaultPlanKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for FaultPlanKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(FaultPlanKind::None),
            "torn-tails" => Ok(FaultPlanKind::TornTails),
            "flaky-fsync" => Ok(FaultPlanKind::FlakyFsync),
            "partial-flush" => Ok(FaultPlanKind::PartialFlush),
            "bit-flips" => Ok(FaultPlanKind::BitFlips),
            "all" => Ok(FaultPlanKind::All),
            "gray" => Ok(FaultPlanKind::Gray),
            "partition" => Ok(FaultPlanKind::Partition),
            other => Err(format!(
                "unknown fault plan {other:?} (expected \
                 none|torn-tails|flaky-fsync|partial-flush|bit-flips|all\
                 |gray|partition)"
            )),
        }
    }
}

/// Epochs a derived gray mode or continental split holds before
/// re-rolling. Long enough for the confidence EWMA (alpha 0.25) to track
/// a degraded server down, short enough that several distinct fault
/// configurations occur within one CI-sized run.
pub const GRAY_WINDOW_EPOCHS: u64 = 8;

/// The degraded mode of one server under a gray fault plan, derived per
/// epoch window by [`FaultPlan::gray_mode`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GrayMode {
    /// Fully functional (the overwhelmingly common draw).
    #[default]
    Healthy,
    /// Serves reads but fails writes — the classic gray failure: the
    /// server acks nothing, so its replicas silently diverge until a
    /// quorum read or scrub repairs them.
    ReadOnly,
    /// Responds, but `units` deterministic latency units late; the
    /// confidence EWMA prices it down proportionally.
    Slow {
        /// Added latency in deterministic units (1..=4).
        units: u32,
    },
    /// Unreachable from everywhere: reads and writes both fail.
    Partitioned,
}

impl GrayMode {
    /// True for any non-healthy mode.
    pub fn is_degraded(self) -> bool {
        self != GrayMode::Healthy
    }

    /// The health sample this mode feeds the confidence EWMA
    /// (1.0 = perfect, towards 0.0 = unusable).
    pub fn health_sample(self) -> f64 {
        match self {
            GrayMode::Healthy => 1.0,
            GrayMode::Slow { units } => 0.6 - 0.05 * f64::from(units.min(4)),
            GrayMode::ReadOnly => 0.35,
            GrayMode::Partitioned => 0.1,
        }
    }
}

/// A seeded, deterministic storage-fault plan: which fault family to
/// inject and the seed every per-store injector stream derives from.
/// `Copy` so it rides inside the (also `Copy`) cloud configuration and is
/// inherited verbatim by forked and split-off stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct FaultPlan {
    /// The fault family to inject.
    pub kind: FaultPlanKind,
    /// Seed of the injector streams (mixed with a per-store identity).
    pub seed: u64,
}

impl FaultPlan {
    /// The inert plan: no faults, no injector.
    pub fn none() -> Self {
        Self::default()
    }

    /// A plan injecting every fault family, seeded with `seed`
    /// (`skute-sim --fault-seed`).
    pub fn all(seed: u64) -> Self {
        Self {
            kind: FaultPlanKind::All,
            seed,
        }
    }

    /// The same plan with a different seed.
    #[must_use]
    pub fn with_seed(self, seed: u64) -> Self {
        Self { seed, ..self }
    }

    /// True when any fault family is enabled.
    pub fn is_active(&self) -> bool {
        self.kind != FaultPlanKind::None
    }

    /// True when the plan injects faults into the storage IO path (and
    /// the LSM engine therefore needs an injector). Gray and partition
    /// plans degrade servers and links, never bytes on disk.
    pub fn has_storage_faults(&self) -> bool {
        matches!(
            self.kind,
            FaultPlanKind::TornTails
                | FaultPlanKind::FlakyFsync
                | FaultPlanKind::PartialFlush
                | FaultPlanKind::BitFlips
                | FaultPlanKind::All
        )
    }

    /// True when the plan derives per-server gray modes
    /// ([`FaultPlan::gray_mode`]).
    pub fn gray_failures(&self) -> bool {
        self.kind == FaultPlanKind::Gray
    }

    /// True when the plan derives a continental network split
    /// ([`FaultPlan::partitioned_continent`]). The gray plan includes the
    /// split so one axis exercises the full taxonomy; the partition plan
    /// is the split alone.
    pub fn continental_partitions(&self) -> bool {
        matches!(self.kind, FaultPlanKind::Gray | FaultPlanKind::Partition)
    }

    /// The per-server gray mode for `server` during `epoch`, a pure
    /// function of `(plan, server, epoch window)`. Modes hold for
    /// [`GRAY_WINDOW_EPOCHS`] consecutive epochs so the confidence EWMA
    /// has time to track them, then re-roll. Non-gray plans always answer
    /// [`GrayMode::Healthy`].
    pub fn gray_mode(&self, server: u64, epoch: u64) -> GrayMode {
        if !self.gray_failures() {
            return GrayMode::Healthy;
        }
        let window = epoch / GRAY_WINDOW_EPOCHS;
        let h = splitmix64(
            self.seed
                ^ splitmix64(server.wrapping_mul(0xA24B_AED4_963E_E407))
                ^ splitmix64(window.wrapping_mul(0x9FB2_1C65_1E98_DF25)),
        );
        match h % 100 {
            0..=5 => GrayMode::ReadOnly,
            6..=13 => GrayMode::Slow {
                units: 1 + ((h >> 8) % 4) as u32,
            },
            14..=16 => GrayMode::Partitioned,
            _ => GrayMode::Healthy,
        }
    }

    /// The continent cut off from the rest of the cloud during `epoch`
    /// (`continents` is the topology's continent count), a pure function
    /// of `(plan, epoch window)`. `None` for plans without a continental
    /// split or when the topology has fewer than two continents.
    pub fn partitioned_continent(&self, epoch: u64, continents: u16) -> Option<u16> {
        if !self.continental_partitions() || continents < 2 {
            return None;
        }
        let window = epoch / GRAY_WINDOW_EPOCHS;
        let h = splitmix64(self.seed ^ splitmix64(window.wrapping_mul(0xD6E8_FEB8_6659_FD93)));
        Some((h % u64::from(continents)) as u16)
    }

    /// Torn WAL tails enabled.
    pub fn torn_tails(&self) -> bool {
        matches!(self.kind, FaultPlanKind::TornTails | FaultPlanKind::All)
    }

    /// Transient fsync failures enabled.
    pub fn flaky_fsyncs(&self) -> bool {
        matches!(self.kind, FaultPlanKind::FlakyFsync | FaultPlanKind::All)
    }

    /// Partial SSTable flushes enabled.
    pub fn partial_flushes(&self) -> bool {
        matches!(self.kind, FaultPlanKind::PartialFlush | FaultPlanKind::All)
    }

    /// Transient read bit flips enabled.
    pub fn bit_flips(&self) -> bool {
        matches!(self.kind, FaultPlanKind::BitFlips | FaultPlanKind::All)
    }
}

/// Counters of every fault the engine injected, detected, and recovered
/// from. Observability only: none of these feed decisions or the CSV.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// WAL appends retried after an injected tear or failed fsync.
    pub wal_retries: u64,
    /// SSTable flushes retried after an injected partial write.
    pub flush_retries: u64,
    /// Verification scans retried after an injected bit flip.
    pub read_retries: u64,
    /// Replica-fork copies retried after an injected mid-copy abort.
    pub fork_retries: u64,
    /// Torn WAL tails truncated away during replay (crash recovery and
    /// in-path tear repair both count here).
    pub torn_wal_tails_repaired: u64,
    /// Partial sorted runs discarded at open (unfinished flush or
    /// compaction; their entries are still covered by the WAL or the
    /// older runs).
    pub partial_runs_discarded: u64,
    /// Simulated deterministic-backoff units accumulated across retries
    /// (exponential per attempt; no wall clock is ever slept).
    pub backoff_steps: u64,
}

impl FaultStats {
    /// Total injected-fault retries across all hooks.
    pub fn total_retries(&self) -> u64 {
        self.wal_retries + self.flush_retries + self.read_retries + self.fork_retries
    }

    /// Folds another store's counters into this one (fleet-wide totals).
    pub fn absorb(&mut self, other: &FaultStats) {
        self.wal_retries += other.wal_retries;
        self.flush_retries += other.flush_retries;
        self.read_retries += other.read_retries;
        self.fork_retries += other.fork_retries;
        self.torn_wal_tails_repaired += other.torn_wal_tails_repaired;
        self.partial_runs_discarded += other.partial_runs_discarded;
        self.backoff_steps += other.backoff_steps;
    }
}

/// Ceiling on consecutive faults the injector reports at any single hook;
/// the next draw after the ceiling is forcibly clean, so an engine retry
/// loop with a budget above this bound always converges.
pub const MAX_CONSECUTIVE_FAULTS: u32 = 2;

/// Process-wide store-identity counter. Stores with an active plan are
/// only ever constructed on the simulation's main thread (creation,
/// replication forks and splits all run in sequential phases), so the
/// identity sequence — and with it every injector stream — is
/// deterministic for a given run.
static FAULT_IDENTITY: AtomicU64 = AtomicU64::new(0);

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The per-store fault source: a counter-based splitmix64 stream over the
/// plan seed and a store identity. Every hook draws from the same stream,
/// so the fault sequence is a pure function of `(plan, identity, call
/// order)`.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    stream: u64,
    counter: u64,
    consecutive: u32,
}

impl FaultInjector {
    /// An injector for the store with the given identity.
    pub fn new(plan: FaultPlan, identity: u64) -> Self {
        Self {
            plan,
            stream: splitmix64(plan.seed ^ splitmix64(identity)),
            counter: 0,
            consecutive: 0,
        }
    }

    /// An injector for the next store in process creation order (the
    /// simulation path; see [`struct@FAULT_IDENTITY`]).
    pub fn for_next_store(plan: FaultPlan) -> Self {
        Self::new(plan, FAULT_IDENTITY.fetch_add(1, Ordering::Relaxed))
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> FaultPlan {
        self.plan
    }

    fn draw(&mut self) -> u64 {
        let v = splitmix64(self.stream ^ self.counter);
        self.counter += 1;
        v
    }

    /// One bounded fault decision: reports a fault roughly one draw in
    /// `period`, never more than [`MAX_CONSECUTIVE_FAULTS`] times in a
    /// row.
    fn fault(&mut self, period: u64) -> bool {
        if self.consecutive >= MAX_CONSECUTIVE_FAULTS {
            self.consecutive = 0;
            let _ = self.draw(); // keep the stream position hook-independent
            return false;
        }
        let hit = self.draw() % period == 0;
        if hit {
            self.consecutive += 1;
        } else {
            self.consecutive = 0;
        }
        hit
    }

    /// Consulted before every WAL append of `len` encoded bytes. `Some(p)`
    /// means the append faults after `p` bytes physically reach the log:
    /// `p < len` is a torn tail, `p == len` a record that landed whole but
    /// whose fsync failed — either way the record is unacked and the
    /// engine must truncate back and retry.
    pub fn wal_append_fault(&mut self, len: usize) -> Option<usize> {
        let torn = self.plan.torn_tails();
        let flaky = self.plan.flaky_fsyncs();
        if (!torn && !flaky) || !self.fault(8) {
            return None;
        }
        if torn && (!flaky || self.draw() % 2 == 0) {
            Some((self.draw() % len.max(1) as u64) as usize)
        } else {
            Some(len)
        }
    }

    /// Consulted before every sorted-run write of `total` encoded bytes.
    /// `Some(n)` tears the run after `n` bytes; the engine discards the
    /// partial file and rewrites.
    pub fn flush_fault(&mut self, total: u64) -> Option<u64> {
        if !self.plan.partial_flushes() || !self.fault(4) {
            return None;
        }
        Some(self.draw() % total.max(1))
    }

    /// Consulted per verification scan: true simulates a transient bit
    /// flip (a checksum mismatch on an otherwise-clean file); the engine
    /// re-reads.
    pub fn read_flip(&mut self) -> bool {
        self.plan.bit_flips() && self.fault(6)
    }

    /// Consulted before every replica-fork copy of `total` physical
    /// bytes. `Some(n)` aborts the copy after `n` bytes; the engine
    /// deletes the partial destination and restarts, and every attempted
    /// byte counts into the measured transfer volume.
    pub fn fork_fault(&mut self, total: u64) -> Option<u64> {
        if total == 0 || !self.plan.has_storage_faults() || !self.fault(4) {
            return None;
        }
        Some(self.draw() % total)
    }
}

/// IEEE CRC32 lookup table (reflected polynomial `0xEDB88320`), built at
/// compile time.
const CRC_TABLE: [u32; 256] = crc_table();

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// IEEE CRC32 of `bytes` (the checksum guarding every WAL record and
/// SSTable entry).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn crc32_detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let clean = crc32(data);
        let mut flipped = data.to_vec();
        for i in 0..flipped.len() {
            for bit in 0..8 {
                flipped[i] ^= 1 << bit;
                assert_ne!(crc32(&flipped), clean, "flip at byte {i} bit {bit}");
                flipped[i] ^= 1 << bit;
            }
        }
    }

    #[test]
    fn plan_kinds_parse_round_trip() {
        for kind in [
            FaultPlanKind::None,
            FaultPlanKind::TornTails,
            FaultPlanKind::FlakyFsync,
            FaultPlanKind::PartialFlush,
            FaultPlanKind::BitFlips,
            FaultPlanKind::All,
            FaultPlanKind::Gray,
            FaultPlanKind::Partition,
        ] {
            assert_eq!(kind.as_str().parse::<FaultPlanKind>(), Ok(kind));
        }
        assert!("chaos".parse::<FaultPlanKind>().is_err());
        assert!(!FaultPlan::none().is_active());
        assert!(FaultPlan::all(7).is_active());
    }

    #[test]
    fn gray_plans_inject_no_storage_faults() {
        let gray = FaultPlan {
            kind: FaultPlanKind::Gray,
            seed: 11,
        };
        let partition = FaultPlan {
            kind: FaultPlanKind::Partition,
            seed: 11,
        };
        for plan in [gray, partition] {
            assert!(plan.is_active());
            assert!(!plan.has_storage_faults());
            assert!(!plan.torn_tails());
            assert!(!plan.flaky_fsyncs());
            assert!(!plan.partial_flushes());
            assert!(!plan.bit_flips());
            let mut inj = FaultInjector::new(plan, 0);
            for _ in 0..1000 {
                assert!(inj.wal_append_fault(64).is_none());
                assert!(inj.flush_fault(64).is_none());
                assert!(!inj.read_flip());
                assert!(inj.fork_fault(64).is_none());
            }
        }
        assert!(FaultPlan::all(7).has_storage_faults());
        assert!(gray.gray_failures() && gray.continental_partitions());
        assert!(!partition.gray_failures() && partition.continental_partitions());
        assert!(!FaultPlan::all(7).gray_failures());
        assert!(!FaultPlan::all(7).continental_partitions());
    }

    #[test]
    fn gray_modes_are_deterministic_and_window_stable() {
        let plan = FaultPlan {
            kind: FaultPlanKind::Gray,
            seed: 77,
        };
        let mut degraded = 0usize;
        for server in 0..200u64 {
            let mode = plan.gray_mode(server, 0);
            // Stable for the whole window, re-derivable from scratch.
            for epoch in 0..GRAY_WINDOW_EPOCHS {
                assert_eq!(plan.gray_mode(server, epoch), mode);
            }
            if mode.is_degraded() {
                degraded += 1;
            }
            assert!(mode.health_sample() > 0.0 && mode.health_sample() <= 1.0);
            if let GrayMode::Slow { units } = mode {
                assert!((1..=4).contains(&units));
            }
        }
        // ~17% of draws are degraded; 200 servers make both tails
        // astronomically unlikely.
        assert!(degraded > 5 && degraded < 100, "degraded={degraded}");
        // Different windows re-roll at least one of 200 servers.
        assert!(
            (0..200u64).any(|s| plan.gray_mode(s, 0) != plan.gray_mode(s, GRAY_WINDOW_EPOCHS)),
            "windows re-roll modes"
        );
        // Non-gray plans never degrade.
        assert_eq!(
            FaultPlan::all(77).gray_mode(3, 0),
            GrayMode::Healthy,
            "storage plans have no gray modes"
        );
    }

    #[test]
    fn partitioned_continent_is_deterministic_and_bounded() {
        let plan = FaultPlan {
            kind: FaultPlanKind::Partition,
            seed: 5,
        };
        for epoch in 0..64u64 {
            let cut = plan
                .partitioned_continent(epoch, 5)
                .expect("partition plan cuts");
            assert!(cut < 5);
            assert_eq!(
                Some(cut),
                plan.partitioned_continent(epoch, 5),
                "pure function of (plan, epoch)"
            );
            assert_eq!(
                plan.partitioned_continent(epoch / GRAY_WINDOW_EPOCHS * GRAY_WINDOW_EPOCHS, 5),
                Some(cut),
                "stable within a window"
            );
        }
        // Rotation: some pair of windows cuts different continents.
        let cuts: std::collections::HashSet<u16> = (0..16u64)
            .filter_map(|w| plan.partitioned_continent(w * GRAY_WINDOW_EPOCHS, 5))
            .collect();
        assert!(cuts.len() > 1, "cut rotates across windows");
        assert_eq!(
            plan.partitioned_continent(0, 1),
            None,
            "one continent: no cut"
        );
        assert_eq!(FaultPlan::all(5).partitioned_continent(0, 5), None);
        assert_eq!(FaultPlan::none().partitioned_continent(0, 5), None);
    }

    #[test]
    fn all_plan_enables_every_family() {
        let plan = FaultPlan::all(1);
        assert!(plan.torn_tails());
        assert!(plan.flaky_fsyncs());
        assert!(plan.partial_flushes());
        assert!(plan.bit_flips());
        let torn = FaultPlan {
            kind: FaultPlanKind::TornTails,
            seed: 1,
        };
        assert!(torn.torn_tails());
        assert!(!torn.partial_flushes());
    }

    #[test]
    fn injector_streams_are_deterministic_and_identity_dependent() {
        let plan = FaultPlan::all(42);
        let seq = |identity: u64| {
            let mut inj = FaultInjector::new(plan, identity);
            (0..64)
                .map(|_| inj.wal_append_fault(100).is_some())
                .collect::<Vec<_>>()
        };
        assert_eq!(seq(3), seq(3), "same identity, same stream");
        assert_ne!(seq(3), seq(4), "identities decorrelate streams");
    }

    #[test]
    fn consecutive_faults_are_bounded() {
        let plan = FaultPlan::all(0);
        let mut inj = FaultInjector::new(plan, 0);
        let mut consecutive = 0u32;
        let mut any = false;
        for _ in 0..10_000 {
            if inj.wal_append_fault(64).is_some() {
                consecutive += 1;
                any = true;
                assert!(consecutive <= MAX_CONSECUTIVE_FAULTS);
            } else {
                consecutive = 0;
            }
        }
        assert!(any, "an all-faults plan actually faults");
    }

    #[test]
    fn inert_plan_never_faults() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 0);
        for _ in 0..1000 {
            assert!(inj.wal_append_fault(64).is_none());
            assert!(inj.flush_fault(64).is_none());
            assert!(!inj.read_flip());
            assert!(inj.fork_fault(64).is_none());
        }
    }

    #[test]
    fn fault_points_fall_inside_the_payload() {
        let mut inj = FaultInjector::new(FaultPlan::all(9), 1);
        for _ in 0..2000 {
            if let Some(p) = inj.wal_append_fault(50) {
                assert!(p <= 50);
            }
            if let Some(n) = inj.flush_fault(1000) {
                assert!(n < 1000);
            }
            if let Some(n) = inj.fork_fault(1000) {
                assert!(n < 1000);
            }
        }
    }
}
