//! Offline, API-compatible subset of the [`rand`](https://docs.rs/rand/0.8)
//! crate.
//!
//! The build environment has no network route to a crates.io mirror, so the
//! workspace vendors the exact surface Skute uses: [`Rng`] (via
//! `gen_range`/`gen_bool`/`fill_bytes`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle`/`choose`).
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — deterministic
//! for a given seed, which is all Skute's same-seed reproducibility tests
//! require. It does **not** produce the same streams as upstream `rand`'s
//! `StdRng`; nothing in this workspace depends on upstream streams.

/// Low-level source of randomness: 64 random bits per call.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing random sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can be sampled from with a single uniform draw.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let width = (end as u128).wrapping_sub(start as u128) + 1;
                start.wrapping_add((rng.next_u64() as u128 % width) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + (self.end - self.start) * u
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// A generator that can be deterministically seeded.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64 exactly
    /// like upstream `rand`'s default implementation.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (Steele, Lea & Flood 2014).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            chunk.copy_from_slice(&z.to_le_bytes()[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++
    /// (Blackman & Vigna 2019).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 0xBF58_476D_1CE4_E5B9, 1, 2];
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Extension methods for random operations on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1 << 40), b.gen_range(0u64..1 << 40));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64_eq(&mut b)).count();
        assert!(same < 4, "streams should diverge, {same}/64 collisions");
    }

    impl StdRng {
        fn next_u64_eq(&mut self, other: &mut Self) -> bool {
            use super::RngCore;
            self.next_u64() == other.next_u64()
        }
    }

    #[test]
    fn float_ranges_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = r.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
    }
}
