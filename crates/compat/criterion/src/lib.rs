//! Offline, API-compatible subset of
//! [`criterion`](https://docs.rs/criterion/0.5): enough harness to compile
//! and *run* `benches/micro.rs` — [`Criterion`], [`Bencher::iter`],
//! benchmark groups, [`BenchmarkId`], [`black_box`] and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of upstream's statistical engine it times a single calibrated
//! batch per benchmark (~200 ms) and prints `name  time/iter  iters`, which
//! is enough to eyeball hot-path regressions offline. No HTML reports, no
//! outlier analysis.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock spent measuring each benchmark.
const TARGET_MEASURE: Duration = Duration::from_millis(200);

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one benchmark, printing its timing line.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::default();
        f(&mut b);
        b.report(name);
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
        }
    }

    /// Upstream-compatible no-op (command-line config is not modeled).
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// A named group of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::default();
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Runs one unparameterized benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::default();
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Ends the group (separator line, mirroring upstream's summary).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self {
            label: s.to_string(),
        }
    }
}

/// Times the closure handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Calibrates an iteration count against [`TARGET_MEASURE`], then times
    /// one batch of `routine` calls.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Calibration: double the batch until it costs >= ~1/16 of the
        // measurement target, then scale up to fill the target.
        let mut batch: u64 = 1;
        let per_iter = loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let cost = start.elapsed();
            if cost >= TARGET_MEASURE / 16 || batch >= 1 << 24 {
                break cost.as_secs_f64() / batch as f64;
            }
            batch *= 2;
        };
        let iters = ((TARGET_MEASURE.as_secs_f64() / per_iter.max(1e-12)) as u64).clamp(1, 1 << 28);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters = iters;
    }

    fn report(&self, name: &str) {
        if self.iters == 0 {
            println!("{name:<44} (no measurement)");
            return;
        }
        let per = self.elapsed.as_secs_f64() / self.iters as f64;
        let (value, unit) = if per < 1e-6 {
            (per * 1e9, "ns")
        } else if per < 1e-3 {
            (per * 1e6, "µs")
        } else {
            (per * 1e3, "ms")
        };
        println!(
            "{name:<44} {value:>10.2} {unit}/iter   ({} iters)",
            self.iters
        );
    }
}

/// Declares a group of benchmark functions: `criterion_group!(benches, a, b)`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

/// Declares the bench entry point: `criterion_main!(benches)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_forms() {
        assert_eq!(BenchmarkId::new("f", 3).label, "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
