//! Offline, API-compatible subset of the [`bytes`](https://docs.rs/bytes/1)
//! crate: just [`Bytes`], a cheaply cloneable immutable byte buffer.
//!
//! Skute stores record payloads as `Bytes` so replicating a partition never
//! deep-copies values. This subset backs the buffer with `Arc<[u8]>` —
//! clone-is-refcount like upstream, without the vtable machinery. One
//! permissive extension over upstream: `From<&[u8]>` (upstream only offers
//! `From<&'static [u8]>`), which copies.

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply cloneable, immutable, contiguous slice of memory.
#[derive(Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates `Bytes` from a static slice without copying semantics
    /// mattering (this subset copies once into the shared buffer).
    pub fn from_static(bytes: &'static [u8]) -> Self {
        Self {
            data: Arc::from(bytes),
        }
    }

    /// Copies `data` into a new shared buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }

    /// Returns a sub-slice as a new shared handle (copies in this subset).
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Self {
        use std::ops::Bound;
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        Self::copy_from_slice(&self.data[start..end])
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(v: &[u8; N]) -> Self {
        Self::copy_from_slice(v)
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Self {
        Self::from(v.into_bytes())
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Self {
        Self::copy_from_slice(v.as_bytes())
    }
}

impl FromIterator<u8> for Bytes {
    fn from_iter<I: IntoIterator<Item = u8>>(iter: I) -> Self {
        Self::from(iter.into_iter().collect::<Vec<u8>>())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_ref() == other.as_slice()
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn roundtrip_and_clone_share() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(b.as_ref(), &[1, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }

    #[test]
    fn empty_and_slice() {
        assert!(Bytes::new().is_empty());
        let b = Bytes::from(&b"hello"[..]);
        assert_eq!(b.slice(1..3).as_ref(), b"el");
    }

    #[test]
    fn debug_escapes() {
        assert_eq!(format!("{:?}", Bytes::from(&b"a\n"[..])), "b\"a\\n\"");
    }
}
