//! Offline, API-compatible subset of
//! [`proptest`](https://docs.rs/proptest/1): random property testing with
//! the upstream macro surface (`proptest!`, `prop_assert!`,
//! `prop_assert_eq!`, `prop_assume!`) and strategy combinators (integer and
//! float ranges, [`any`], tuples, [`collection::vec`], [`option::of`],
//! `prop_map`, [`Just`]).
//!
//! Differences from upstream, deliberate for an offline subset:
//! - **no shrinking** — a failing case reports its inputs and seed but is
//!   not minimized;
//! - **fixed deterministic seeding** — each test function derives its RNG
//!   seed from its own name, so failures reproduce across runs without a
//!   persistence file;
//! - default case count is 64 (upstream: 256).

use rand::rngs::StdRng;

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::StdRng;
    use rand::Rng;

    /// A recipe for generating random values of one type.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Keeps only values for which `f` returns true (rejection
        /// sampling, bounded; panics if the filter rejects everything).
        fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter {
                inner: self,
                whence,
                f,
            }
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_filter`].
    #[derive(Clone, Debug)]
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) whence: &'static str,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut StdRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 consecutive values: {}",
                self.whence
            )
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.start..=<$t>::MAX)
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A 0);
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
        (A 0, B 1, C 2, D 3, E 4);
        (A 0, B 1, C 2, D 3, E 4, F 5);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6);
        (A 0, B 1, C 2, D 3, E 4, F 5, G 6, H 7);
    }
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait behind [`crate::prelude::any`].

    use super::StdRng;
    use rand::{Rng, RngCore};

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Finite, sign-symmetric, spanning several magnitudes.
            let mag = rng.gen_range(-100.0f64..100.0);
            mag * mag * mag
        }
    }

    /// Strategy for "any value of `T`"; construct via
    /// [`crate::prelude::any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T> Any<T> {
        pub(crate) fn new() -> Self {
            Self(core::marker::PhantomData)
        }
    }

    impl<T: Arbitrary> super::strategy::Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies ([`vec`]).

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::Rng;

    /// Strategy producing `Vec`s with length drawn from a range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// Generates vectors of `element` values with a length in `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = if self.len.start >= self.len.end.saturating_sub(1) {
                self.len.start
            } else {
                rng.gen_range(self.len.clone())
            };
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy producing `HashSet`s with a size drawn from a range (the
    /// set may come up short if the element strategy collides a lot).
    #[derive(Clone, Debug)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    /// Generates hash sets of `element` values with a size in `size`.
    pub fn hash_set<S>(element: S, size: core::ops::Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: core::hash::Hash + Eq,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: core::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> std::collections::HashSet<S::Value> {
            let n = if self.size.start >= self.size.end.saturating_sub(1) {
                self.size.start
            } else {
                rng.gen_range(self.size.clone())
            };
            let mut set = std::collections::HashSet::with_capacity(n);
            // Bounded attempts: collisions must not loop forever.
            for _ in 0..n * 16 + 16 {
                if set.len() >= n {
                    break;
                }
                set.insert(self.element.generate(rng));
            }
            set
        }
    }
}

pub mod option {
    //! Option strategies ([`of`]).

    use super::strategy::Strategy;
    use super::StdRng;
    use rand::RngCore;

    /// Strategy producing `Option`s (`None` with probability 1/4, like
    /// upstream's default weight).
    #[derive(Clone, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// Generates `Some(value)` three quarters of the time, `None`
    /// otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.next_u64() % 4 == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod test_runner {
    //! Case execution: [`ProptestConfig`], [`TestCaseError`] and the
    //! runner driving each generated case.

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assert*` failed: the property is violated.
        Fail(String),
        /// `prop_assume!` failed: the inputs are uninteresting, skip.
        Reject,
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// Builds the rejection variant.
        pub fn reject() -> Self {
            TestCaseError::Reject
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            match self {
                TestCaseError::Fail(msg) => write!(f, "{msg}"),
                TestCaseError::Reject => write!(f, "input rejected by prop_assume!"),
            }
        }
    }

    /// Result of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Stable seed derived from the test function's name (FNV-1a), so
    /// every run generates the same cases without a persistence file.
    pub fn seed_for(test_name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `config.cases` generated cases of `body` over `strategy`.
    ///
    /// Panics on the first failing case, reporting the generated input via
    /// `Debug` where available is not attempted — the case index and seed
    /// are enough to reproduce deterministically.
    pub fn run<S, B>(config: &ProptestConfig, test_name: &str, strategy: &S, mut body: B)
    where
        S: Strategy,
        B: FnMut(S::Value) -> TestCaseResult,
    {
        let mut rng = StdRng::seed_from_u64(seed_for(test_name));
        let mut ran: u32 = 0;
        let mut attempts: u32 = 0;
        let max_attempts = config.cases.saturating_mul(16).max(256);
        while ran < config.cases {
            attempts += 1;
            if attempts > max_attempts {
                panic!(
                    "{test_name}: prop_assume! rejected too many cases \
                     ({ran}/{} ran after {attempts} attempts)",
                    config.cases
                );
            }
            let value = strategy.generate(&mut rng);
            match body(value) {
                Ok(()) => ran += 1,
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "{test_name}: property failed at case {ran} \
                         (deterministic seed {}): {msg}",
                        seed_for(test_name)
                    );
                }
            }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::{Any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The canonical strategy for "any value of `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any::new()
    }
}

/// Defines property tests: `proptest! { #[test] fn name(x in strategy) {..} }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = ($cfg:expr);) => {};
    (config = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run(
                &config,
                stringify!($name),
                &strategy,
                |($($pat,)+)| {
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_impl! { config = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the runner can report the case index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts two expressions are unequal inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Skips the current case when its inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u8..10, y in 0.25f64..0.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.25..0.5).contains(&y));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(any::<u8>(), 2..6),
            o in crate::option::of(1u64..4),
            (a, b) in (0u16..4, 0u16..4),
            k in (0u32..10).prop_map(|n| n * 2),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            if let Some(x) = o {
                prop_assert!((1..4).contains(&x));
            }
            prop_assert!(a < 4 && b < 4);
            prop_assert_eq!(k % 2, 0);
        }

        #[test]
        fn assume_skips(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let s = crate::collection::vec(any::<u64>(), 1..8);
        let a: Vec<Vec<u64>> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..16).map(|_| s.generate(&mut rng)).collect()
        };
        let b: Vec<Vec<u64>> = {
            let mut rng = StdRng::seed_from_u64(9);
            (0..16).map(|_| s.generate(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
