//! Offline, API-compatible subset of
//! [`parking_lot`](https://docs.rs/parking_lot/0.12): non-poisoning
//! [`RwLock`] and [`Mutex`] with the upstream method signatures, backed by
//! the `std::sync` primitives.
//!
//! Poisoning is absorbed (`into_inner` on a poisoned guard) rather than
//! propagated, matching `parking_lot`'s panic-transparent behavior.

use std::sync::{self, TryLockError};

/// Read guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Write guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// A reader-writer lock whose `read`/`write` never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire a shared read lock without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire an exclusive write lock without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock whose `lock` never returns poison errors.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::{Mutex, RwLock};

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
