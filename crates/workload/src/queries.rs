//! Per-epoch query generation.

use rand::Rng;

use skute_geo::{ClientGeo, RegionWeight, Topology};

use crate::dist::{Pareto, Poisson};
use crate::trace::LoadTrace;

/// Draws the Pareto(1, 50) popularity weights the paper assigns to the
/// virtual nodes of a ring (§III-A).
pub fn pareto_popularities(rng: &mut impl Rng, partitions: usize) -> Vec<f64> {
    Pareto::paper().sample_n(rng, partitions)
}

/// One application's share of the cloud's query traffic.
#[derive(Debug, Clone)]
pub struct AppTraffic {
    /// Application index (position in the generator's fraction list).
    pub app_index: usize,
    /// Queries addressed to this application this epoch.
    pub queries: f64,
    /// Normalized client-region weights the queries arrive from.
    pub regions: Vec<RegionWeight>,
}

/// Generates per-epoch query traffic: a Poisson draw around a [`LoadTrace`]
/// rate, split across applications by fixed fractions (the Fig. 4 experiment
/// uses 4/7, 2/7, 1/7), arriving from a [`ClientGeo`].
pub struct QueryGenerator<T: LoadTrace> {
    trace: T,
    fractions: Vec<f64>,
    regions: Vec<RegionWeight>,
}

impl<T: LoadTrace> QueryGenerator<T> {
    /// Builds a generator.
    ///
    /// `fractions` must be positive and are normalized to sum to 1.
    ///
    /// # Panics
    /// Panics if `fractions` is empty or sums to zero.
    pub fn new(trace: T, fractions: &[f64], geo: &ClientGeo, topology: &Topology) -> Self {
        assert!(!fractions.is_empty(), "need at least one application");
        let total: f64 = fractions.iter().sum();
        assert!(total > 0.0, "fractions must sum to a positive value");
        Self {
            trace,
            fractions: fractions.iter().map(|f| f / total).collect(),
            regions: geo.region_weights(topology),
        }
    }

    /// Number of applications.
    pub fn app_count(&self) -> usize {
        self.fractions.len()
    }

    /// Samples one epoch of traffic.
    pub fn epoch(&self, rng: &mut impl Rng, epoch: u64) -> Vec<AppTraffic> {
        let lambda = self.trace.rate(epoch);
        let total = Poisson::new(lambda.max(0.0)).sample(rng) as f64;
        self.fractions
            .iter()
            .enumerate()
            .map(|(app_index, &frac)| AppTraffic {
                app_index,
                queries: total * frac,
                regions: self.regions.clone(),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ConstantTrace;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn popularities_match_partition_count_and_floor() {
        let mut rng = StdRng::seed_from_u64(3);
        let pops = pareto_popularities(&mut rng, 200);
        assert_eq!(pops.len(), 200);
        assert!(pops.iter().all(|&p| p >= 50.0));
    }

    #[test]
    fn fractions_are_normalized() {
        let topology = Topology::paper();
        let g = QueryGenerator::new(
            ConstantTrace(7000.0),
            &[4.0, 2.0, 1.0],
            &ClientGeo::Uniform,
            &topology,
        );
        let mut rng = StdRng::seed_from_u64(0);
        let traffic = g.epoch(&mut rng, 0);
        assert_eq!(traffic.len(), 3);
        let total: f64 = traffic.iter().map(|t| t.queries).sum();
        assert!((traffic[0].queries / total - 4.0 / 7.0).abs() < 1e-9);
        assert!((traffic[2].queries / total - 1.0 / 7.0).abs() < 1e-9);
        assert_eq!(g.app_count(), 3);
    }

    #[test]
    fn poisson_totals_cluster_around_lambda() {
        let topology = Topology::paper();
        let g = QueryGenerator::new(
            ConstantTrace(3000.0),
            &[1.0],
            &ClientGeo::Uniform,
            &topology,
        );
        let mut rng = StdRng::seed_from_u64(9);
        let mean: f64 = (0..500)
            .map(|e| g.epoch(&mut rng, e)[0].queries)
            .sum::<f64>()
            / 500.0;
        assert!((mean - 3000.0).abs() < 30.0, "mean {mean}");
    }

    #[test]
    fn regions_follow_client_geo() {
        let topology = Topology::paper();
        let g = QueryGenerator::new(
            ConstantTrace(100.0),
            &[1.0],
            &ClientGeo::SingleCountry {
                continent: 2,
                country: 0,
            },
            &topology,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let traffic = g.epoch(&mut rng, 0);
        assert_eq!(traffic[0].regions.len(), 1);
        assert_eq!(traffic[0].regions[0].location.continent, 2);
    }

    #[test]
    #[should_panic(expected = "at least one application")]
    fn empty_fractions_rejected() {
        let topology = Topology::paper();
        let _ = QueryGenerator::new(ConstantTrace(1.0), &[], &ClientGeo::Uniform, &topology);
    }
}
