//! The Fig. 5 storage-saturation insert stream.

use rand::Rng;

use crate::dist::{Pareto, Poisson};

/// One insert request: a key and the logical object size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InsertRequest {
    /// Object key.
    pub key: Vec<u8>,
    /// Logical size in bytes.
    pub bytes: u64,
}

/// Generates the paper's saturation workload: "we saturate the cloud
/// capacity at a rate of 2000 insert requests/epoch (each of 500 KB). These
/// requests are Pareto(1, 50)-distributed" (§III-E).
///
/// The Pareto distribution is read as skewing the *keys* of the inserts
/// (hot objects are overwritten/extended far more often than cold ones):
/// each request's key id is a Pareto(1, 50) draw quantized to an integer, so
/// the induced partition load is heavy-tailed like the query popularity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InsertGenerator {
    /// Mean insert requests per epoch (paper: 2000).
    pub rate_per_epoch: f64,
    /// Logical size of each object (paper: 500 KB).
    pub object_bytes: u64,
    /// Key-skew distribution.
    pub key_dist: Pareto,
    /// Distinct-key multiplier: key ids are taken modulo
    /// `rate_per_epoch × unique_key_factor` so the keyspace keeps growing
    /// but stays bounded.
    pub unique_key_factor: u64,
}

impl InsertGenerator {
    /// The paper's Fig. 5 parameters.
    pub fn paper() -> Self {
        Self {
            rate_per_epoch: 2000.0,
            object_bytes: 500 * 1000,
            key_dist: Pareto::paper(),
            unique_key_factor: 1000,
        }
    }

    /// Samples one epoch's insert batch (Poisson-sized around the rate).
    pub fn epoch(&self, rng: &mut impl Rng, epoch: u64) -> Vec<InsertRequest> {
        let count = Poisson::new(self.rate_per_epoch).sample(rng);
        let keyspace = (self.rate_per_epoch as u64).max(1) * self.unique_key_factor;
        (0..count)
            .map(|i| {
                let raw = self.key_dist.sample(rng) as u64;
                let id = raw % keyspace;
                InsertRequest {
                    key: format!("obj:{id}:{epoch}:{i}").into_bytes(),
                    bytes: self.object_bytes,
                }
            })
            .collect()
    }

    /// Mean logical bytes this generator pushes per epoch (before
    /// replication).
    pub fn bytes_per_epoch(&self) -> f64 {
        self.rate_per_epoch * self.object_bytes as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn paper_rates() {
        let g = InsertGenerator::paper();
        assert_eq!(g.object_bytes, 500_000);
        assert!((g.bytes_per_epoch() - 1e9).abs() < 1.0);
    }

    #[test]
    fn epoch_batch_sizes_cluster_around_rate() {
        let g = InsertGenerator::paper();
        let mut rng = StdRng::seed_from_u64(5);
        let mean: f64 = (0..200)
            .map(|e| g.epoch(&mut rng, e).len() as f64)
            .sum::<f64>()
            / 200.0;
        assert!((mean - 2000.0).abs() < 15.0, "mean batch {mean}");
    }

    #[test]
    fn keys_are_unique_within_epoch_and_sized() {
        let g = InsertGenerator::paper();
        let mut rng = StdRng::seed_from_u64(5);
        let batch = g.epoch(&mut rng, 3);
        let mut keys: Vec<_> = batch.iter().map(|r| r.key.clone()).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), batch.len(), "per-epoch keys are unique");
        assert!(batch.iter().all(|r| r.bytes == 500_000));
    }

    #[test]
    fn deterministic_per_seed() {
        let g = InsertGenerator::paper();
        let a = g.epoch(&mut StdRng::seed_from_u64(7), 0);
        let b = g.epoch(&mut StdRng::seed_from_u64(7), 0);
        assert_eq!(a, b);
    }
}
