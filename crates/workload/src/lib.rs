//! # skute-workload
//!
//! Workload generation for the Skute experiments (§III-A):
//!
//! * "The popularity of the virtual nodes (i.e. the query rate) is
//!   distributed according to **Pareto(1, 50)**" — [`Pareto`],
//! * "The number of queries per epoch is **Poisson** distributed with a mean
//!   rate λ=3000" — [`Poisson`],
//! * the Slashdot-effect load spike of Fig. 4 ("the mean rate … increases
//!   from 3000 to 183000 in 25 epochs and then slowly decreases for 250
//!   epochs") — [`SlashdotTrace`] and the [`LoadTrace`] trait,
//! * the storage-saturation insert stream of Fig. 5 ("2000 insert
//!   requests/epoch, each of 500 KB, Pareto(1, 50)-distributed") —
//!   [`InsertGenerator`],
//! * client-geography sampling over [`skute_geo::ClientGeo`].
//!
//! All samplers take explicit RNGs (`rand::Rng`) so every experiment is
//! seed-reproducible.

#![warn(missing_docs)]

pub mod dist;
pub mod inserts;
pub mod queries;
pub mod trace;

pub use dist::{Pareto, Poisson, Zipf};
pub use inserts::{InsertGenerator, InsertRequest};
pub use queries::{pareto_popularities, AppTraffic, QueryGenerator};
pub use trace::{ConstantTrace, LoadTrace, PiecewiseTrace, SlashdotTrace};
